// lint: allow-file(expect, index): unit splits come from LayerUnits::new,
// which validates coverage; the fixed-shape [q, k, v] projections are indexed
// by construction.
//! Executable computation units: the same Figure 4 decomposition as
//! [`adapipe_model`], each unit owning its parameters and able to run its
//! forward pass on a fresh autograd tape.
//!
//! Unit boundaries are exactly where recomputation decisions apply: a
//! unit's *output* is either saved after the stage's forward pass or
//! rematerialized during backward. Residual connections always read from
//! *pinned* unit outputs (layer boundaries), so recomputation segments
//! stay linear chains.
//!
//! Both transformer flavours are supported: GeLU MLPs with classic
//! multi-head attention (GPT) and SwiGLU MLPs with grouped-query
//! attention (Llama). Output projections carry optional dropout whose
//! mask is counter-based — recomputation replays it exactly.

use crate::tape::{Tape, Var};
use crate::tensor::Tensor;
use adapipe_model::UnitKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Dimensions of the miniature transformer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TinyDims {
    /// Hidden width.
    pub hidden: usize,
    /// Attention (query) heads.
    pub heads: usize,
    /// Key/value heads (equal to `heads` for classic attention).
    pub kv_heads: usize,
    /// Feed-forward inner width.
    pub ffn_hidden: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Maximum sequence length (position table size).
    pub max_seq: usize,
    /// Whether the FFN is SwiGLU (Llama-style) instead of GeLU.
    pub swiglu: bool,
    /// Dropout rate on the attention and FFN output projections.
    pub dropout: f32,
}

impl TinyDims {
    /// Per-head dimension.
    #[must_use]
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// Width of the K/V projections.
    #[must_use]
    pub fn kv_hidden(&self) -> usize {
        self.kv_heads * self.head_dim()
    }
}

/// Optimizer for the miniature trainer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Optimizer {
    /// Plain SGD.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// Adam with bias correction.
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay.
        beta1: f32,
        /// Second-moment decay.
        beta2: f32,
        /// Denominator epsilon.
        eps: f32,
    },
}

impl Optimizer {
    /// Adam with the customary defaults.
    #[must_use]
    pub fn adam(lr: f32) -> Self {
        Optimizer::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// One executable unit: kind + parameters (+ optimizer state).
#[derive(Debug)]
pub struct UnitModule {
    /// Which Figure 4 unit this is.
    pub kind: UnitKind,
    /// Index of the parent layer in the model's layer sequence.
    pub layer: usize,
    /// Parameter tensors, in a fixed per-kind order.
    pub params: Vec<Tensor>,
    /// Gradient accumulators, same shapes as `params`.
    pub grads: Vec<Tensor>,
    /// Adam moments, lazily initialized on the first Adam step.
    moments: Option<Vec<(Tensor, Tensor)>>,
}

impl UnitModule {
    /// Whether this unit's output is pinned saved.
    #[must_use]
    pub fn is_pinned(&self) -> bool {
        self.kind.is_pinned()
    }

    /// Whether this unit adds a residual connection from the layer input
    /// (the output GEMMs of attention and feed-forward layers).
    #[must_use]
    pub fn has_residual(&self) -> bool {
        matches!(
            self.kind,
            UnitKind::OutProj | UnitKind::FfnFc2 | UnitKind::FfnDown
        )
    }

    /// Whether this unit applies output dropout.
    #[must_use]
    pub fn has_dropout(&self) -> bool {
        self.has_residual()
    }

    /// Zeroes the gradient accumulators.
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.scale_assign(0.0);
        }
    }

    /// One optimizer step over this unit's parameters; `scale` divides
    /// accumulated gradients (the micro-batch count) and `t` is the
    /// 1-based Adam timestep.
    pub fn optimizer_step(&mut self, opt: Optimizer, t: usize, scale: f32) {
        match opt {
            Optimizer::Sgd { lr } => self.sgd_step(lr, scale),
            Optimizer::Adam {
                lr,
                beta1,
                beta2,
                eps,
            } => {
                if self.moments.is_none() {
                    self.moments = Some(
                        self.params
                            .iter()
                            .map(|p| {
                                (
                                    Tensor::zeros(p.rows(), p.cols()),
                                    Tensor::zeros(p.rows(), p.cols()),
                                )
                            })
                            .collect(),
                    );
                }
                let moments = self.moments.as_mut().expect("just initialized");
                let bc1 = 1.0 - beta1.powi(t as i32);
                let bc2 = 1.0 - beta2.powi(t as i32);
                for ((p, g), (m, v)) in self
                    .params
                    .iter_mut()
                    .zip(&self.grads)
                    .zip(moments.iter_mut())
                {
                    for i in 0..p.len() {
                        let grad = g.data()[i] / scale;
                        let mi = &mut m.data_mut()[i];
                        *mi = beta1 * *mi + (1.0 - beta1) * grad;
                        let vi = &mut v.data_mut()[i];
                        *vi = beta2 * *vi + (1.0 - beta2) * grad * grad;
                        let mhat = *mi / bc1;
                        let vhat = *vi / bc2;
                        p.data_mut()[i] -= lr * mhat / (vhat.sqrt() + eps);
                    }
                }
            }
        }
    }

    /// SGD step: `p -= lr * g / scale`.
    pub fn sgd_step(&mut self, lr: f32, scale: f32) {
        for (p, g) in self.params.iter_mut().zip(&self.grads) {
            for (pv, gv) in p.data_mut().iter_mut().zip(g.data()) {
                *pv -= lr * gv / scale;
            }
        }
    }

    /// Runs the unit forward on `tape`.
    ///
    /// `input` is the unit's primary input (ignored by `Embedding`, which
    /// reads `ids`); `residual` must be the parent layer's input for
    /// residual units; `dropout` is `(rate, key)` for units with output
    /// dropout (the key must be stable across recomputation). Returns
    /// `(param_vars, output_var)`.
    ///
    /// # Panics
    ///
    /// Panics if a required input is missing, or if called on the
    /// multi-input units (`CoreAttention`, `FfnActGated`) which use
    /// [`UnitModule::forward_attention`] / [`UnitModule::forward_gated`].
    pub fn forward(
        &self,
        tape: &mut Tape,
        input: Option<Var>,
        residual: Option<Var>,
        ids: Option<&[usize]>,
        dropout: Option<(f32, u64)>,
    ) -> (Vec<Var>, Var) {
        let pvars: Vec<Var> = self.params.iter().map(|p| tape.leaf(p.clone())).collect();
        let x = input;
        let out = match self.kind {
            UnitKind::Embedding => {
                let ids = ids.expect("embedding needs token ids");
                tape.embedding(pvars[0], pvars[1], ids)
            }
            UnitKind::AttnNorm | UnitKind::FfnNorm => {
                tape.layer_norm(x.expect("norm needs input"), pvars[0], pvars[1])
            }
            UnitKind::QProj
            | UnitKind::KProj
            | UnitKind::VProj
            | UnitKind::FfnFc1
            | UnitKind::FfnGate
            | UnitKind::FfnUp => {
                let y = tape.matmul(x.expect("projection needs input"), pvars[0]);
                tape.add_bias(y, pvars[1])
            }
            UnitKind::OutProj | UnitKind::FfnFc2 | UnitKind::FfnDown => {
                let y = tape.matmul(x.expect("projection needs input"), pvars[0]);
                let mut y = tape.add_bias(y, pvars[1]);
                if let Some((rate, key)) = dropout {
                    if rate > 0.0 {
                        y = tape.dropout(y, rate, key);
                    }
                }
                tape.add(y, residual.expect("output projection needs residual"))
            }
            UnitKind::FfnAct => tape.gelu(x.expect("activation needs input")),
            UnitKind::DecodingHead => {
                let n = tape.layer_norm(x.expect("head needs input"), pvars[0], pvars[1]);
                tape.matmul(n, pvars[2])
            }
            UnitKind::CoreAttention => unreachable!("CoreAttention uses forward_attention"),
            UnitKind::FfnActGated => unreachable!("FfnActGated uses forward_gated"),
        };
        (pvars, out)
    }

    /// Runs the fused (grouped-query) attention core.
    ///
    /// # Panics
    ///
    /// Panics if called on a non-`CoreAttention` unit.
    pub fn forward_attention(
        &self,
        tape: &mut Tape,
        q: Var,
        k: Var,
        v: Var,
        heads: usize,
        kv_heads: usize,
    ) -> Var {
        assert_eq!(self.kind, UnitKind::CoreAttention, "not an attention core");
        tape.causal_attention_gqa(q, k, v, heads, kv_heads)
    }

    /// Runs the gated SwiGLU activation: `silu(gate) ⊙ up`.
    ///
    /// # Panics
    ///
    /// Panics if called on a non-`FfnActGated` unit.
    pub fn forward_gated(&self, tape: &mut Tape, gate: Var, up: Var) -> Var {
        assert_eq!(self.kind, UnitKind::FfnActGated, "not a gated activation");
        tape.silu_mul(gate, up)
    }

    /// Accumulates tape gradients of `pvars` into this unit's `grads`.
    ///
    /// # Panics
    ///
    /// Panics if `pvars` does not match the parameter count.
    pub fn harvest_grads(&mut self, tape: &Tape, pvars: &[Var]) {
        assert_eq!(pvars.len(), self.grads.len(), "param var count mismatch");
        for (g, &v) in self.grads.iter_mut().zip(pvars) {
            g.add_assign(&tape.grad(v));
        }
    }
}

/// Builds the unit modules of one layer `kind` with small random
/// initialization (seeded; the same seed reproduces the same model).
#[must_use]
pub fn build_layer_units(
    dims: TinyDims,
    kind: adapipe_model::LayerKind,
    layer: usize,
    rng: &mut StdRng,
) -> Vec<UnitModule> {
    use adapipe_model::LayerKind;
    let h = dims.hidden;
    let f = dims.ffn_hidden;
    let kv = dims.kv_hidden();
    let mk = |kind: UnitKind, shapes: &[(usize, usize)], rng: &mut StdRng| {
        let params: Vec<Tensor> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(r, c))| init(r, c, kind, i, rng))
            .collect();
        let grads = shapes.iter().map(|&(r, c)| Tensor::zeros(r, c)).collect();
        UnitModule {
            kind,
            layer,
            params,
            grads,
            moments: None,
        }
    };
    match kind {
        LayerKind::Embedding => vec![mk(
            UnitKind::Embedding,
            &[(dims.vocab, h), (dims.max_seq, h)],
            rng,
        )],
        LayerKind::DecodingHead => vec![mk(
            UnitKind::DecodingHead,
            &[(1, h), (1, h), (h, dims.vocab)],
            rng,
        )],
        LayerKind::Attention => vec![
            mk(UnitKind::AttnNorm, &[(1, h), (1, h)], rng),
            mk(UnitKind::QProj, &[(h, h), (1, h)], rng),
            mk(UnitKind::KProj, &[(h, kv), (1, kv)], rng),
            mk(UnitKind::VProj, &[(h, kv), (1, kv)], rng),
            mk(UnitKind::CoreAttention, &[], rng),
            mk(UnitKind::OutProj, &[(h, h), (1, h)], rng),
        ],
        LayerKind::FeedForward if dims.swiglu => vec![
            mk(UnitKind::FfnNorm, &[(1, h), (1, h)], rng),
            mk(UnitKind::FfnGate, &[(h, f), (1, f)], rng),
            mk(UnitKind::FfnUp, &[(h, f), (1, f)], rng),
            mk(UnitKind::FfnActGated, &[], rng),
            mk(UnitKind::FfnDown, &[(f, h), (1, h)], rng),
        ],
        LayerKind::FeedForward => vec![
            mk(UnitKind::FfnNorm, &[(1, h), (1, h)], rng),
            mk(UnitKind::FfnFc1, &[(h, f), (1, f)], rng),
            mk(UnitKind::FfnAct, &[], rng),
            mk(UnitKind::FfnFc2, &[(f, h), (1, h)], rng),
        ],
    }
}

/// Parameter initialization: normals scaled per fan-in for matrices,
/// ones for norm gains (parameter index 0 of norm-bearing units), zeros
/// for biases.
fn init(rows: usize, cols: usize, kind: UnitKind, index: usize, rng: &mut StdRng) -> Tensor {
    let is_gain = matches!(
        kind,
        UnitKind::AttnNorm | UnitKind::FfnNorm | UnitKind::DecodingHead
    ) && rows == 1
        && index == 0;
    if rows == 1 {
        let mut t = Tensor::zeros(rows, cols);
        if is_gain {
            for v in t.data_mut() {
                *v = 1.0;
            }
        }
        t
    } else {
        let std = 0.02f32.max((1.0 / rows as f32).sqrt() * 0.5);
        let data = (0..rows * cols)
            .map(|_| {
                // Box–Muller from two uniforms.
                let u1: f32 = rng.gen_range(1e-6..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos() * std
            })
            .collect();
        Tensor::from_vec(rows, cols, data)
    }
}

/// Builds a deterministic RNG for model initialization.
#[must_use]
pub fn init_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapipe_model::LayerKind;

    pub(crate) fn dims() -> TinyDims {
        TinyDims {
            hidden: 16,
            heads: 2,
            kv_heads: 2,
            ffn_hidden: 32,
            vocab: 20,
            max_seq: 8,
            swiglu: false,
            dropout: 0.0,
        }
    }

    fn llama_dims() -> TinyDims {
        TinyDims {
            kv_heads: 1,
            swiglu: true,
            ..dims()
        }
    }

    #[test]
    fn layer_unit_kinds_match_model_decomposition() {
        let mut rng = init_rng(0);
        let units = build_layer_units(dims(), LayerKind::Attention, 1, &mut rng);
        let kinds: Vec<UnitKind> = units.iter().map(|u| u.kind).collect();
        assert_eq!(
            kinds,
            vec![
                UnitKind::AttnNorm,
                UnitKind::QProj,
                UnitKind::KProj,
                UnitKind::VProj,
                UnitKind::CoreAttention,
                UnitKind::OutProj
            ]
        );
    }

    #[test]
    fn swiglu_layer_has_five_units() {
        let mut rng = init_rng(0);
        let units = build_layer_units(llama_dims(), LayerKind::FeedForward, 2, &mut rng);
        let kinds: Vec<UnitKind> = units.iter().map(|u| u.kind).collect();
        assert_eq!(
            kinds,
            vec![
                UnitKind::FfnNorm,
                UnitKind::FfnGate,
                UnitKind::FfnUp,
                UnitKind::FfnActGated,
                UnitKind::FfnDown
            ]
        );
        assert!(units.last().unwrap().has_residual());
    }

    #[test]
    fn gqa_shrinks_kv_projections() {
        let mut rng = init_rng(0);
        let units = build_layer_units(llama_dims(), LayerKind::Attention, 1, &mut rng);
        let q = &units[1];
        let k = &units[2];
        assert_eq!(q.params[0].cols(), 16);
        assert_eq!(k.params[0].cols(), 8); // 1 kv head × head_dim 8
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let a = build_layer_units(dims(), LayerKind::FeedForward, 2, &mut init_rng(7));
        let b = build_layer_units(dims(), LayerKind::FeedForward, 2, &mut init_rng(7));
        for (ua, ub) in a.iter().zip(&b) {
            assert_eq!(ua.params, ub.params);
        }
    }

    #[test]
    fn norm_gains_start_at_one() {
        let units = build_layer_units(dims(), LayerKind::Attention, 1, &mut init_rng(0));
        let norm = &units[0];
        assert!(norm.params[0].data().iter().all(|&v| v == 1.0));
        assert!(norm.params[1].data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn residual_units_are_the_layer_outputs() {
        let mut rng = init_rng(0);
        for (d, kind) in [
            (dims(), LayerKind::Attention),
            (dims(), LayerKind::FeedForward),
            (llama_dims(), LayerKind::FeedForward),
        ] {
            let units = build_layer_units(d, kind, 1, &mut rng);
            for u in &units {
                assert_eq!(u.has_residual(), u.is_pinned(), "{:?}", u.kind);
                assert_eq!(u.has_dropout(), u.has_residual());
            }
        }
    }

    #[test]
    fn sgd_step_moves_against_gradient() {
        let mut rng = init_rng(3);
        let mut units = build_layer_units(dims(), LayerKind::FeedForward, 2, &mut rng);
        let fc1 = &mut units[1];
        let before = fc1.params[0].at(0, 0);
        *fc1.grads[0].at_mut(0, 0) = 2.0;
        fc1.optimizer_step(Optimizer::Sgd { lr: 0.1 }, 1, 1.0);
        assert!((fc1.params[0].at(0, 0) - (before - 0.2)).abs() < 1e-6);
        fc1.zero_grads();
        assert_eq!(fc1.grads[0].at(0, 0), 0.0);
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction, the first Adam step has magnitude ≈ lr
        // regardless of the gradient scale.
        let mut rng = init_rng(4);
        let mut units = build_layer_units(dims(), LayerKind::FeedForward, 2, &mut rng);
        let fc1 = &mut units[1];
        let before = fc1.params[0].at(0, 0);
        *fc1.grads[0].at_mut(0, 0) = 123.0;
        fc1.optimizer_step(Optimizer::adam(0.01), 1, 1.0);
        let step = before - fc1.params[0].at(0, 0);
        assert!((step - 0.01).abs() < 1e-4, "step {step}");
    }

    #[test]
    fn adam_is_deterministic() {
        let run = || {
            let mut units = build_layer_units(dims(), LayerKind::FeedForward, 2, &mut init_rng(5));
            for t in 1..=3 {
                *units[1].grads[0].at_mut(0, 0) = t as f32;
                units[1].optimizer_step(Optimizer::adam(0.01), t, 1.0);
            }
            units[1].params[0].at(0, 0)
        };
        assert_eq!(run(), run());
    }
}
