//! The lint rules themselves.
//!
//! Each rule scans the masked source (see [`crate::source`]) of library
//! crates and reports violations; `#[cfg(test)]` regions, `src/bin/`,
//! `tests/`, and `benches/` are exempt from the panic-freedom rules.
//!
//! | rule           | what it forbids                                          |
//! |----------------|----------------------------------------------------------|
//! | `unwrap`       | `.unwrap()` on Option/Result in library code             |
//! | `expect`       | `.expect(...)` in library code                           |
//! | `panic`        | `panic!` / `todo!` / `unimplemented!` in library code    |
//! | `index`        | integer-literal indexing (`xs[0]`) without a bounds gate |
//! | `float-eq`     | `==` / `!=` on floating-point cost/time expressions      |
//! | `traced-pair`  | a public `*_traced` fn with no non-traced twin           |
//! | `unsafe-header`| a library crate missing `#![forbid(unsafe_code)]`        |
//! | `raw-quantity-in-api` | a bare `f64`/`u64` time/byte/flops parameter in a |
//! |                | public signature of a core cost crate — use an           |
//! |                | `adapipe-units` newtype                                  |
//! | `index-confusion` | raw `.0`/tuple-constructor access to the index        |
//! |                | newtypes outside the designated `::new()`/`.get()`       |
//! |                | conversion helpers                                       |
//! | `swallowed-result` | `let _ = ...` discards in library code — the idiom   |
//! |                | that silently drops a `Result` (and with it the error    |
//! |                | path); handle the value or bind it to a named `_x`       |
//! | `bounded-channel` | an unbounded queue (`mpsc::channel()`,                |
//! |                | `VecDeque::new()`/`default()`) in the serving/training   |
//! |                | crates — queues there are backpressure boundaries and    |
//! |                | must carry an explicit capacity                          |
//! | `unpooled-thread` | bare `std::thread::spawn` in library crates outside   |
//! |                | `adapipe-exec`/`adapipe-serve` — fork-join compute goes  |
//! |                | through the deterministic `adapipe_exec::ExecPool`       |
//!
//! Any rule can be waived at a site with `// lint: allow(rule): reason`
//! (covers that line and the next) or for a whole file with
//! `// lint: allow-file(rule): reason`. A waiver without a reason is
//! itself a violation.

use crate::source::{crate_sources, discover_crates, CrateKind, SourceFile};
use std::fmt;
use std::path::{Path, PathBuf};

/// One lint violation.
pub struct Violation {
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Runs every rule over the workspace rooted at `root`.
pub fn run(root: &Path) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (crate_dir, kind) in discover_crates(root) {
        if kind == CrateKind::Binary {
            continue;
        }
        let lib_rs = crate_dir.join("src").join("lib.rs");
        if let Ok(text) = std::fs::read_to_string(&lib_rs) {
            check_unsafe_header(&rel(root, &lib_rs), &text, &mut violations);
        }
        let crate_name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        for path in crate_sources(&crate_dir) {
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            let file = SourceFile::parse(rel(root, &path), &text);
            check_waiver_reasons(&file, &mut violations);
            check_traced_pairs(&file, &mut violations);
            if kind == CrateKind::Library {
                check_panic_freedom(&file, &mut violations);
                check_float_eq(&file, &mut violations);
                check_index_confusion(&file, &mut violations);
                check_swallowed_result(&file, &mut violations);
                if COST_CRATES.contains(&crate_name.as_str()) {
                    check_raw_quantities(&file, &mut violations);
                }
                if QUEUE_CRATES.contains(&crate_name.as_str()) {
                    check_bounded_channel(&file, &mut violations);
                }
                if CAST_CRATES.contains(&crate_name.as_str()) {
                    check_unchecked_cast(&file, &mut violations);
                }
                if crate_name != "adapipe-obs" {
                    check_stringly_metric(&file, &mut violations);
                }
                if !POOLED_CRATES.contains(&crate_name.as_str()) {
                    check_unpooled_thread(&file, &mut violations);
                }
            }
        }
    }
    violations.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    violations
}

fn rel(root: &Path, path: &Path) -> PathBuf {
    path.strip_prefix(root).unwrap_or(path).to_path_buf()
}

/// The names of every rule, for waiver validation.
const RULES: &[&str] = &[
    "unwrap",
    "expect",
    "panic",
    "index",
    "float-eq",
    "traced-pair",
    "unsafe-header",
    "raw-quantity-in-api",
    "index-confusion",
    "swallowed-result",
    "bounded-channel",
    "stringly-metric",
    "unchecked-cast",
    "unpooled-thread",
];

/// The crates whose public APIs must speak `adapipe-units` newtypes.
/// `adapipe-units` itself is exempt: it defines the raw-value
/// constructors (`MicroSecs::new(f64)` and friends) everything else
/// converts through.
const COST_CRATES: &[&str] = &[
    "adapipe",
    "adapipe-hw",
    "adapipe-profiler",
    "adapipe-memory",
    "adapipe-recompute",
    "adapipe-partition",
    "adapipe-sim",
    "adapipe-check",
];

/// The crates where queues are load-bearing backpressure boundaries:
/// the serving daemon (accept queue) and the training pipeline
/// (inter-stage activation channels). An unbounded queue there turns
/// overload into silent memory growth instead of an explicit rejection.
const QUEUE_CRATES: &[&str] = &["adapipe-serve", "adapipe-train"];

/// The crates where a silent numeric truncation corrupts a cost, a byte
/// budget, or a verifier verdict. Bare `as` casts there must be replaced
/// by the documented `adapipe_units::convert` helpers or `try_from`.
/// `adapipe-units` itself is exempt: it *defines* the sanctioned
/// conversions, with the rounding contract in their doc comments.
const CAST_CRATES: &[&str] = &[
    "adapipe-recompute",
    "adapipe-partition",
    "adapipe-sim",
    "adapipe-memory",
    "adapipe-check",
];

/// The crates allowed to spawn bare threads: `adapipe-exec` *is* the
/// pool, and `adapipe-serve`'s acceptor/worker threads are long-lived
/// daemon infrastructure, not fork-join compute. Everywhere else,
/// planner parallelism must go through the deterministic
/// `adapipe_exec::ExecPool` so results stay byte-identical at any
/// thread count.
const POOLED_CRATES: &[&str] = &["adapipe-exec", "adapipe-serve"];

/// The primitive numeric types a bare `as` cast can target.
const NUMERIC_PRIMITIVES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// `unchecked-cast`: no bare `as` numeric casts in cost-carrying lib
/// code. `as` silently truncates (`f64`→integer), wraps (`u64`→`usize`
/// on 32-bit), and loses precision (`u64`→`f64`), and every one of those
/// failure modes lands directly in an Eq. (1)–(3) quantity here. Convert
/// through `adapipe_units::convert` — each helper documents its
/// rounding/saturation contract — or `try_from` when the call site
/// should observe failure.
///
/// Detection is token-based on the masked source: a standalone `as`
/// keyword whose next token is a primitive numeric type. `as_secs`-style
/// identifiers and `use x as y` renames don't match.
pub fn check_unchecked_cast(file: &SourceFile, out: &mut Vec<Violation>) {
    for (i, line) in file.lines.iter().enumerate() {
        if file.test_lines[i] || file.is_waived("unchecked-cast", i) {
            continue;
        }
        for (pos, _) in line.match_indices(" as ") {
            let target: String = line[pos + " as ".len()..]
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if NUMERIC_PRIMITIVES.contains(&target.as_str()) {
                out.push(Violation {
                    path: file.path.clone(),
                    line: i + 1,
                    rule: "unchecked-cast",
                    message: format!(
                        "bare `as {target}` cast — convert through `adapipe_units::convert` \
                         (documented rounding contract) or `try_from` so truncation is an \
                         explicit decision"
                    ),
                });
            }
        }
    }
}

/// `bounded-channel`: no unbounded queues in the queue crates.
/// `mpsc::channel()` buffers without limit (use
/// `mpsc::sync_channel(n)`); `VecDeque::new()`/`VecDeque::default()`
/// start life unbounded and invite push-without-cap growth (use
/// `VecDeque::with_capacity(n)` next to an explicit depth check, or a
/// purpose-built bounded queue).
pub fn check_bounded_channel(file: &SourceFile, out: &mut Vec<Violation>) {
    for (i, line) in file.lines.iter().enumerate() {
        if file.test_lines[i] || file.is_waived("bounded-channel", i) {
            continue;
        }
        if line.contains("mpsc::channel(") {
            out.push(Violation {
                path: file.path.clone(),
                line: i + 1,
                rule: "bounded-channel",
                message: "unbounded `mpsc::channel()` — use `mpsc::sync_channel(n)` so \
                          saturation blocks (or rejects) instead of buffering without limit"
                    .to_string(),
            });
        }
        for ctor in ["VecDeque::new()", "VecDeque::default()"] {
            if line.contains(ctor) {
                out.push(Violation {
                    path: file.path.clone(),
                    line: i + 1,
                    rule: "bounded-channel",
                    message: format!(
                        "`{ctor}` creates an unbounded queue — use \
                         `VecDeque::with_capacity(n)` beside an explicit depth bound"
                    ),
                });
            }
        }
    }
}

/// `unpooled-thread`: no bare `std::thread::spawn` in library code
/// outside the pooled crates. An ad-hoc thread bypasses the
/// deterministic work-stealing pool — its scheduling is OS-dependent,
/// its panics unwind past the typed `ExecError` containment, and its
/// results escape the byte-identity argument of docs/parallel.md. Use
/// `adapipe_exec::ExecPool::map` (fork-join) instead; `thread::scope`
/// spawns inside `adapipe-exec` itself are how the pool is built and
/// do not match this pattern.
pub fn check_unpooled_thread(file: &SourceFile, out: &mut Vec<Violation>) {
    for (i, line) in file.lines.iter().enumerate() {
        if file.test_lines[i] || file.is_waived("unpooled-thread", i) {
            continue;
        }
        if line.contains("thread::spawn(") {
            out.push(Violation {
                path: file.path.clone(),
                line: i + 1,
                rule: "unpooled-thread",
                message: "bare `thread::spawn` in library code — route fork-join compute \
                          through `adapipe_exec::ExecPool::map` so scheduling stays \
                          deterministic and panics become typed `ExecError`s"
                    .to_string(),
            });
        }
    }
}

/// Method calls on the obs recorders whose first argument names a
/// metric, span, or flight event.
const METRIC_METHODS: &[&str] = &[
    ".incr(",
    ".add(",
    ".gauge(",
    ".gauge_max(",
    ".observe(",
    ".span(",
    ".span_cat(",
    ".time(",
    ".note(",
    ".note_traced(",
];

/// `stringly-metric`: metric/span/flight-event names in library code
/// must be `adapipe_obs::keys` constants, not inline string literals.
/// Scattered literals drift apart silently — `keys` is the single
/// vocabulary that dashboards, the metrics report, and the golden
/// observability tests all key off.
///
/// Detection rides the masking pass: string contents *and* their
/// quotes blank to spaces, so a literal first argument shows up as a
/// non-empty all-blank region between the call's `(` and the first
/// `,`/`)`, while a `keys::` constant (or any other expression)
/// leaves visible tokens.
pub fn check_stringly_metric(file: &SourceFile, out: &mut Vec<Violation>) {
    for (i, line) in file.lines.iter().enumerate() {
        if file.test_lines[i] || file.is_waived("stringly-metric", i) {
            continue;
        }
        for method in METRIC_METHODS {
            for (pos, _) in line.match_indices(method) {
                if first_arg_is_blanked_literal(file, i, pos + method.len()) {
                    out.push(Violation {
                        path: file.path.clone(),
                        line: i + 1,
                        rule: "stringly-metric",
                        message: format!(
                            "string-literal name passed to `{}` — add a constant to \
                             `adapipe_obs::keys` and pass that instead",
                            method.trim_start_matches('.').trim_end_matches('(')
                        ),
                    });
                }
            }
        }
    }
}

/// Whether the argument region starting at byte `col` of line `line` —
/// everything up to the first `,` or `)`, scanning across a few
/// continuation lines for wrapped calls — is non-empty and entirely
/// blank in the masked source, i.e. was a string literal. Zero-arg
/// calls (`s.time()` on some unrelated type) have an *empty* region
/// and stay legal.
fn first_arg_is_blanked_literal(file: &SourceFile, line: usize, col: usize) -> bool {
    let mut seen_blank = false;
    let mut start = col;
    for l in file.lines.iter().skip(line).take(4) {
        for c in l.get(start..).unwrap_or("").chars() {
            match c {
                ',' | ')' => return seen_blank,
                c if c.is_whitespace() => seen_blank = true,
                _ => return false,
            }
        }
        start = 0;
    }
    false
}

/// A waiver must name real rules and carry a justification.
pub fn check_waiver_reasons(file: &SourceFile, out: &mut Vec<Violation>) {
    for w in &file.waivers {
        for rule in &w.rules {
            if !RULES.contains(&rule.as_str()) {
                out.push(Violation {
                    path: file.path.clone(),
                    line: w.line + 1,
                    rule: "waiver",
                    message: format!("waiver names unknown rule `{rule}`"),
                });
            }
        }
        if !w.has_reason {
            out.push(Violation {
                path: file.path.clone(),
                line: w.line + 1,
                rule: "waiver",
                message: "waiver has no justification — add `: why` after the rule list"
                    .to_string(),
            });
        }
    }
}

/// `#![forbid(unsafe_code)]` must appear in every library crate root.
pub fn check_unsafe_header(path: &Path, lib_rs: &str, out: &mut Vec<Violation>) {
    let has = lib_rs
        .lines()
        .any(|l| l.trim().replace(' ', "") == "#![forbid(unsafe_code)]");
    if !has {
        out.push(Violation {
            path: path.to_path_buf(),
            line: 1,
            rule: "unsafe-header",
            message: "library crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
}

/// `.unwrap()`, `.expect(`, `panic!`/`todo!`/`unimplemented!`, and
/// integer-literal indexing in non-test library code.
pub fn check_panic_freedom(file: &SourceFile, out: &mut Vec<Violation>) {
    for (i, line) in file.lines.iter().enumerate() {
        if file.test_lines[i] {
            continue;
        }
        let mut push = |rule: &'static str, message: String| {
            if !file.is_waived(rule, i) {
                out.push(Violation {
                    path: file.path.clone(),
                    line: i + 1,
                    rule,
                    message,
                });
            }
        };
        if line.contains(".unwrap()") {
            push(
                "unwrap",
                "`.unwrap()` in library code — return a typed error".to_string(),
            );
        }
        if line.contains(".expect(") {
            push(
                "expect",
                "`.expect(...)` in library code — return a typed error".to_string(),
            );
        }
        for mac in ["panic!", "todo!", "unimplemented!"] {
            if let Some(pos) = line.find(mac) {
                // `core::panic!` etc. still match; a preceding ident char
                // (e.g. `event_panic!`) does not.
                let prev = line[..pos].chars().next_back();
                if !prev.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                    push(
                        "panic",
                        format!("`{mac}` in library code — return a typed error"),
                    );
                }
            }
        }
        for col in literal_index_sites(line) {
            push(
                "index",
                format!(
                    "integer-literal indexing at column {} — use `.get(..)`/`.first()` or a \
                     length-checked pattern",
                    col + 1
                ),
            );
        }
    }
}

/// Columns of `ident[<digits>]` sites: a `[` whose content is all
/// digits/underscores and whose previous non-space char continues an
/// expression (identifier, `)`, or `]`). Excludes attributes (`#[...]`)
/// and type ascriptions (`[f64; 4]`).
fn literal_index_sites(line: &str) -> Vec<usize> {
    let chars: Vec<char> = line.chars().collect();
    let mut sites = Vec::new();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' {
            continue;
        }
        let Some(close) = chars[i + 1..].iter().position(|&c| c == ']') else {
            continue;
        };
        let inner = &chars[i + 1..i + 1 + close];
        if inner.is_empty() || !inner.iter().all(|c| c.is_ascii_digit() || *c == '_') {
            continue;
        }
        let prev = chars[..i].iter().rev().find(|c| !c.is_whitespace());
        if prev.is_some_and(|&c| c.is_alphanumeric() || c == '_' || c == ')' || c == ']') {
            sites.push(i);
        }
    }
    sites
}

/// `==` / `!=` where one operand is a float literal or a field access
/// that names a time/cost quantity. Exact float comparison is almost
/// always a bug in cost code — use `approx_eq` or compare bit patterns
/// deliberately (and waive with a reason).
pub fn check_float_eq(file: &SourceFile, out: &mut Vec<Violation>) {
    const FLOAT_FIELDS: &[&str] = &[
        ".time",
        ".time_f",
        ".time_b",
        ".dur",
        ".duration",
        ".makespan",
        ".warmup",
        ".steady",
        ".ending",
        ".bottleneck",
        ".iteration_time",
        ".cost",
        ".total",
    ];
    for (i, line) in file.lines.iter().enumerate() {
        if file.test_lines[i] || file.is_waived("float-eq", i) {
            continue;
        }
        for op in ["==", "!="] {
            for (pos, _) in line.match_indices(op) {
                // Skip `<=`, `>=`, `!=` found inside `!==`-like runs and
                // pattern arms (`=>`).
                let before = line[..pos].chars().next_back();
                let after = line[pos + 2..].chars().next();
                if matches!(before, Some('<' | '>' | '=' | '!')) || after == Some('=') {
                    continue;
                }
                let lhs = last_token(&line[..pos]);
                let rhs = first_token(&line[pos + 2..]);
                if is_float_literal(&lhs)
                    || is_float_literal(&rhs)
                    || FLOAT_FIELDS
                        .iter()
                        .any(|f| lhs.ends_with(f) || rhs.ends_with(f))
                {
                    out.push(Violation {
                        path: file.path.clone(),
                        line: i + 1,
                        rule: "float-eq",
                        message: format!(
                            "exact float comparison `{} {} {}` — use an approx/tolerance \
                             comparison",
                            lhs.trim(),
                            op,
                            rhs.trim()
                        ),
                    });
                }
            }
        }
    }
}

fn last_token(s: &str) -> String {
    s.trim_end()
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || matches!(c, '_' | '.' | ':'))
        .collect::<String>()
        .chars()
        .rev()
        .collect()
}

fn first_token(s: &str) -> String {
    s.trim_start()
        .chars()
        .take_while(|c| c.is_alphanumeric() || matches!(c, '_' | '.' | ':'))
        .collect()
}

fn is_float_literal(token: &str) -> bool {
    let t = token.trim().trim_end_matches("f64").trim_end_matches("f32");
    !t.is_empty()
        && t.contains('.')
        && t.chars()
            .all(|c| c.is_ascii_digit() || c == '.' || c == '_')
}

/// Parameter names that denote a physical quantity: a bare `f64`/`u64`
/// under one of these names in a public cost-crate signature is almost
/// certainly a unit bug waiting to happen (seconds vs microseconds,
/// bytes vs MiB). The fix is an `adapipe-units` newtype; deliberate
/// raw-scalar APIs carry a justified waiver.
const QUANTITY_HINTS: &[&str] = &[
    "time",
    "secs",
    "micros",
    "millis",
    "latency",
    "duration",
    "makespan",
    "overhead",
    "p2p",
    "bytes",
    "capacity",
    "budget",
    "flops",
    "bandwidth",
];

/// `raw-quantity-in-api`: public fns in the core cost crates must not
/// take bare `f64`/`u64` parameters whose names say they are times,
/// byte counts, FLOP counts or rates — those travel as `adapipe-units`
/// newtypes so a unit mix-up is a compile error.
pub fn check_raw_quantities(file: &SourceFile, out: &mut Vec<Violation>) {
    for (line, name, raw) in public_fns(file) {
        if file.is_waived("raw-quantity-in-api", line) {
            continue;
        }
        for (pname, ptype) in param_decls(&raw) {
            if !matches!(ptype.as_str(), "f64" | "u64" | "f32" | "u32") {
                continue;
            }
            let lname = pname.to_lowercase();
            if QUANTITY_HINTS.iter().any(|h| lname.contains(h)) {
                out.push(Violation {
                    path: file.path.clone(),
                    line: line + 1,
                    rule: "raw-quantity-in-api",
                    message: format!(
                        "public fn `{name}` takes quantity parameter `{pname}: {ptype}` — \
                         use an adapipe-units newtype (MicroSecs/Bytes/Flops/BytesPerSec/\
                         FlopsPerSec)"
                    ),
                });
            }
        }
    }
}

/// `index-confusion`: the `LayerIdx`/`StageIdx`/`MicrobatchIdx` spaces
/// convert only through the designated helpers (`::new()`, `.get()`,
/// `From<usize>`). Raw tuple construction (`LayerIdx(i)`) and raw field
/// extraction (`some_idx.0`) bypass them and make it easy to do
/// arithmetic that silently crosses index spaces.
pub fn check_index_confusion(file: &SourceFile, out: &mut Vec<Violation>) {
    const IDX_TYPES: &[&str] = &["LayerIdx", "StageIdx", "MicrobatchIdx"];
    for (i, line) in file.lines.iter().enumerate() {
        if file.test_lines[i] || file.is_waived("index-confusion", i) {
            continue;
        }
        let chars: Vec<char> = line.chars().collect();
        for t in IDX_TYPES {
            for (pos, _) in line.match_indices(&format!("{t}(")) {
                // A longer identifier (`MyLayerIdx(`) is not this type.
                if !ident_before(&chars, char_index(line, pos)) {
                    out.push(Violation {
                        path: file.path.clone(),
                        line: i + 1,
                        rule: "index-confusion",
                        message: format!(
                            "raw `{t}(..)` construction — use `{t}::new(..)` (or `.get()` to \
                             leave the index space)"
                        ),
                    });
                }
            }
        }
        for (pos, _) in line.match_indices(".0") {
            // Exclude longer numeric tokens: `.05`, `1.0`, `.0f64`, `x.0.1`.
            let after = line[pos + 2..].chars().next();
            if after.is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '.') {
                continue;
            }
            let lhs = last_token(&line[..pos]);
            if lhs.to_lowercase().ends_with("idx") {
                out.push(Violation {
                    path: file.path.clone(),
                    line: i + 1,
                    rule: "index-confusion",
                    message: format!(
                        "raw `.0` extraction from index `{lhs}` — use `.get()`",
                        lhs = lhs.trim()
                    ),
                });
            }
        }
    }
}

/// `swallowed-result`: a wildcard `let _ = ...;` discard in non-test
/// library code. The pattern is how `Result`s get silently dropped —
/// the compiler's `#[must_use]` on `Result` is satisfied, but the error
/// path vanishes without a trace (the fault-injection work found
/// exactly such swallowed watchdog plumbing). Handle the value, bind it
/// to a *named* underscore (`let _ack = ...`, which documents intent
/// without defeating `#[must_use]` audits), or waive with a reason.
pub fn check_swallowed_result(file: &SourceFile, out: &mut Vec<Violation>) {
    for (i, line) in file.lines.iter().enumerate() {
        if file.test_lines[i] || file.is_waived("swallowed-result", i) {
            continue;
        }
        for (pos, _) in line.match_indices("let _") {
            // `outlet _`-style identifier runs are not the keyword.
            let prev = line[..pos].chars().next_back();
            if prev.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                continue;
            }
            // `let _x = ...` is a named discard and stays legal.
            let rest = &line[pos + "let _".len()..];
            if rest
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                continue;
            }
            // Require an assignment: `let _ = ...` (not `let _;`).
            let after = rest.trim_start();
            if after.starts_with('=') && !after.starts_with("==") {
                out.push(Violation {
                    path: file.path.clone(),
                    line: i + 1,
                    rule: "swallowed-result",
                    message: "`let _ = ...` silently discards the value — and with it any \
                              `Result` error path; handle it, bind a named `_x`, or waive \
                              with a reason"
                        .to_string(),
                });
            }
        }
    }
}

/// Maps a byte offset in `line` to the index of that char in the
/// line's char vector (the masked source is ASCII-dominated, but doc
/// prose can hold multi-byte chars).
fn char_index(line: &str, byte_pos: usize) -> usize {
    line[..byte_pos].chars().count()
}

/// Splits a parameter list on top-level commas into `(name, type)`
/// pairs; receivers (`self` in any flavour) are skipped and the type is
/// whitespace-normalised like [`param_types`].
fn param_decls(raw: &str) -> Vec<(String, String)> {
    let mut params = Vec::new();
    let mut depth = 0i64;
    let mut current = String::new();
    for c in raw.chars() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => depth -= 1,
            ',' if depth == 0 => {
                params.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(c);
    }
    if !current.trim().is_empty() {
        params.push(current);
    }
    params
        .into_iter()
        .filter_map(|p| {
            let p = p.trim().to_string();
            let mut depth = 0i64;
            for (i, c) in p.char_indices() {
                match c {
                    '<' | '(' | '[' => depth += 1,
                    '>' | ')' | ']' => depth -= 1,
                    ':' if depth == 0 => {
                        let name = p[..i].trim().trim_start_matches("mut ").trim().to_string();
                        let ty = p[i + 1..].split_whitespace().collect::<String>();
                        return (name != "self").then_some((name, ty));
                    }
                    _ => {}
                }
            }
            None // receiver or malformed — nothing to check
        })
        .collect()
}

/// Every `pub fn *_traced(...)` must have a non-traced twin in the same
/// file whose parameter types equal the traced signature's minus any
/// `Recorder` parameters — keeping the traced API a strict superset.
pub fn check_traced_pairs(file: &SourceFile, out: &mut Vec<Violation>) {
    let fns: Vec<(usize, String, Vec<String>)> = public_fns(file)
        .into_iter()
        .map(|(line, name, raw)| (line, name, param_types(&raw)))
        .collect();
    for (line, name, params) in &fns {
        let Some(base) = name.strip_suffix("_traced") else {
            continue;
        };
        if file.is_waived("traced-pair", *line) {
            continue;
        }
        let wanted: Vec<&String> = params.iter().filter(|p| !p.contains("Recorder")).collect();
        let twin = fns.iter().any(|(_, n, p)| {
            !n.ends_with("_traced")
                && (n == base || n.starts_with(&format!("{base}_")))
                && p.iter().collect::<Vec<_>>() == wanted
        });
        if !twin {
            out.push(Violation {
                path: file.path.clone(),
                line: line + 1,
                rule: "traced-pair",
                message: format!(
                    "public fn `{name}` has no non-traced twin with matching parameters \
                     (expected a `{base}*` fn taking the same params minus the Recorder)"
                ),
            });
        }
    }
}

/// Extracts `(0-based line, name, raw parameter list)` for each public
/// fn in non-test code. Callers split the raw list with
/// [`param_types`] (types only, so twins can rename arguments) or
/// [`param_decls`] (name/type pairs).
fn public_fns(file: &SourceFile) -> Vec<(usize, String, String)> {
    let mut out = Vec::new();
    let text = &file.masked;
    let mut line = 0usize;
    let bytes: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if !text[..].is_char_boundary(0) {
            break;
        }
        // Match "pub fn " / "pub(crate) fn " etc. at word boundary.
        if bytes[i] == 'p' && text_at(&bytes, i, "pub") && !ident_before(&bytes, i) {
            let mut j = i + 3;
            // Optional visibility qualifier `(...)`.
            while j < bytes.len() && bytes[j].is_whitespace() {
                j += 1;
            }
            if bytes.get(j) == Some(&'(') {
                while j < bytes.len() && bytes[j] != ')' {
                    j += 1;
                }
                j += 1;
                while j < bytes.len() && bytes[j].is_whitespace() {
                    j += 1;
                }
            }
            if text_at(&bytes, j, "fn") {
                let mut k = j + 2;
                while k < bytes.len() && bytes[k].is_whitespace() {
                    k += 1;
                }
                let start = k;
                while k < bytes.len() && (bytes[k].is_alphanumeric() || bytes[k] == '_') {
                    k += 1;
                }
                let name: String = bytes[start..k].iter().collect();
                // Skip generics to the parameter list.
                let mut depth = 0i64;
                while k < bytes.len() {
                    match bytes[k] {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        '(' if depth <= 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                let params_start = k + 1;
                let mut paren = 1i64;
                k += 1;
                while k < bytes.len() && paren > 0 {
                    match bytes[k] {
                        '(' => paren += 1,
                        ')' => paren -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                let raw: String = bytes[params_start..k.saturating_sub(1)].iter().collect();
                if !file.test_lines.get(line).copied().unwrap_or(false) && !name.is_empty() {
                    out.push((line, name, raw));
                }
                // Count newlines we skipped over.
                line += bytes[i..k].iter().filter(|&&c| c == '\n').count();
                i = k;
                continue;
            }
        }
        i += 1;
    }
    out
}

fn text_at(bytes: &[char], i: usize, needle: &str) -> bool {
    let n: Vec<char> = needle.chars().collect();
    i + n.len() <= bytes.len()
        && bytes[i..i + n.len()] == n[..]
        && !bytes
            .get(i + n.len())
            .is_some_and(|c| c.is_alphanumeric() || *c == '_')
}

fn ident_before(bytes: &[char], i: usize) -> bool {
    i > 0
        && bytes
            .get(i - 1)
            .is_some_and(|c| c.is_alphanumeric() || *c == '_')
}

/// Splits a parameter list on top-level commas and keeps only the type
/// part (after the first top-level `:`), normalising whitespace.
fn param_types(raw: &str) -> Vec<String> {
    let mut params = Vec::new();
    let mut depth = 0i64;
    let mut current = String::new();
    for c in raw.chars() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => depth -= 1,
            ',' if depth == 0 => {
                params.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(c);
    }
    if !current.trim().is_empty() {
        params.push(current);
    }
    params
        .into_iter()
        .map(|p| {
            let p = p.trim().to_string();
            if p.starts_with('&') && p.contains("self") && !p.contains(':') {
                return "self".to_string();
            }
            if p == "self" || p == "mut self" {
                return "self".to_string();
            }
            let mut depth = 0i64;
            for (i, c) in p.char_indices() {
                match c {
                    '<' | '(' | '[' => depth += 1,
                    '>' | ')' | ']' => depth -= 1,
                    ':' if depth == 0 => {
                        return p[i + 1..].split_whitespace().collect::<String>();
                    }
                    _ => {}
                }
            }
            p.split_whitespace().collect::<String>()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn file(text: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("lib.rs"), text)
    }

    #[test]
    fn unwrap_flagged_outside_tests_only() {
        let f = file("fn a() { x.unwrap(); }\n#[cfg(test)]\nmod t {\n fn b() { y.unwrap(); }\n}\n");
        let mut v = Vec::new();
        check_panic_freedom(&f, &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
        assert_eq!(v[0].rule, "unwrap");
    }

    #[test]
    fn waiver_silences_a_site() {
        let f = file("// lint: allow(unwrap): upheld by ctor\nfn a() { x.unwrap(); }\n");
        let mut v = Vec::new();
        check_panic_freedom(&f, &mut v);
        assert!(
            v.is_empty(),
            "{:?}",
            v.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn literal_index_sites_ignore_attributes_and_types() {
        assert_eq!(literal_index_sites("let x = xs[0];"), vec![10]);
        assert!(literal_index_sites("#[cfg(feature = \"x\")]").is_empty());
        assert!(literal_index_sites("let x: [f64; 4] = y;").is_empty());
        assert!(literal_index_sites("let x = xs[i];").is_empty());
        assert_eq!(literal_index_sites("m[1_0]").len(), 1);
    }

    #[test]
    fn float_eq_catches_literals_and_time_fields() {
        let f = file("fn a() { if x == 0.5 { } if t.time_f == u.time_f { } if n == 3 { } }\n");
        let mut v = Vec::new();
        check_float_eq(&f, &mut v);
        assert_eq!(
            v.len(),
            2,
            "{:?}",
            v.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn float_eq_skips_comparison_operators() {
        let f = file("fn a() { if x <= 0.5 { } if y >= 1.0 { } match z { _ => 0.1 } }\n");
        let mut v = Vec::new();
        check_float_eq(&f, &mut v);
        assert!(
            v.is_empty(),
            "{:?}",
            v.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn traced_pair_requires_twin() {
        let orphan = file("pub fn solve_traced(x: usize, rec: &Recorder) -> f64 { 0.0 }\n");
        let mut v = Vec::new();
        check_traced_pairs(&orphan, &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "traced-pair");

        let paired = file(
            "pub fn solve(x: usize) -> f64 { 0.0 }\n\
             pub fn solve_traced(x: usize, rec: &Recorder) -> f64 { 0.0 }\n",
        );
        let mut v = Vec::new();
        check_traced_pairs(&paired, &mut v);
        assert!(
            v.is_empty(),
            "{:?}",
            v.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn traced_pair_accepts_suffixed_twin() {
        // optimize_traced's twin is optimize_with (same params minus Recorder).
        let f = file(
            "pub fn optimize_with(cfg: &Config, hook: impl FnMut(usize)) -> Plan { todo!() }\n\
             pub fn optimize_traced(cfg: &Config, hook: impl FnMut(usize), rec: &Recorder) \
             -> Plan { todo!() }\n",
        );
        let mut v = Vec::new();
        check_traced_pairs(&f, &mut v);
        assert!(
            v.is_empty(),
            "{:?}",
            v.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unsafe_header_rule() {
        let mut v = Vec::new();
        check_unsafe_header(
            Path::new("a/lib.rs"),
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
            &mut v,
        );
        assert!(v.is_empty());
        check_unsafe_header(Path::new("a/lib.rs"), "pub fn f() {}\n", &mut v);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn raw_quantity_flags_bare_scalar_params() {
        let f = file(
            "pub fn with_latency(latency: f64) {}\n\
             pub fn stage_count(n: usize) {}\n\
             pub fn with_budget(budget: Bytes) {}\n",
        );
        let mut v = Vec::new();
        check_raw_quantities(&f, &mut v);
        assert_eq!(
            v.len(),
            1,
            "{:?}",
            v.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
        assert_eq!(v[0].rule, "raw-quantity-in-api");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn raw_quantity_waiver_suppresses() {
        let f = file(
            "// lint: allow(raw-quantity-in-api): wire format is raw microseconds\n\
             pub fn push_raw(time_us: f64) {}\n",
        );
        let mut v = Vec::new();
        check_raw_quantities(&f, &mut v);
        assert!(
            v.is_empty(),
            "{:?}",
            v.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn index_confusion_flags_raw_construction_and_extraction() {
        let f = file(
            "fn a() { let x = LayerIdx(3); }\n\
             fn b(layer_idx: LayerIdx) -> usize { layer_idx.0 + 1 }\n\
             fn c() { let ok = StageIdx::new(2).get(); }\n\
             fn d() { let f = 1.0; let tup = pair.0; }\n",
        );
        let mut v = Vec::new();
        check_index_confusion(&f, &mut v);
        assert_eq!(
            v.len(),
            2,
            "{:?}",
            v.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
        assert!(v.iter().all(|v| v.rule == "index-confusion"));
        assert_eq!((v[0].line, v[1].line), (1, 2));
    }

    #[test]
    fn index_confusion_waiver_suppresses() {
        let f = file(
            "// lint: allow(index-confusion): serializing the raw index\n\
             fn a(layer_idx: LayerIdx) -> usize { layer_idx.0 }\n",
        );
        let mut v = Vec::new();
        check_index_confusion(&f, &mut v);
        assert!(
            v.is_empty(),
            "{:?}",
            v.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn swallowed_result_flags_wildcard_discards_only() {
        let f = file(
            "fn a() { let _ = fallible(); }\n\
             fn b() { let _ack = fallible(); }\n\
             fn c() { let _span = rec.span(\"x\"); }\n\
             fn d(x: usize) { if x == 1 { } }\n\
             #[cfg(test)]\nmod t {\n fn e() { let _ = fallible(); }\n}\n",
        );
        let mut v = Vec::new();
        check_swallowed_result(&f, &mut v);
        assert_eq!(
            v.len(),
            1,
            "{:?}",
            v.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
        assert_eq!((v[0].line, v[0].rule), (1, "swallowed-result"));
    }

    #[test]
    fn swallowed_result_waivers_suppress_site_and_file() {
        let site = file(
            "// lint: allow(swallowed-result): best-effort cache warm-up\n\
             fn a() { let _ = warm(); }\n",
        );
        let mut v = Vec::new();
        check_swallowed_result(&site, &mut v);
        assert!(
            v.is_empty(),
            "{:?}",
            v.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );

        let whole = file(
            "// lint: allow-file(swallowed-result): fmt::Write into a String cannot fail\n\
             fn a(out: &mut String) { let _ = writeln!(out, \"x\"); }\n\
             fn b(out: &mut String) { let _ = write!(out, \"y\"); }\n",
        );
        let mut v = Vec::new();
        check_swallowed_result(&whole, &mut v);
        assert!(
            v.is_empty(),
            "{:?}",
            v.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn bounded_channel_flags_unbounded_ctors_only() {
        let f = file(
            "fn a() { let (tx, rx) = mpsc::channel(); }\n\
             fn b() { let (tx, rx) = mpsc::sync_channel(4); }\n\
             fn c() { let q: VecDeque<u32> = VecDeque::new(); }\n\
             fn d() { let q: VecDeque<u32> = VecDeque::with_capacity(8); }\n\
             fn e() { let q: VecDeque<u32> = VecDeque::default(); }\n\
             #[cfg(test)]\nmod t {\n fn f() { let q: VecDeque<u32> = VecDeque::new(); }\n}\n",
        );
        let mut v = Vec::new();
        check_bounded_channel(&f, &mut v);
        assert_eq!(
            v.len(),
            3,
            "{:?}",
            v.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
        assert!(v.iter().all(|v| v.rule == "bounded-channel"));
        assert_eq!(v.iter().map(|v| v.line).collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    fn bounded_channel_waiver_suppresses() {
        let f = file(
            "// lint: allow(bounded-channel): drained synchronously before the next push\n\
             fn a() { let q: VecDeque<u32> = VecDeque::new(); }\n",
        );
        let mut v = Vec::new();
        check_bounded_channel(&f, &mut v);
        assert!(
            v.is_empty(),
            "{:?}",
            v.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn stringly_metric_flags_literal_names_only() {
        let f = file(
            "fn a(rec: &Recorder) { rec.incr(\"serve.requests\"); }\n\
             fn b(rec: &Recorder) { rec.observe(keys::SERVE_WAIT_US, w); }\n\
             fn c(rec: &Recorder) { rec.add(\n    \"serve.bytes\",\n    n,\n); }\n\
             fn d(s: &Sweep) { let t = s.time(); }\n\
             fn e(fl: &FlightRecorder) { fl.note(keys::FLIGHT_MANUAL, detail); }\n\
             #[cfg(test)]\nmod t {\n fn f(rec: &Recorder) { rec.incr(\"fine.in.tests\"); }\n}\n",
        );
        let mut v = Vec::new();
        check_stringly_metric(&f, &mut v);
        assert_eq!(
            v.len(),
            2,
            "{:?}",
            v.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
        assert!(v.iter().all(|v| v.rule == "stringly-metric"));
        assert_eq!(v.iter().map(|v| v.line).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn stringly_metric_waiver_suppresses() {
        let f = file(
            "// lint: allow(stringly-metric): one-off probe, not part of the taxonomy\n\
             fn a(rec: &Recorder) { rec.incr(\"probe.count\"); }\n",
        );
        let mut v = Vec::new();
        check_stringly_metric(&f, &mut v);
        assert!(
            v.is_empty(),
            "{:?}",
            v.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unknown_rule_and_missing_reason_in_waivers_are_flagged() {
        let f = file("// lint: allow(frobnicate)\nfn a() {}\n");
        let mut v = Vec::new();
        check_waiver_reasons(&f, &mut v);
        assert_eq!(
            v.len(),
            2,
            "{:?}",
            v.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unchecked_cast_flags_numeric_targets_only() {
        let f = file(
            "fn a(n: usize) -> f64 { n as f64 }\n\
             fn b(b: u64) -> usize { b as usize }\n\
             fn c(t: MicroSecs) -> f64 { t.as_micros() }\n\
             fn d(x: Foo) -> Bar { x as Bar }\n\
             fn e(s: &str) { let masked = \"n as f64\"; }\n\
             #[cfg(test)]\nmod t {\n fn f(n: usize) -> f64 { n as f64 }\n}\n",
        );
        let mut v = Vec::new();
        check_unchecked_cast(&f, &mut v);
        assert_eq!(
            v.len(),
            2,
            "{:?}",
            v.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
        assert!(v.iter().all(|v| v.rule == "unchecked-cast"));
        assert_eq!((v[0].line, v[1].line), (1, 2));
        assert!(v[0].message.contains("as f64"), "{}", v[0].message);
    }

    #[test]
    fn unchecked_cast_waiver_suppresses() {
        let f = file(
            "// lint: allow(unchecked-cast): count below 2^53, exact in f64\n\
             fn a(n: usize) -> f64 { n as f64 }\n",
        );
        let mut v = Vec::new();
        check_unchecked_cast(&f, &mut v);
        assert!(
            v.is_empty(),
            "{:?}",
            v.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
    }
}
