//! Watchdogs: scanning an executed timeline for deadline and budget
//! violations, and classifying the resulting events as transient or
//! persistent.

use crate::events::DegradationEvent;
use adapipe_sim::{OpKind, SimReport, StageExec};
use adapipe_units::Bytes;

/// Detection thresholds.
///
/// * `alpha` — the per-op deadline multiplier: an op whose observed
///   duration exceeds `alpha` × its planned duration raises
///   [`DegradationEvent::DeadlineMissed`]. The paper's planned
///   micro-step `M₀` is built from exactly these per-stage times, so
///   `alpha` bounds the tolerated drift of the steady phase.
/// * `persistent_threshold` — a stage with at least this many deadline
///   misses in one scan is classified a *persistent* straggler (worth
///   a replan); fewer are *transient* (worth a retry).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Watchdog {
    /// Deadline multiplier over the planned op time.
    pub alpha: f64,
    /// Deadline misses per stage at which a fault counts as persistent.
    pub persistent_threshold: usize,
}

impl Default for Watchdog {
    fn default() -> Self {
        Watchdog {
            alpha: 1.5,
            persistent_threshold: 3,
        }
    }
}

/// Classified scan result, ready for the replan ladder.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Diagnosis {
    /// `(stage, micro_batch)` of each transient deadline miss.
    pub transient_stalls: Vec<(usize, usize)>,
    /// Stages missing deadlines persistently (≥ threshold misses).
    pub persistent_stragglers: Vec<usize>,
    /// `(stage, high_water, budget)` of each budget violation.
    pub budget_exceeded: Vec<(usize, Bytes, Bytes)>,
}

impl Diagnosis {
    /// Whether nothing was detected.
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        self.transient_stalls.is_empty()
            && self.persistent_stragglers.is_empty()
            && self.budget_exceeded.is_empty()
    }

    /// Whether any detection warrants re-running the planner
    /// (persistent straggler or budget loss — transient stalls only
    /// warrant retries).
    #[must_use]
    pub fn needs_replan(&self) -> bool {
        !self.persistent_stragglers.is_empty() || !self.budget_exceeded.is_empty()
    }
}

impl Watchdog {
    /// Scans an executed timeline against the plan's promises:
    /// per-op deadlines (`alpha` × the planned stage times) and
    /// per-device dynamic-memory budgets (`budgets[d]`; devices beyond
    /// `budgets.len()` are unchecked, as are stages beyond
    /// `planned.len()`).
    ///
    /// Events are returned in timeline order (deadlines) followed by
    /// device order (budgets) — deterministic for equal reports.
    #[must_use]
    pub fn scan(
        &self,
        report: &SimReport,
        planned: &[StageExec],
        budgets: &[Bytes],
    ) -> Vec<DegradationEvent> {
        let mut events = Vec::new();
        for e in &report.timeline {
            let Some(stage) = planned.get(e.meta.stage) else {
                continue;
            };
            let planned_dur = match e.meta.kind {
                OpKind::Forward => stage.time_f,
                OpKind::Backward => stage.time_b,
            };
            let deadline = planned_dur * self.alpha;
            let observed = e.end - e.start;
            if observed > deadline {
                events.push(DegradationEvent::DeadlineMissed {
                    stage: e.meta.stage,
                    micro_batch: e.meta.micro_batch,
                    observed,
                    deadline,
                });
            }
        }
        for (device, d) in report.devices.iter().enumerate() {
            let Some(&budget) = budgets.get(device) else {
                continue;
            };
            if !d.peak_dynamic_bytes.fits(budget) {
                events.push(DegradationEvent::BudgetExceeded {
                    stage: device,
                    high_water: d.peak_dynamic_bytes,
                    budget,
                });
            }
        }
        events
    }

    /// Splits scanned events into transient stalls, persistent
    /// stragglers and budget violations (see [`Watchdog`] for the
    /// threshold semantics).
    #[must_use]
    pub fn diagnose(&self, events: &[DegradationEvent]) -> Diagnosis {
        let mut diagnosis = Diagnosis::default();
        let mut missed: Vec<(usize, usize)> = Vec::new();
        for e in events {
            match e {
                DegradationEvent::DeadlineMissed {
                    stage, micro_batch, ..
                } => missed.push((*stage, *micro_batch)),
                DegradationEvent::BudgetExceeded {
                    stage,
                    high_water,
                    budget,
                } => diagnosis
                    .budget_exceeded
                    .push((*stage, *high_water, *budget)),
            }
        }
        let mut stages: Vec<usize> = missed.iter().map(|&(s, _)| s).collect();
        stages.sort_unstable();
        stages.dedup();
        for stage in stages {
            let misses: Vec<(usize, usize)> = missed
                .iter()
                .copied()
                .filter(|&(s, _)| s == stage)
                .collect();
            if misses.len() >= self.persistent_threshold {
                diagnosis.persistent_stragglers.push(stage);
            } else {
                diagnosis.transient_stalls.extend(misses);
            }
        }
        diagnosis
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapipe_sim::{schedule, simulate, TaskGraph};
    use adapipe_units::MicroSecs;

    fn stages(p: usize) -> Vec<StageExec> {
        vec![
            StageExec {
                time_f: MicroSecs::new(1.0),
                time_b: MicroSecs::new(2.0),
                saved_bytes: Bytes::new(100),
                buffer_bytes: Bytes::ZERO
            };
            p
        ]
    }

    fn healthy_run(p: usize, n: usize) -> (TaskGraph, Vec<StageExec>) {
        let st = stages(p);
        (schedule::one_f_one_b(&st, n, MicroSecs::ZERO), st)
    }

    #[test]
    fn healthy_run_raises_nothing() {
        let (graph, planned) = healthy_run(3, 6);
        let report = simulate(&graph);
        let wd = Watchdog::default();
        let budgets = vec![Bytes::new(1_000_000); 3];
        let events = wd.scan(&report, &planned, &budgets);
        assert!(events.is_empty(), "{events:?}");
        assert!(wd.diagnose(&events).is_healthy());
    }

    #[test]
    fn slowed_device_misses_deadlines_persistently() {
        let (mut graph, planned) = healthy_run(3, 8);
        graph.slow_device(1, 0.5); // 2x slower: over the 1.5x deadline
        let report = simulate(&graph);
        let wd = Watchdog::default();
        let events = wd.scan(&report, &planned, &[]);
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| e.stage() == 1));
        let diagnosis = wd.diagnose(&events);
        assert_eq!(diagnosis.persistent_stragglers, vec![1]);
        assert!(diagnosis.transient_stalls.is_empty());
        assert!(diagnosis.needs_replan());
    }

    #[test]
    fn single_stall_is_transient() {
        let (mut graph, planned) = healthy_run(3, 8);
        // Lengthen one forward on device 2 past the deadline.
        let id = (0..graph.len())
            .find(|&i| graph.task_device(i) == 2 && graph.task_meta(i).micro_batch == 4)
            .unwrap();
        graph.delay_task(id, MicroSecs::new(5.0));
        let report = simulate(&graph);
        let wd = Watchdog::default();
        let diagnosis = wd.diagnose(&wd.scan(&report, &planned, &[]));
        assert_eq!(diagnosis.transient_stalls, vec![(2, 4)]);
        assert!(diagnosis.persistent_stragglers.is_empty());
        assert!(!diagnosis.needs_replan());
        assert!(!diagnosis.is_healthy());
    }

    #[test]
    fn budget_overrun_is_detected_per_device() {
        let (graph, planned) = healthy_run(3, 6);
        let report = simulate(&graph);
        // Stage 0 holds p - 0 = 3 in-flight activations of 100 B; give
        // it a budget of only 2.
        let budgets = vec![Bytes::new(200), Bytes::new(1_000_000)];
        let wd = Watchdog::default();
        let events = wd.scan(&report, &planned, &budgets);
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0],
            DegradationEvent::BudgetExceeded { stage: 0, .. }
        ));
        let diagnosis = wd.diagnose(&events);
        assert_eq!(diagnosis.budget_exceeded.len(), 1);
        assert!(diagnosis.needs_replan());
    }
}
