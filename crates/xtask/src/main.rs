//! `xtask` — workspace maintenance tasks, invoked as
//! `cargo run -p xtask -- <task>`.
//!
//! * `lint` — a zero-dependency source-level lint pass enforcing the
//!   panic-freedom and API-hygiene rules documented in
//!   `docs/static-analysis.md`. It is deliberately *not* a Rust parser —
//!   it scans masked source text (comments and strings blanked) so it
//!   stays dependency-free and fast, at the cost of only catching the
//!   idioms it was written for.
//! * `bench-diff` — compares two directories of `BENCH_*.json` bench
//!   artifacts and fails on >20% regression of any named metric (see
//!   `docs/observability.md`).

use xtask::{bench_diff, lint};

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
usage: cargo run -p xtask -- <task>

tasks:
  lint                              run the workspace source-level lint pass
                                    (see docs/static-analysis.md)
  bench-diff <baseline-dir> <new>   compare BENCH_*.json artifacts; exits
                                    non-zero on >20% regression of a metric
";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(task) = args.next() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    match task.as_str() {
        "lint" => lint_task(),
        "bench-diff" => {
            let (Some(baseline), Some(new)) = (args.next(), args.next()) else {
                eprintln!("error: bench-diff needs <baseline-dir> and <new-dir>\n");
                eprint!("{USAGE}");
                return ExitCode::FAILURE;
            };
            bench_diff_task(&PathBuf::from(baseline), &PathBuf::from(new))
        }
        "-h" | "--help" | "help" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("error: unknown task `{other}`\n");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn bench_diff_task(baseline: &Path, new: &Path) -> ExitCode {
    let report = match bench_diff::diff_dirs(baseline, new) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    for name in &report.missing_in_new {
        println!("note: {name} present in baseline only — skipped");
    }
    for name in &report.only_in_new {
        println!("note: {name} present in new run only — no baseline");
    }
    for d in &report.diffs {
        println!("{d}");
    }
    let regressions = report.regressions(bench_diff::REGRESSION_THRESHOLD);
    if regressions.is_empty() {
        println!(
            "bench-diff: ok — {} metric(s) compared, none regressed >{:.0}%",
            report.diffs.len(),
            bench_diff::REGRESSION_THRESHOLD * 100.0
        );
        return ExitCode::SUCCESS;
    }
    println!("\nbench-diff: {} regression(s) >20%:", regressions.len());
    for d in regressions {
        println!("  REGRESSED {d}");
    }
    ExitCode::FAILURE
}

fn lint_task() -> ExitCode {
    let root = workspace_root();
    let violations = lint::run(&root);
    if violations.is_empty() {
        println!("lint: ok — no violations");
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        println!("{v}");
    }
    println!("lint: {} violation(s)", violations.len());
    ExitCode::FAILURE
}

/// The workspace root: `CARGO_MANIFEST_DIR/../..` when run via cargo,
/// the current directory otherwise.
fn workspace_root() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        let manifest = PathBuf::from(dir);
        if let Some(root) = manifest.parent().and_then(|p| p.parent()) {
            return root.to_path_buf();
        }
    }
    PathBuf::from(".")
}
