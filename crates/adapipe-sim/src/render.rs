//! Timeline rendering: ASCII Gantt charts (the Figure 2 style) and
//! Chrome-trace JSON export (`chrome://tracing` / Perfetto) for
//! inspecting simulated schedules interactively.

// lint: allow-file(swallowed-result): fmt::Write into a String cannot fail
use crate::report::SimReport;
use crate::task::OpKind;
use adapipe_units::{convert, Bytes, MicroSecs};
use std::fmt::Write as _;

/// Renders the report as an ASCII Gantt chart, one row per device,
/// `width` characters across the makespan. Forward passes print their
/// micro-batch digit (mod 10), backward passes print `B`, idle time `.`.
///
/// # Panics
///
/// Panics if `width` is zero.
#[must_use]
pub fn render_ascii(report: &SimReport, width: usize) -> String {
    assert!(width > 0, "need a positive width");
    let mut out = String::new();
    if report.makespan <= MicroSecs::ZERO {
        return out;
    }
    let scale = convert::count_f64(width) / report.makespan.as_micros();
    for dev in 0..report.devices.len() {
        let mut line = vec!['.'; width];
        for e in report.timeline.iter().filter(|e| e.device == dev) {
            let from = convert::f64_usize_clamped((e.start.as_micros() * scale).floor());
            let to = convert::f64_usize_clamped((e.end.as_micros() * scale).ceil())
                .min(width)
                .max(from + 1);
            let ch = match e.meta.kind {
                OpKind::Forward => u32::try_from(e.meta.micro_batch % 10)
                    .ok()
                    .and_then(|d| char::from_digit(d, 10))
                    .unwrap_or('F'),
                OpKind::Backward => 'B',
            };
            for c in line.iter_mut().take(to).skip(from) {
                *c = ch;
            }
        }
        let _ = writeln!(out, "device {dev} |{}|", line.iter().collect::<String>());
    }
    out
}

/// Renders one device's dynamic-memory trace as a sparkline of `width`
/// buckets, each showing the bucket's peak as a 0–9 digit scaled to the
/// overall maximum (`.` = no allocation). The time-resolved view of the
/// Figure 1 measurements.
///
/// # Panics
///
/// Panics if `width` is zero.
#[must_use]
pub fn render_memory_sparkline(report: &SimReport, device: usize, width: usize) -> String {
    assert!(width > 0, "need a positive width");
    let samples: Vec<_> = report
        .memory_timeline
        .iter()
        .filter(|s| s.device == device)
        .collect();
    let max = report
        .memory_timeline
        .iter()
        .map(|s| s.bytes)
        .max()
        .unwrap_or(Bytes::ZERO);
    if max == Bytes::ZERO || report.makespan <= MicroSecs::ZERO {
        return ".".repeat(width);
    }
    // Peak per bucket, carrying the running level across bucket edges.
    let mut buckets = vec![Bytes::ZERO; width];
    let mut level = Bytes::ZERO;
    let mut cursor = 0usize;
    for (b, bucket) in buckets.iter_mut().enumerate() {
        let end = report.makespan * (convert::count_f64(b + 1) / convert::count_f64(width));
        let mut peak = level;
        while cursor < samples.len() && samples[cursor].time <= end {
            level = samples[cursor].bytes;
            peak = peak.max(level);
            cursor += 1;
        }
        *bucket = peak;
    }
    buckets
        .iter()
        .map(|&b| {
            if b == Bytes::ZERO {
                '.'
            } else {
                u32::try_from((b.get() * 9) / max.get())
                    .ok()
                    .and_then(|d| char::from_digit(d, 10))
                    .unwrap_or('9')
            }
        })
        .collect()
}

/// Exports the timeline as Chrome-trace JSON (an array of complete
/// duration events with microsecond timestamps — the native unit of
/// [`MicroSecs`], so no conversion factor appears), loadable in
/// `chrome://tracing` or Perfetto.
#[must_use]
pub fn to_chrome_trace(report: &SimReport) -> String {
    let mut out = String::from("[");
    for (i, e) in report.timeline.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let name = format!(
            "{}{} s{}{}",
            e.meta.kind,
            e.meta.micro_batch,
            e.meta.stage,
            if e.meta.replica > 0 { " up" } else { "" }
        );
        let _ = write!(
            out,
            "\n  {{\"name\": \"{name}\", \"cat\": \"{}\", \"ph\": \"X\", \
             \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": 0, \"tid\": {}}}",
            report.schedule,
            e.start.as_micros(),
            (e.end - e.start).as_micros(),
            e.device,
        );
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::schedule;
    use crate::task::StageExec;
    use adapipe_units::{Bytes, MicroSecs};

    fn report() -> SimReport {
        let stages = vec![
            StageExec {
                time_f: MicroSecs::new(1.0),
                time_b: MicroSecs::new(2.0),
                saved_bytes: Bytes::new(1),
                buffer_bytes: Bytes::ZERO
            };
            3
        ];
        simulate(&schedule::one_f_one_b(&stages, 4, MicroSecs::ZERO))
    }

    #[test]
    fn ascii_has_one_row_per_device() {
        let r = report();
        let art = render_ascii(&r, 60);
        assert_eq!(art.lines().count(), 3);
        for line in art.lines() {
            assert!(line.starts_with("device "));
            assert!(line.contains('B'));
            assert!(line.contains('0'));
        }
    }

    #[test]
    fn ascii_width_is_respected() {
        let r = report();
        for width in [10usize, 40, 120] {
            for line in render_ascii(&r, width).lines() {
                let bar = line.split('|').nth(1).expect("framed row");
                assert_eq!(bar.chars().count(), width);
            }
        }
    }

    #[test]
    fn empty_report_renders_empty() {
        let r = SimReport {
            schedule: "x".into(),
            makespan: MicroSecs::ZERO,
            devices: vec![],
            timeline: vec![],
            memory_timeline: vec![],
        };
        assert!(render_ascii(&r, 10).is_empty());
    }

    #[test]
    fn memory_sparkline_tracks_the_ledger() {
        let r = report();
        let line = render_memory_sparkline(&r, 0, 40);
        assert_eq!(line.chars().count(), 40);
        // Device 0 (stage 0) reaches the global peak: a '9' must appear.
        assert!(line.contains('9'), "{line}");
        // Memory ramps up during warmup: the first bucket is below peak.
        assert!(!line.starts_with('9'), "{line}");
    }

    #[test]
    fn memory_trace_is_consistent_with_peaks() {
        let r = report();
        for (dev, d) in r.devices.iter().enumerate() {
            let max = r
                .memory_timeline
                .iter()
                .filter(|s| s.device == dev)
                .map(|s| s.bytes)
                .max()
                .unwrap_or(Bytes::ZERO);
            assert_eq!(max, d.peak_dynamic_bytes, "device {dev}");
            // Fully drained: the last sample returns to zero.
            let last = r.memory_timeline.iter().rfind(|s| s.device == dev).unwrap();
            assert_eq!(last.bytes, Bytes::ZERO, "device {dev}");
        }
    }

    #[test]
    fn chrome_trace_is_wellformed_json_shape() {
        let r = report();
        let json = to_chrome_trace(&r);
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        // One event per executed task.
        assert_eq!(json.matches("\"ph\": \"X\"").count(), r.timeline.len());
        // Balanced braces and no stray quotes-in-names (labels are
        // machine-generated, so a structural check suffices).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"tid\": 2"));
    }

    #[test]
    fn chrome_trace_durations_are_positive() {
        let json = to_chrome_trace(&report());
        for part in json.split("\"dur\": ").skip(1) {
            let num: f64 = part.split(',').next().unwrap().parse().unwrap();
            assert!(num > 0.0);
        }
    }
}
