//! Model, workload and parallelism descriptions for the AdaPipe reproduction.
//!
//! This crate is the vocabulary shared by every other crate in the
//! workspace. It describes
//!
//! * transformer models as a *sequence of layers*
//!   (`[Embedding, (Attention, FeedForward) × L, DecodingHead]`, the view
//!   taken by §5 of the paper),
//! * the finer-grained *computation units* inside each layer (Figure 4 of
//!   the paper) that adaptive recomputation decides to save or recompute,
//! * 3D-parallel training configurations (tensor / data / pipeline sizes,
//!   micro-batch size, sequence length, global batch size).
//!
//! # Example
//!
//! ```
//! use adapipe_model::{presets, LayerSeq, ParallelConfig, TrainConfig};
//!
//! let model = presets::gpt3_175b();
//! let seq = LayerSeq::for_model(&model);
//! // GPT-3 has 96 decoder layers -> 2*96 + 2 entries in the layer sequence.
//! assert_eq!(seq.len(), 194);
//!
//! let parallel = ParallelConfig::new(8, 8, 1)?;
//! let train = TrainConfig::new(1, 4096, 128)?;
//! assert_eq!(train.micro_batches(&parallel), 128);
//! # Ok::<(), adapipe_model::ConfigError>(())
//! ```

#![forbid(unsafe_code)]

mod error;
mod layer;
mod parallel;
mod params;
pub mod presets;
mod seq;
mod spec;
mod unit;

pub use error::ConfigError;
pub use layer::{Layer, LayerKind};
pub use parallel::{ParallelConfig, TrainConfig};
pub use seq::{LayerRange, LayerSeq};
pub use spec::{FfnKind, ModelSpec, ModelSpecBuilder};
pub use unit::{units_for_layer, ComputationUnit, UnitKind};
