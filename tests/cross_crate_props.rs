//! Property-based tests spanning crates: the analytic 1F1B cost model
//! against the discrete-event simulator, and the planner's feasibility
//! guarantees under randomized workloads.

use adapipe_partition::{f1b_iteration_time, StageTimes};
use adapipe_sim::{schedule, simulate, StageExec};
use adapipe_units::{Bytes, MicroSecs};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Equation (3) and the event simulator agree exactly on uniform
    /// pipelines, for any forward/backward ratio, depth and micro-batch
    /// count.
    #[test]
    fn analytic_1f1b_exact_on_uniform_pipelines(
        f in 0.05f64..5.0,
        b in 0.05f64..10.0,
        p in 1usize..10,
        extra in 0usize..40,
    ) {
        let stages = vec![
            StageExec {
                time_f: MicroSecs::new(f),
                time_b: MicroSecs::new(b),
                saved_bytes: Bytes::new(1),
                buffer_bytes: Bytes::ZERO
            };
            p
        ];
        let stage_times = vec![
            StageTimes {
                f: MicroSecs::new(f),
                b: MicroSecs::new(b)
            };
            p
        ];
        let n = p + extra;
        let analytic = f1b_iteration_time(&stage_times, n).total().as_micros();
        let simulated = simulate(&schedule::one_f_one_b(&stages, n, MicroSecs::ZERO))
            .makespan
            .as_micros();
        prop_assert!(
            (analytic - simulated).abs() <= 1e-9 * analytic.max(1.0),
            "analytic {analytic} vs simulated {simulated} (p={p}, n={n})"
        );
    }

    /// On *balanced* pipelines — the regime AdaPipe leaves every plan in
    /// after its partitioning pass: micro-step spread within 20 % and a
    /// long steady phase — the paper's cost model is a lower bound that
    /// tracks the simulator within 10 %. Outside this regime Equation (3)
    /// is only "near-optimal", which is exactly how the paper positions
    /// it (our planner's own plans agree within 5 %; see the end-to-end
    /// tests).
    #[test]
    fn analytic_1f1b_tracks_simulated_in_balanced_regime(
        base in 0.5f64..2.0,
        spreads in proptest::collection::vec((1.0f64..1.2, 1.5f64..3.0), 2..9),
        extra in 0usize..64,
    ) {
        let stages: Vec<StageExec> = spreads
            .iter()
            .map(|&(sp, ratio)| StageExec {
                time_f: MicroSecs::new(base * sp),
                time_b: MicroSecs::new(base * sp * ratio),
                saved_bytes: Bytes::new(1),
                buffer_bytes: Bytes::ZERO,
            })
            .collect();
        let steps: Vec<f64> = stages
            .iter()
            .map(|s| (s.time_f + s.time_b).as_micros())
            .collect();
        let spread = steps.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            / steps.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assume!(spread <= 1.2);
        let stage_times: Vec<StageTimes> = stages
            .iter()
            .map(|s| StageTimes { f: s.time_f, b: s.time_b })
            .collect();
        // Long steady phase: n >= 4p, as in every paper workload.
        let n = 4 * stages.len() + extra;
        let analytic = f1b_iteration_time(&stage_times, n).total();
        let simulated = simulate(&schedule::one_f_one_b(&stages, n, MicroSecs::ZERO)).makespan;
        prop_assert!(
            simulated >= analytic - MicroSecs::new(1e-9),
            "model must not overestimate"
        );
        prop_assert!(
            simulated <= analytic * 1.10,
            "analytic {analytic} vs simulated {simulated} (p={}, n={n})",
            stages.len()
        );
    }

    /// 1F1B peak activation residency is exactly (p - s) micro-batches
    /// plus the recompute buffer, for any stage times.
    #[test]
    fn f1b_memory_residency_invariant(
        times in proptest::collection::vec((0.1f64..5.0, 0.1f64..10.0), 2..8),
        saved in 1u64..1000,
        buffer in 0u64..100,
        extra in 0usize..20,
    ) {
        let p = times.len();
        let stages: Vec<StageExec> = times
            .iter()
            .map(|&(f, b)| StageExec {
                time_f: MicroSecs::new(f),
                time_b: MicroSecs::new(b),
                saved_bytes: Bytes::new(saved),
                buffer_bytes: Bytes::new(buffer),
            })
            .collect();
        let n = p + extra;
        let report = simulate(&schedule::one_f_one_b(&stages, n, MicroSecs::ZERO));
        for (s, dev) in report.devices.iter().enumerate() {
            prop_assert_eq!(
                dev.peak_dynamic_bytes,
                Bytes::new((p - s) as u64 * saved + buffer),
                "stage {} of p={}, n={}", s, p, n
            );
        }
    }

    /// GPipe residency is n micro-batches everywhere — always at least
    /// the 1F1B peak.
    #[test]
    fn gpipe_dominates_f1b_memory(
        times in proptest::collection::vec((0.1f64..5.0, 0.1f64..10.0), 2..8),
        saved in 1u64..1000,
        extra in 0usize..20,
    ) {
        let stages: Vec<StageExec> = times
            .iter()
            .map(|&(f, b)| StageExec {
                time_f: MicroSecs::new(f),
                time_b: MicroSecs::new(b),
                saved_bytes: Bytes::new(saved),
                buffer_bytes: Bytes::ZERO,
            })
            .collect();
        let n = stages.len() + extra;
        let g = simulate(&schedule::gpipe(&stages, n, MicroSecs::ZERO));
        let f = simulate(&schedule::one_f_one_b(&stages, n, MicroSecs::ZERO));
        for (gd, fd) in g.devices.iter().zip(&f.devices) {
            prop_assert_eq!(gd.peak_dynamic_bytes, Bytes::new(n as u64 * saved));
            prop_assert!(gd.peak_dynamic_bytes >= fd.peak_dynamic_bytes);
        }
    }

    /// P2P delays only ever slow the pipeline down, monotonically.
    #[test]
    fn p2p_delay_is_monotone(
        times in proptest::collection::vec((0.1f64..5.0, 0.1f64..10.0), 2..6),
        d1 in 0.0f64..0.5,
        d2 in 0.0f64..0.5,
    ) {
        let stages: Vec<StageExec> = times
            .iter()
            .map(|&(f, b)| StageExec {
                time_f: MicroSecs::new(f),
                time_b: MicroSecs::new(b),
                saved_bytes: Bytes::ZERO,
                buffer_bytes: Bytes::ZERO,
            })
            .collect();
        let n = stages.len() + 4;
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let t_lo = simulate(&schedule::one_f_one_b(&stages, n, MicroSecs::new(lo))).makespan;
        let t_hi = simulate(&schedule::one_f_one_b(&stages, n, MicroSecs::new(hi))).makespan;
        prop_assert!(t_hi >= t_lo - MicroSecs::new(1e-9));
    }
}

/// Randomized planner feasibility: every plan the adaptive search emits
/// fits its own memory constraint when simulated.
#[test]
fn random_workloads_yield_feasible_adaptive_plans() {
    use adapipe::{Method, Planner};
    use adapipe_hw::presets as hw;
    use adapipe_model::{presets, ParallelConfig, TrainConfig};

    let planner = Planner::new(presets::gpt2_small(), hw::cluster_a_with_nodes(1));
    for (t, p, seq, gbs) in [
        (1usize, 2usize, 512usize, 8usize),
        (2, 2, 1024, 16),
        (2, 4, 2048, 16),
        (4, 2, 512, 32),
        (1, 8, 1024, 16),
    ] {
        let parallel = ParallelConfig::new(t, p, 1).expect("valid");
        let train = TrainConfig::new(1, seq, gbs).expect("valid");
        let Ok(plan) = planner.plan(Method::AdaPipe, parallel, train) else {
            continue;
        };
        let eval = planner.evaluate(&plan);
        assert!(
            eval.fits,
            "({t},{p}) seq {seq}: {:.1} GB",
            eval.max_peak_gb()
        );
        assert!(!eval.iteration_time.is_invalid_cost());
    }
}
