//! Minimal HTTP/1.1 framing over `TcpStream`.
//!
//! The daemon speaks just enough of RFC 9112 for its four endpoints:
//! one request per connection (`Connection: close`), `Content-Length`
//! bodies only (no chunked encoding), UTF-8 text payloads, and hard
//! caps on header and body size so a misbehaving client cannot grow
//! server memory without bound.

use std::fmt;
use std::io::{Read, Write};
use std::net::TcpStream;

/// Cap on the request line + headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Cap on the request body, in bytes. Plan requests are a dozen short
/// `key = value` lines; a megabyte is already absurdly generous.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (path + optional query).
    pub path: String,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Decoded UTF-8 body (empty when no `Content-Length`).
    pub body: String,
}

impl Request {
    /// The first header named `name` (ASCII case-insensitive).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The socket failed mid-read.
    Io(std::io::Error),
    /// The bytes on the wire were not a well-formed request.
    Malformed(String),
    /// The head or body exceeded its size cap.
    TooLarge(&'static str),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error while reading the request: {e}"),
            HttpError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            HttpError::TooLarge(what) => write!(f, "request {what} exceeds the size cap"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Offset of the `\r\n\r\n` head terminator, if present.
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reads and parses one request from `stream`.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_len = loop {
        if let Some(pos) = head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge("head"));
        }
        let n = stream.read(&mut chunk).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::Malformed(
                "connection closed before the headers ended".to_string(),
            ));
        }
        buf.extend_from_slice(chunk.get(..n).unwrap_or(&[]));
    };

    let head = String::from_utf8_lossy(buf.get(..head_len).unwrap_or(&[])).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".to_string()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing method".to_string()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".to_string()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".to_string()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported protocol version {version}"
        )));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header line without a colon: {line}")))?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed(format!("bad Content-Length: {v}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge("body"));
    }

    let mut body: Vec<u8> = buf.get(head_len + 4..).unwrap_or(&[]).to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::Malformed(
                "connection closed before the body ended".to_string(),
            ));
        }
        body.extend_from_slice(chunk.get(..n).unwrap_or(&[]));
    }
    body.truncate(content_length);
    let body = String::from_utf8(body)
        .map_err(|_| HttpError::Malformed("body is not valid UTF-8".to_string()))?;

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// An HTTP response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (200, 404, 503, ...).
    pub status: u16,
    /// Extra headers beyond the framing set.
    pub headers: Vec<(String, String)>,
    /// UTF-8 body.
    pub body: String,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
}

impl Response {
    /// A `text/plain` response.
    #[must_use]
    pub fn new(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: body.into(),
            content_type: "text/plain; charset=utf-8",
        }
    }

    /// An `application/json` response.
    #[must_use]
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            content_type: "application/json",
            ..Response::new(status, body)
        }
    }

    /// Adds a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// The reason phrase for `status`.
    #[must_use]
    pub fn status_text(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            422 => "Unprocessable Entity",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serializes and writes the response; the caller owns closing the
    /// stream (every response carries `Connection: close`).
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            Response::status_text(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Runs `read_request` against raw bytes pushed through a real
    /// socket pair.
    fn read_from_bytes(bytes: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let payload = bytes.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&payload).unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let result = read_request(&mut conn);
        writer.join().unwrap();
        result
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            read_from_bytes(b"POST /v1/plan HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/plan");
        assert_eq!(req.body, "hello");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = read_from_bytes(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_garbage() {
        let err = read_from_bytes(b"this is not http\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "{err}");
    }

    #[test]
    fn rejects_bad_content_length() {
        let err =
            read_from_bytes(b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n").unwrap_err();
        assert!(err.to_string().contains("Content-Length"), "{err}");
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        let err = read_from_bytes(huge.as_bytes()).unwrap_err();
        assert!(matches!(err, HttpError::TooLarge(_)), "{err}");
    }

    #[test]
    fn response_round_trips_over_a_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            Response::new(200, "body text")
                .with_header("X-Adapipe-Cache", "hit")
                .write_to(&mut conn)
                .unwrap();
        });
        let mut client = TcpStream::connect(addr).unwrap();
        let mut text = String::new();
        client.read_to_string(&mut text).unwrap();
        server.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("X-Adapipe-Cache: hit"), "{text}");
        assert!(text.contains("Connection: close"), "{text}");
        assert!(text.ends_with("body text"), "{text}");
    }
}
