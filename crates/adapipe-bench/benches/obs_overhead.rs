//! Overhead of the observability layer: a disabled recorder must cost a
//! single branch per operation, so instrumented hot paths (the knapsack
//! inner loop, the simulator event loop) stay free when no sink is
//! attached. The enabled recorder is benchmarked alongside for scale.

use adapipe_obs::{keys, Recorder};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const OPS: usize = 10_000;

fn bench_obs(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");

    let disabled = Recorder::disabled();
    group.bench_function("disabled_10k_ops", |b| {
        b.iter(|| {
            for i in 0..OPS {
                disabled.add(black_box(keys::KNAPSACK_CELLS), i as u64);
            }
        });
    });

    let enabled = Recorder::new();
    group.bench_function("enabled_10k_ops", |b| {
        b.iter(|| {
            for i in 0..OPS {
                enabled.add(black_box(keys::KNAPSACK_CELLS), i as u64);
            }
        });
    });

    group.bench_function("disabled_span_10k", |b| {
        b.iter(|| {
            for _ in 0..OPS {
                let _g = disabled.span(black_box("plan.partition"));
            }
        });
    });

    group.finish();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
