// lint: allow(traced-pair): the plain variant lives in a sibling module
pub fn solve_traced(x: usize, rec: &Recorder) -> f64 {
    let _ = (x, rec);
    0.0
}
