//! The process-global, content-addressed subproblem cache.
//!
//! The §5.3 isomorphism cache inside one [`crate::KnapsackCostProvider`]
//! dedupes leaves *within* a single solve; this cache dedupes them
//! *across* solves, providers, and requests. A knapsack leaf is fully
//! determined by three inputs — the window's unit profiles (kinds and
//! bit-exact times/sizes, *not* absolute layer indices), the
//! per-micro-batch activation budget, and the [`KnapsackConfig`] — so
//! those are canonicalized to bytes and hashed with
//! [`adapipe_exec::sha256`], the same content-addressing trick
//! `adapipe-serve` uses for whole plan requests. Two requests that
//! share layer shapes (the common case for a daemon replanning the
//! same model at different batch sizes, or sibling model variants)
//! then warm-start from each other's leaves.
//!
//! Determinism law: a cached [`LeafOutcome`] stores only the chosen
//! saved/recomputed *flags*; the caller rebuilds the
//! [`OptimizedStage`] against its own window's units, so costs and
//! absolute layer numbering are recomputed exactly and a subcache hit
//! is byte-identical to a fresh knapsack solve (the knapsack DP is a
//! deterministic function of exactly the hashed inputs).
//!
//! Capacity is bounded (`ADAPIPE_SUBCACHE_CAP` entries, LRU per
//! shard) with eviction and byte accounting surfaced as `subcache.*`
//! metrics.

use adapipe_exec::cache::Digest;
use adapipe_exec::{sha256, CacheStats, ShardedCache};
use adapipe_model::UnitKind;
use adapipe_profiler::UnitProfile;
use adapipe_recompute::strategy::cost_of;
use adapipe_recompute::{KnapsackConfig, OptimizedStage, RecomputeStrategy, StrategyError};
use adapipe_units::Bytes;
use std::sync::{Arc, OnceLock};

/// Environment variable bounding the global cache's entry count.
pub const CAPACITY_ENV: &str = "ADAPIPE_SUBCACHE_CAP";

/// Default entry bound: leaves are tens of bytes each, so the default
/// keeps the cache a few megabytes at worst.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// The cached outcome of one knapsack leaf, in window-relative form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeafOutcome {
    /// The chosen per-unit saved flags, parallel to the window's units
    /// in execution order.
    Feasible {
        /// Saved/recomputed decision per unit.
        saved: Vec<bool>,
    },
    /// The window cannot fit even under full recomputation.
    OutOfMemory {
        /// Memory required by pinned units per micro-batch.
        required: Bytes,
        /// Memory available per micro-batch.
        budget: Bytes,
    },
}

/// A process-global, sharded, content-addressed cache of knapsack
/// leaves. Construct your own for isolation (tests) or share
/// [`global`] across every planner in the process (the daemon).
#[derive(Debug)]
pub struct SubproblemCache {
    inner: ShardedCache<LeafOutcome>,
}

impl SubproblemCache {
    /// A cache bounded to `capacity` entries (floored at 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        SubproblemCache {
            inner: ShardedCache::new(capacity),
        }
    }

    /// The configured entry bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Entries currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Exact hit/miss counters since construction.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Entries evicted by the LRU bound since construction.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.inner.evictions()
    }

    /// Approximate bytes currently held.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.inner.bytes()
    }

    /// Looks up a leaf by its canonical digest.
    #[must_use]
    pub fn lookup(&self, key: &Digest) -> Option<Arc<LeafOutcome>> {
        self.inner.get(key)
    }

    /// Stores a leaf outcome; returns how many entries the LRU bound
    /// evicted to make room.
    pub fn store(&self, key: Digest, outcome: LeafOutcome) -> usize {
        let approx = approx_entry_bytes(&outcome);
        self.inner.insert(key, outcome, approx)
    }
}

/// The shared process-global cache, sized by `ADAPIPE_SUBCACHE_CAP`
/// (read once, at first use).
pub fn global() -> &'static SubproblemCache {
    static GLOBAL: OnceLock<SubproblemCache> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let capacity = std::env::var(CAPACITY_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_CAPACITY);
        SubproblemCache::new(capacity)
    })
}

/// The canonical digest of one *layer*'s unit profiles: unit kinds
/// (which also fix pinnedness) and bit-exact forward/backward times and
/// saved sizes. Absolute layer indices are deliberately excluded — they
/// do not enter the DP, which is what lets isomorphic windows of
/// *different* requests share an entry.
///
/// This is the memoizable half of leaf keying: a provider hashes each
/// layer once and every window key is then a cheap hash over the
/// layers' digests ([`leaf_key`]) instead of a re-serialization of the
/// whole window — without the memo, keying a leaf costs more than the
/// microsecond-scale knapsack solve it is trying to skip.
#[must_use]
pub fn layer_digest(units: &[UnitProfile]) -> Digest {
    let mut bytes = Vec::with_capacity(24 + units.len() * 25);
    bytes.extend_from_slice(b"adapipe-layer-v1");
    bytes.extend_from_slice(&u64::try_from(units.len()).unwrap_or(u64::MAX).to_le_bytes());
    for u in units {
        bytes.push(kind_tag(u.unit.kind));
        bytes.extend_from_slice(&u.time_f.as_micros().to_bits().to_le_bytes());
        bytes.extend_from_slice(&u.time_b.as_micros().to_bits().to_le_bytes());
        bytes.extend_from_slice(&u.mem_saved.get().to_le_bytes());
    }
    sha256(&bytes)
}

/// The canonical digest of one knapsack leaf: the digests of the
/// window's layers (see [`layer_digest`]; truncated to 8 bytes each —
/// the final SHA-256 provides the content addressing), the
/// per-micro-batch activation budget, and the knapsack tuning. The
/// stage number is excluded: it enters only through the budget.
#[must_use]
pub fn leaf_key(layers: &[Digest], budget: Bytes, config: KnapsackConfig) -> Digest {
    let mut bytes = Vec::with_capacity(48 + layers.len() * 8);
    bytes.extend_from_slice(b"adapipe-leaf-v2\0");
    bytes.extend_from_slice(&budget.get().to_le_bytes());
    bytes.extend_from_slice(
        &u64::try_from(config.max_capacity_cells)
            .unwrap_or(u64::MAX)
            .to_le_bytes(),
    );
    bytes.push(u8::from(config.disable_gcd));
    bytes.extend_from_slice(
        &u64::try_from(layers.len())
            .unwrap_or(u64::MAX)
            .to_le_bytes(),
    );
    for d in layers {
        bytes.extend_from_slice(d.get(..8).unwrap_or(d));
    }
    sha256(&bytes)
}

/// Converts a knapsack result into its cacheable window-relative form.
/// Only deterministic outcomes are cacheable: a successful solve, or
/// the pinned-exceeds-budget infeasibility. Other errors return `None`
/// and pass through uncached.
#[must_use]
pub fn outcome_of(result: &Result<OptimizedStage, StrategyError>) -> Option<LeafOutcome> {
    match result {
        Ok(opt) => Some(LeafOutcome::Feasible {
            saved: opt.strategy.iter().collect(),
        }),
        Err(StrategyError::OutOfMemory { required, budget }) => Some(LeafOutcome::OutOfMemory {
            required: *required,
            budget: *budget,
        }),
        Err(_) => None,
    }
}

/// Rebuilds the full [`OptimizedStage`] a cached leaf stands for,
/// against *this* window's units — costs, slack, and absolute layer
/// numbering are recomputed exactly, so the result is byte-identical
/// to a fresh [`adapipe_recompute::optimize_traced`] call.
///
/// # Errors
///
/// Replays the cached [`StrategyError::OutOfMemory`] for infeasible
/// leaves.
pub fn rebuild(
    units: &[UnitProfile],
    budget: Bytes,
    outcome: &LeafOutcome,
) -> Result<OptimizedStage, StrategyError> {
    match outcome {
        LeafOutcome::Feasible { saved } => {
            let strategy = RecomputeStrategy::from_flags(units, saved.clone());
            let cost = cost_of(units, &strategy);
            Ok(OptimizedStage {
                slack_bytes: budget.saturating_sub(cost.saved_bytes_per_mb),
                strategy,
                cost,
            })
        }
        LeafOutcome::OutOfMemory { required, budget } => Err(StrategyError::OutOfMemory {
            required: *required,
            budget: *budget,
        }),
    }
}

/// Approximate resident size of one cache entry, for the
/// `subcache.bytes` gauge: digest + flags + map/entry overhead.
fn approx_entry_bytes(outcome: &LeafOutcome) -> u64 {
    let payload = match outcome {
        LeafOutcome::Feasible { saved } => saved.len(),
        LeafOutcome::OutOfMemory { .. } => 16,
    };
    96 + u64::try_from(payload).unwrap_or(u64::MAX)
}

/// A stable one-byte tag per [`UnitKind`] for the canonical encoding
/// (enum discriminants are not a stable wire format).
fn kind_tag(kind: UnitKind) -> u8 {
    match kind {
        UnitKind::Embedding => 0,
        UnitKind::AttnNorm => 1,
        UnitKind::QProj => 2,
        UnitKind::KProj => 3,
        UnitKind::VProj => 4,
        UnitKind::CoreAttention => 5,
        UnitKind::OutProj => 6,
        UnitKind::FfnNorm => 7,
        UnitKind::FfnFc1 => 8,
        UnitKind::FfnAct => 9,
        UnitKind::FfnFc2 => 10,
        UnitKind::FfnGate => 11,
        UnitKind::FfnUp => 12,
        UnitKind::FfnActGated => 13,
        UnitKind::FfnDown => 14,
        UnitKind::DecodingHead => 15,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapipe_model::ComputationUnit;
    use adapipe_recompute::optimize_with;
    use adapipe_units::MicroSecs;

    fn unit(kind: UnitKind, layer: usize, f: f64, b: f64, mem: u64) -> UnitProfile {
        UnitProfile {
            unit: ComputationUnit { kind, layer },
            time_f: MicroSecs::new(f),
            time_b: MicroSecs::new(b),
            mem_saved: Bytes::new(mem),
        }
    }

    fn window(layer0: usize) -> Vec<UnitProfile> {
        vec![
            unit(UnitKind::AttnNorm, layer0, 1.0, 2.0, 64),
            unit(UnitKind::CoreAttention, layer0, 5.0, 9.0, 256),
            unit(UnitKind::OutProj, layer0, 4.0, 7.0, 128),
            unit(UnitKind::FfnFc1, layer0 + 1, 6.0, 11.0, 512),
            unit(UnitKind::FfnFc2, layer0 + 1, 6.0, 11.0, 128),
        ]
    }

    /// Splits the two-layer fixture window into per-layer digests the
    /// way a provider's memo does.
    fn digests_of(units: &[UnitProfile]) -> Vec<Digest> {
        let split = units.iter().position(|u| u.unit.kind == UnitKind::FfnFc1);
        let split = split.expect("fixture window has an FFN layer");
        let (a, b) = units.split_at(split);
        vec![layer_digest(a), layer_digest(b)]
    }

    #[test]
    fn key_ignores_absolute_layer_indices() {
        let cfg = KnapsackConfig::default();
        let a = leaf_key(&digests_of(&window(0)), Bytes::new(600), cfg);
        let b = leaf_key(&digests_of(&window(40)), Bytes::new(600), cfg);
        assert_eq!(a, b, "isomorphic windows at different offsets share a key");
    }

    #[test]
    fn key_depends_on_budget_config_and_content() {
        let cfg = KnapsackConfig::default();
        let layers = digests_of(&window(0));
        let base = leaf_key(&layers, Bytes::new(600), cfg);
        assert_ne!(base, leaf_key(&layers, Bytes::new(601), cfg));
        let mut no_gcd = cfg;
        no_gcd.disable_gcd = true;
        assert_ne!(base, leaf_key(&layers, Bytes::new(600), no_gcd));
        let mut tweaked = window(0);
        tweaked[1].time_f = MicroSecs::new(5.000001);
        assert_ne!(
            base,
            leaf_key(&digests_of(&tweaked), Bytes::new(600), cfg),
            "a single bit-flip in one unit's time must change the key"
        );
        // Layer order matters: the key is positional, not a bag.
        let mut swapped = layers.clone();
        swapped.reverse();
        assert_ne!(base, leaf_key(&swapped, Bytes::new(600), cfg));
    }

    #[test]
    fn rebuild_is_byte_identical_to_fresh_solve() {
        let cfg = KnapsackConfig::default();
        for budget in [400u64, 600, 900, 2000] {
            let units = window(3);
            let budget = Bytes::new(budget);
            let fresh = optimize_with(&units, budget, cfg);
            let outcome = outcome_of(&fresh).expect("deterministic outcome");
            let rebuilt = rebuild(&units, budget, &outcome);
            assert_eq!(fresh, rebuilt);
        }
    }

    #[test]
    fn infeasible_outcomes_replay_the_error() {
        let cfg = KnapsackConfig::default();
        let units = window(0);
        // Pinned units alone (OutProj 128 + FfnFc2 128) exceed 100.
        let fresh = optimize_with(&units, Bytes::new(100), cfg);
        assert!(fresh.is_err());
        let outcome = outcome_of(&fresh).expect("OOM is cacheable");
        assert_eq!(rebuild(&units, Bytes::new(100), &outcome), fresh);
    }

    #[test]
    fn store_and_lookup_round_trip_with_accounting() {
        let cache = SubproblemCache::new(16);
        let key = leaf_key(
            &digests_of(&window(0)),
            Bytes::new(600),
            KnapsackConfig::default(),
        );
        assert!(cache.lookup(&key).is_none());
        cache.store(
            key,
            LeafOutcome::Feasible {
                saved: vec![true; 5],
            },
        );
        let hit = cache.lookup(&key).expect("stored entry");
        assert_eq!(
            *hit,
            LeafOutcome::Feasible {
                saved: vec![true; 5]
            }
        );
        assert_eq!(cache.stats(), CacheStats::new(1, 1));
        assert!(cache.bytes() > 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn global_cache_is_a_singleton() {
        let a = global() as *const SubproblemCache;
        let b = global() as *const SubproblemCache;
        assert_eq!(a, b);
        assert!(global().capacity() >= 1);
    }
}
