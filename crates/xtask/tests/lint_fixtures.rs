//! Fixture-based self-tests for the lint runner: each rule is driven
//! against a deliberately-violating source file under `fixtures/` and
//! must fire with its own rule id; the `_waived` twin carries a
//! justified `// lint: allow(rule): reason` and must stay silent.
//!
//! Without these the linter is only ever exercised against the live
//! (clean) tree, so a regressed rule would pass silently.

use std::path::{Path, PathBuf};
use xtask::lint::{
    check_bounded_channel, check_float_eq, check_index_confusion, check_panic_freedom,
    check_raw_quantities, check_stringly_metric, check_swallowed_result, check_traced_pairs,
    check_unchecked_cast, check_unpooled_thread, check_unsafe_header, check_waiver_reasons,
    Violation,
};
use xtask::source::SourceFile;

type Checker = fn(&SourceFile, &mut Vec<Violation>);

fn fixture(name: &str) -> SourceFile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()));
    SourceFile::parse(PathBuf::from(name), &text)
}

fn violations(checker: Checker, name: &str) -> Vec<Violation> {
    let file = fixture(name);
    let mut out = Vec::new();
    checker(&file, &mut out);
    out
}

/// Every violating fixture fires its own rule id at least once, and
/// nothing else; the `_waived` twin is silent.
#[test]
fn each_rule_fires_on_its_fixture_and_respects_waivers() {
    let cases: &[(&str, &str, Checker)] = &[
        ("unwrap", "unwrap.rs", check_panic_freedom),
        ("expect", "expect.rs", check_panic_freedom),
        ("panic", "panic.rs", check_panic_freedom),
        ("index", "index.rs", check_panic_freedom),
        ("float-eq", "float_eq.rs", check_float_eq),
        ("traced-pair", "traced_pair.rs", check_traced_pairs),
        (
            "raw-quantity-in-api",
            "raw_quantity_in_api.rs",
            check_raw_quantities,
        ),
        (
            "index-confusion",
            "index_confusion.rs",
            check_index_confusion,
        ),
        (
            "swallowed-result",
            "swallowed_result.rs",
            check_swallowed_result,
        ),
        (
            "bounded-channel",
            "bounded_channel.rs",
            check_bounded_channel,
        ),
        (
            "stringly-metric",
            "stringly_metric.rs",
            check_stringly_metric,
        ),
        ("unchecked-cast", "unchecked_cast.rs", check_unchecked_cast),
        (
            "unpooled-thread",
            "unpooled_thread.rs",
            check_unpooled_thread,
        ),
    ];
    for (rule, file, checker) in cases {
        let bad = violations(*checker, file);
        assert!(
            bad.iter().any(|v| v.rule == *rule),
            "{file}: rule `{rule}` did not fire: {:?}",
            bad.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
        let waived_name = file.replace(".rs", "_waived.rs");
        let waived = violations(*checker, &waived_name);
        assert!(
            waived.iter().all(|v| v.rule != *rule),
            "{waived_name}: waiver did not suppress `{rule}`: {:?}",
            waived.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
    }
}

/// The raw-quantity fixture flags both the `flops: f64` and the
/// `bytes: u64` parameter — the rule reads names and scalar types, not
/// just one hard-coded pattern.
#[test]
fn raw_quantity_fixture_flags_both_parameters() {
    let v = violations(check_raw_quantities, "raw_quantity_in_api.rs");
    assert_eq!(
        v.len(),
        2,
        "{:?}",
        v.iter().map(ToString::to_string).collect::<Vec<_>>()
    );
    assert!(v.iter().all(|v| v.rule == "raw-quantity-in-api"));
}

/// The index-confusion fixture holds one raw construction and one raw
/// `.0` extraction; both are reported on their own lines.
#[test]
fn index_confusion_fixture_flags_construction_and_extraction() {
    let v = violations(check_index_confusion, "index_confusion.rs");
    assert_eq!(
        v.len(),
        2,
        "{:?}",
        v.iter().map(ToString::to_string).collect::<Vec<_>>()
    );
    assert!(v.iter().any(|v| v.message.contains("LayerIdx(..)")));
    assert!(v.iter().any(|v| v.message.contains(".get()")));
}

/// The unchecked-cast fixture holds five bare numeric casts across four
/// lines; `as_micros`, `try_from`, the `convert` helper and the cast
/// inside a string literal all stay silent.
#[test]
fn unchecked_cast_fixture_flags_every_bare_cast() {
    let v = violations(check_unchecked_cast, "unchecked_cast.rs");
    assert_eq!(
        v.len(),
        5,
        "{:?}",
        v.iter().map(ToString::to_string).collect::<Vec<_>>()
    );
    assert!(v.iter().all(|v| v.rule == "unchecked-cast"));
}

/// `unsafe-header` works on raw crate-root text, not a SourceFile: the
/// missing-attribute fixture fires, the compliant one does not.
#[test]
fn unsafe_header_fixture() {
    let read = |name: &str| {
        std::fs::read_to_string(
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("tests")
                .join("fixtures")
                .join(name),
        )
        .expect("fixture readable")
    };
    let mut v = Vec::new();
    check_unsafe_header(Path::new("lib.rs"), &read("unsafe_header.rs"), &mut v);
    assert_eq!(v.len(), 1);
    assert_eq!(v[0].rule, "unsafe-header");

    let mut ok = Vec::new();
    check_unsafe_header(Path::new("lib.rs"), &read("unsafe_header_ok.rs"), &mut ok);
    assert!(ok.is_empty());
}

/// A waiver naming an unknown rule, with no justification, is itself
/// flagged twice (unknown rule + missing reason).
#[test]
fn bogus_waiver_fixture_is_flagged() {
    let v = violations(check_waiver_reasons, "waiver_bad.rs");
    assert_eq!(
        v.len(),
        2,
        "{:?}",
        v.iter().map(ToString::to_string).collect::<Vec<_>>()
    );
    assert!(v.iter().all(|v| v.rule == "waiver"));
}
