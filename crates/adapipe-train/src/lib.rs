//! Miniature training engine: a from-scratch tensor/autograd core, a tiny
//! GPT, and a **real multi-threaded pipeline-parallel trainer** that
//! honors per-unit recomputation strategies.
//!
//! The paper validates (§7.5, Figure 10) that AdaPipe's plans change *no
//! math* — recomputation only changes *when* activations are
//! rematerialized, and repartitioning only changes *where* layers run —
//! so the loss curve is unchanged. This crate reproduces that validation
//! end to end, standing in for the paper's Megatron/MindSpore execution
//! engines:
//!
//! * [`tensor`] / [`tape`] — dense f32 tensors and reverse-mode autograd
//!   (matmul, layer norm, GeLU, fused causal attention, embedding,
//!   cross-entropy), gradient-checked against finite differences.
//! * [`units`] — the same computation-unit decomposition as
//!   [`adapipe_model`] (Figure 4), each unit an executable module.
//! * [`stage`] — a pipeline stage that *drops* the intermediates of
//!   recomputed units after the forward pass and rematerializes them
//!   segment-by-segment in the backward pass, exactly as the execution
//!   engine of §6 does.
//! * [`pipeline`] — stage threads connected by channels running the 1F1B
//!   script, with synchronous gradient accumulation and SGD/Adam.
//!
//! Because recomputation repeats bit-identical f32 kernels, losses are
//! **exactly** equal across strategies — asserted in tests, plotted in
//! the Figure 10 regenerator.
//!
//! # Example
//!
//! ```
//! use adapipe_train::{train, TrainerConfig};
//!
//! let cfg = TrainerConfig::tiny_for_tests();
//! let full = train(&cfg.with_full_recompute());
//! let none = train(&cfg.with_no_recompute());
//! assert_eq!(full.losses, none.losses); // bit-identical
//! ```

#![forbid(unsafe_code)]

pub mod data;
pub mod pipeline;
pub mod stage;
pub mod tape;
pub mod tensor;
pub mod units;

mod trainer;

pub use pipeline::{train_iteration_watched, TrainWatchdog};
pub use trainer::{train, LrSchedule, RecomputeMode, TrainReport, TrainerConfig};
