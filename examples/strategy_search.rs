//! Parallel-strategy search (the §7.3 protocol): iterate every legal
//! `(tensor, pipeline, data)` split of a device budget and let the
//! planner pick the fastest memory-feasible combination.
//!
//! ```bash
//! cargo run --release --example strategy_search
//! ```

use adapipe::{best_outcome, sweep_parallel_strategies, Method, Planner};
use adapipe_hw::presets as hw;
use adapipe_model::{presets, TrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let planner = Planner::new(presets::llama2_70b(), hw::cluster_a_with_nodes(4));
    let train = TrainConfig::new(1, 8192, 64)?;
    let devices = 32;

    println!(
        "sweeping (t, p, d) strategies for {} on {devices} GPUs, seq 8192:\n",
        planner.model().name()
    );
    let outcomes = sweep_parallel_strategies(&planner, Method::AdaPipe, devices, train, 8, 2);
    for o in &outcomes {
        println!("  {o}");
    }
    let best = best_outcome(&outcomes).ok_or("no feasible strategy")?;
    println!(
        "\nbest: {} at {:.3}s — smaller TP boosts math efficiency until memory \
         or bubbles push back (§7.3 of the paper).",
        best.parallel,
        best.time().expect("best is feasible")
    );
    Ok(())
}
