//! The plan-request wire format, its canonicalization, and the
//! content-addressing digest.
//!
//! A request body is a versioned, line-oriented `key = value` document
//! (the same shape as the plan text format):
//!
//! ```text
//! adapipe-plan-request v1
//! model = gpt2
//! cluster = a
//! nodes = 1
//! tensor = 2
//! pipeline = 4
//! seq_len = 512
//! global_batch = 16
//! ```
//!
//! Parsing is closed-world (unknown or duplicate keys are rejected) and
//! every omitted optional key is materialized with its default, so two
//! *dimensionally equal* configs — however they were spelled — produce
//! the same [`PlanRequest::canonical_text`] and therefore the same
//! SHA-256 [`PlanRequest::digest`]. The digest is the cache address:
//! `GET /v1/plan/{digest}` and the `X-Adapipe-Digest` response header
//! both speak it.
//!
//! `deadline_ms` is deliberately excluded from the canonical text: a
//! deadline changes how long the caller will wait, not which plan they
//! are asking for.

use crate::names;
use crate::sha;
use adapipe::{Method, Planner};
use adapipe_memory::OptimizerSpec;
use adapipe_model::{ParallelConfig, TrainConfig};
use adapipe_units::MicroSecs;
use std::fmt;

/// The version header every request body must start with.
pub const REQUEST_HEADER: &str = "adapipe-plan-request v1";

/// The search headroom a request defaults to — must equal the
/// [`Planner`] default so "omitted" and "spelled-out default" digest
/// identically.
pub const DEFAULT_HEADROOM: f64 = 0.875;

/// A validated, normalized plan request.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRequest {
    /// Model preset name (see [`names::MODEL_CHOICES`]).
    pub model: String,
    /// Cluster preset name (see [`names::CLUSTER_CHOICES`]).
    pub cluster: String,
    /// Cluster size in nodes.
    pub nodes: usize,
    /// Tensor-parallel degree.
    pub tensor: usize,
    /// Pipeline-parallel degree.
    pub pipeline: usize,
    /// Data-parallel degree.
    pub data: usize,
    /// Micro-batch size.
    pub micro_batch: usize,
    /// Sequence length.
    pub seq_len: usize,
    /// Global batch size.
    pub global_batch: usize,
    /// Method name (see [`names::METHOD_CHOICES`]).
    pub method: String,
    /// Search headroom in `(0, 1]`.
    pub headroom: f64,
    /// Whether the optimizer keeps FP32 gradient accumulators.
    pub fp32_grads: bool,
    /// Per-request deadline; **not** part of the digest.
    pub deadline: Option<MicroSecs>,
}

/// Why a request body was rejected.
#[derive(Debug)]
pub enum RequestError {
    /// The body was not a well-formed request document.
    Malformed(String),
    /// A key named a choice outside the closed vocabulary.
    UnknownChoice {
        /// The offending key.
        key: &'static str,
        /// What was given.
        value: String,
        /// The valid choices.
        choices: &'static str,
    },
    /// The keys parsed but the configuration is invalid (sizes,
    /// divisibility, ...).
    Domain(String),
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::Malformed(msg) => write!(f, "{msg}"),
            RequestError::UnknownChoice {
                key,
                value,
                choices,
            } => write!(f, "{key} = {value}: expected one of {choices}"),
            RequestError::Domain(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for RequestError {}

fn positive(key: &'static str, value: &str) -> Result<usize, RequestError> {
    value
        .parse::<usize>()
        .ok()
        .filter(|&v| v > 0)
        .ok_or_else(|| {
            RequestError::Malformed(format!("{key} = {value}: expected a positive integer"))
        })
}

impl PlanRequest {
    /// A request with every optional key at its default (model `gpt3`,
    /// cluster `a` at its default node count, `d = 1`, micro-batch 1,
    /// method `adapipe`, default headroom, FP16 grads, no deadline).
    #[must_use]
    pub fn new(tensor: usize, pipeline: usize, seq_len: usize, global_batch: usize) -> Self {
        PlanRequest {
            model: "gpt3".to_string(),
            cluster: "a".to_string(),
            nodes: names::default_nodes("a").unwrap_or(8),
            tensor,
            pipeline,
            data: 1,
            micro_batch: 1,
            seq_len,
            global_batch,
            method: "adapipe".to_string(),
            headroom: DEFAULT_HEADROOM,
            fp32_grads: false,
            deadline: None,
        }
    }

    /// Parses and validates a request body.
    pub fn parse(text: &str) -> Result<PlanRequest, RequestError> {
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));
        let header = lines
            .next()
            .ok_or_else(|| RequestError::Malformed("empty request body".to_string()))?;
        if header != REQUEST_HEADER {
            return Err(RequestError::Malformed(format!(
                "first line must be `{REQUEST_HEADER}`, got `{header}`"
            )));
        }

        let mut model = None;
        let mut cluster = None;
        let mut nodes = None;
        let mut tensor = None;
        let mut pipeline = None;
        let mut data = None;
        let mut micro_batch = None;
        let mut seq_len = None;
        let mut global_batch = None;
        let mut method = None;
        let mut headroom = None;
        let mut fp32_grads = None;
        let mut deadline = None;
        let mut seen: Vec<String> = Vec::new();

        for line in lines {
            let (key, value) = line.split_once('=').ok_or_else(|| {
                RequestError::Malformed(format!("expected `key = value`, got `{line}`"))
            })?;
            let key = key.trim();
            let value = value.trim();
            if seen.iter().any(|k| k == key) {
                return Err(RequestError::Malformed(format!("duplicate key `{key}`")));
            }
            seen.push(key.to_string());
            match key {
                "model" => {
                    if names::model(value).is_none() {
                        return Err(RequestError::UnknownChoice {
                            key: "model",
                            value: value.to_string(),
                            choices: names::MODEL_CHOICES,
                        });
                    }
                    model = Some(value.to_string());
                }
                "cluster" => {
                    if names::default_nodes(value).is_none() {
                        return Err(RequestError::UnknownChoice {
                            key: "cluster",
                            value: value.to_string(),
                            choices: names::CLUSTER_CHOICES,
                        });
                    }
                    cluster = Some(value.to_string());
                }
                "nodes" => nodes = Some(positive("nodes", value)?),
                "tensor" => tensor = Some(positive("tensor", value)?),
                "pipeline" => pipeline = Some(positive("pipeline", value)?),
                "data" => data = Some(positive("data", value)?),
                "micro_batch" => micro_batch = Some(positive("micro_batch", value)?),
                "seq_len" => seq_len = Some(positive("seq_len", value)?),
                "global_batch" => global_batch = Some(positive("global_batch", value)?),
                "method" => {
                    if names::method(value).is_none() {
                        return Err(RequestError::UnknownChoice {
                            key: "method",
                            value: value.to_string(),
                            choices: names::METHOD_CHOICES,
                        });
                    }
                    method = Some(value.to_string());
                }
                "headroom" => {
                    let h: f64 = value.parse().map_err(|_| {
                        RequestError::Malformed(format!(
                            "headroom = {value}: expected a fraction in (0, 1]"
                        ))
                    })?;
                    if !(h.is_finite() && h > 0.0 && h <= 1.0) {
                        return Err(RequestError::Malformed(format!(
                            "headroom = {value}: must be in (0, 1]"
                        )));
                    }
                    headroom = Some(h);
                }
                "fp32_grads" => {
                    fp32_grads = Some(match value {
                        "true" => true,
                        "false" => false,
                        other => {
                            return Err(RequestError::UnknownChoice {
                                key: "fp32_grads",
                                value: other.to_string(),
                                choices: "true, false",
                            })
                        }
                    });
                }
                "deadline_ms" => {
                    let ms = positive("deadline_ms", value)?;
                    deadline = Some(MicroSecs::new(ms as f64 * 1e3));
                }
                other => {
                    return Err(RequestError::Malformed(format!("unknown key `{other}`")));
                }
            }
        }

        let require = |key: &'static str, v: Option<usize>| {
            v.ok_or_else(|| RequestError::Malformed(format!("missing required key `{key}`")))
        };
        let cluster = cluster.unwrap_or_else(|| "a".to_string());
        let nodes = match nodes {
            Some(n) => n,
            None => names::default_nodes(&cluster).unwrap_or(8),
        };
        Ok(PlanRequest {
            model: model.unwrap_or_else(|| "gpt3".to_string()),
            cluster,
            nodes,
            tensor: require("tensor", tensor)?,
            pipeline: require("pipeline", pipeline)?,
            data: data.unwrap_or(1),
            micro_batch: micro_batch.unwrap_or(1),
            seq_len: require("seq_len", seq_len)?,
            global_batch: require("global_batch", global_batch)?,
            method: method.unwrap_or_else(|| "adapipe".to_string()),
            headroom: headroom.unwrap_or(DEFAULT_HEADROOM),
            fp32_grads: fp32_grads.unwrap_or(false),
            deadline,
        })
    }

    /// The canonical form: fixed key order, every default materialized,
    /// deadline excluded. Dimensionally-equal requests render the same
    /// text.
    #[must_use]
    pub fn canonical_text(&self) -> String {
        format!(
            "{REQUEST_HEADER}\n\
             cluster = {}\n\
             data = {}\n\
             fp32_grads = {}\n\
             global_batch = {}\n\
             headroom = {:?}\n\
             method = {}\n\
             micro_batch = {}\n\
             model = {}\n\
             nodes = {}\n\
             pipeline = {}\n\
             seq_len = {}\n\
             tensor = {}\n",
            self.cluster,
            self.data,
            self.fp32_grads,
            self.global_batch,
            self.headroom,
            self.method,
            self.micro_batch,
            self.model,
            self.nodes,
            self.pipeline,
            self.seq_len,
            self.tensor,
        )
    }

    /// The content address: SHA-256 of [`Self::canonical_text`], hex.
    #[must_use]
    pub fn digest(&self) -> String {
        sha::sha256_hex(self.canonical_text().as_bytes())
    }

    /// The wire text a client sends. Includes the deadline when set
    /// (unlike the canonical text, which drops it).
    #[must_use]
    pub fn to_wire_text(&self) -> String {
        let mut text = self.canonical_text();
        if let Some(deadline) = self.deadline {
            text.push_str(&format!(
                "deadline_ms = {}\n",
                (deadline.as_micros() / 1e3).round() as u64
            ));
        }
        text
    }

    /// Builds the planner this request describes (model + cluster +
    /// headroom + optimizer).
    pub fn planner(&self) -> Result<Planner, RequestError> {
        let model = names::model(&self.model).ok_or_else(|| RequestError::UnknownChoice {
            key: "model",
            value: self.model.clone(),
            choices: names::MODEL_CHOICES,
        })?;
        let cluster = names::cluster(&self.cluster, Some(self.nodes)).ok_or_else(|| {
            RequestError::UnknownChoice {
                key: "cluster",
                value: self.cluster.clone(),
                choices: names::CLUSTER_CHOICES,
            }
        })?;
        if !(self.headroom > 0.0 && self.headroom <= 1.0) {
            return Err(RequestError::Domain(format!(
                "headroom {} must be in (0, 1]",
                self.headroom
            )));
        }
        let mut planner = Planner::new(model, cluster).with_search_headroom(self.headroom);
        if self.fp32_grads {
            planner = planner.with_optimizer(OptimizerSpec::adam_fp32_grad_accum());
        }
        Ok(planner)
    }

    /// The method this request asks for.
    pub fn method_enum(&self) -> Result<Method, RequestError> {
        names::method(&self.method).ok_or_else(|| RequestError::UnknownChoice {
            key: "method",
            value: self.method.clone(),
            choices: names::METHOD_CHOICES,
        })
    }

    /// The `(t, p, d)` strategy.
    pub fn parallel(&self) -> Result<ParallelConfig, RequestError> {
        ParallelConfig::new(self.tensor, self.pipeline, self.data)
            .map_err(|e| RequestError::Domain(e.to_string()))
    }

    /// The training workload.
    pub fn train(&self) -> Result<TrainConfig, RequestError> {
        TrainConfig::new(self.micro_batch, self.seq_len, self.global_batch)
            .map_err(|e| RequestError::Domain(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> String {
        format!(
            "{REQUEST_HEADER}\nmodel = gpt2\ncluster = a\nnodes = 1\n\
             tensor = 2\npipeline = 4\nseq_len = 512\nglobal_batch = 16\n"
        )
    }

    #[test]
    fn parse_materializes_defaults() {
        let req = PlanRequest::parse(&minimal()).unwrap();
        assert_eq!(req.data, 1);
        assert_eq!(req.micro_batch, 1);
        assert_eq!(req.method, "adapipe");
        assert!((req.headroom - DEFAULT_HEADROOM).abs() < 1e-12);
        assert!(!req.fp32_grads);
        assert!(req.deadline.is_none());
    }

    #[test]
    fn dimensionally_equal_spellings_share_a_digest() {
        let implicit = PlanRequest::parse(&minimal()).unwrap();
        let explicit = PlanRequest::parse(&format!(
            "{REQUEST_HEADER}\n# a comment\nmethod = adapipe\ndata = 1\n\
             micro_batch = 1\nheadroom = 0.875\nfp32_grads = false\n\
             global_batch = 16\nseq_len = 512\npipeline = 4\ntensor = 2\n\
             nodes = 1\ncluster = a\nmodel = gpt2\n"
        ))
        .unwrap();
        assert_eq!(implicit.digest(), explicit.digest());
        assert_eq!(implicit, explicit);
    }

    #[test]
    fn deadline_does_not_change_the_digest() {
        let without = PlanRequest::parse(&minimal()).unwrap();
        let with = PlanRequest::parse(&format!("{}deadline_ms = 250\n", minimal())).unwrap();
        assert_eq!(without.digest(), with.digest());
        assert_eq!(with.deadline, Some(MicroSecs::new(250_000.0)));
    }

    #[test]
    fn different_configs_have_different_digests() {
        let a = PlanRequest::parse(&minimal()).unwrap();
        let b = PlanRequest::parse(&minimal().replace("seq_len = 512", "seq_len = 1024")).unwrap();
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn canonical_text_round_trips_through_parse() {
        let req = PlanRequest::parse(&minimal()).unwrap();
        let reparsed = PlanRequest::parse(&req.canonical_text()).unwrap();
        assert_eq!(req, reparsed);
        let wired = PlanRequest::parse(
            &PlanRequest {
                deadline: Some(MicroSecs::new(5e5)),
                ..req.clone()
            }
            .to_wire_text(),
        )
        .unwrap();
        assert_eq!(wired.deadline, Some(MicroSecs::new(5e5)));
        assert_eq!(wired.digest(), req.digest());
    }

    #[test]
    fn rejects_bad_documents() {
        for (body, needle) in [
            ("", "empty request"),
            ("adapipe-plan-request v2\n", "first line"),
            (&format!("{REQUEST_HEADER}\nbogus\n"), "key = value"),
            (&format!("{REQUEST_HEADER}\nwarp = 9\n"), "unknown key"),
            (
                &format!("{REQUEST_HEADER}\ntensor = 2\ntensor = 4\n"),
                "duplicate",
            ),
            (&format!("{REQUEST_HEADER}\ntensor = 0\n"), "positive"),
            (&minimal().replace("model = gpt2", "model = bloom"), "model"),
            (&format!("{}headroom = 1.5\n", minimal()), "headroom"),
            (
                &minimal().replace("tensor = 2\n", ""),
                "missing required key `tensor`",
            ),
        ] {
            let err = PlanRequest::parse(body).unwrap_err().to_string();
            assert!(err.contains(needle), "body {body:?} gave {err}");
        }
    }

    #[test]
    fn resolves_into_domain_objects() {
        let req = PlanRequest::parse(&minimal()).unwrap();
        let planner = req.planner().unwrap();
        assert_eq!(planner.model().name(), "gpt2-small");
        assert_eq!(req.method_enum().unwrap(), Method::AdaPipe);
        assert_eq!(req.parallel().unwrap().devices(), 8);
        assert_eq!(req.train().unwrap().seq_len(), 512);
    }
}
