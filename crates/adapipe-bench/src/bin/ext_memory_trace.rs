//! Extension: time-resolved per-stage memory traces — the dynamic view
//! behind Figure 1's peaks. Renders each stage's activation ledger over
//! one iteration as a sparkline (0–9 = fraction of the global dynamic
//! peak), for DAPPLE-Non and AdaPipe.

use adapipe::{Method, Planner};
use adapipe_bench::gb;
use adapipe_hw::presets as hw;
use adapipe_model::{presets, ParallelConfig, TrainConfig};
use adapipe_sim::render;

fn main() {
    let planner = Planner::new(presets::gpt3_175b(), hw::cluster_a());
    let parallel = ParallelConfig::new(8, 8, 1).expect("valid");
    let train = TrainConfig::new(1, 8192, 64).expect("valid");

    for method in [Method::DappleNone, Method::DappleFull, Method::AdaPipe] {
        let plan = planner.plan(method, parallel, train).expect("plans");
        let eval = planner.evaluate(&plan);
        println!(
            "\n== {method} — dynamic memory over one iteration ({}) ==",
            if eval.fits { "fits" } else { "OOM" }
        );
        for stage in 0..parallel.pipeline() {
            let line = render::render_memory_sparkline(&eval.report, stage, 72);
            println!(
                "stage {stage} |{line}| peak {:>5.1} GB (+{:>4.1} GB static)",
                gb(eval.report.devices[stage].peak_dynamic_bytes),
                gb(plan.stages[stage].memory.static_bytes),
            );
        }
    }
    println!(
        "\nExpected shape: DAPPLE-Non's early stages ramp through warmup and sit at \
         a high plateau through the steady phase (the p − s in-flight micro-batches \
         of §2.1), draining only in the ending phase; DAPPLE-Full plateaus low; \
         AdaPipe's plateaus are equalized near the budget across stages."
    );
}
