//! Stage-cost providers: map `(stage, layer window)` to optimized
//! forward/backward times by running the recomputation knapsack.

use crate::cost::StageTimes;
use adapipe_memory::MemoryModel;
use adapipe_model::{LayerKind, LayerRange, LayerSeq};
use adapipe_obs::{keys, Recorder};
use adapipe_profiler::ProfileTable;
use adapipe_recompute::{
    optimize_exhaustive, optimize_traced, KnapsackConfig, OptimizedStage, StrategyError,
};
use adapipe_units::Bytes;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;

/// Source of the `f[s,i,j]` / `b[s,i,j]` arrays consumed by Algorithm 1.
///
/// Returning `None` marks the assignment infeasible (the stage cannot fit
/// even under full recomputation), which Algorithm 1 propagates into OOM
/// verdicts for whole configurations.
pub trait StageCostProvider {
    /// Optimized forward/backward times for assigning the layers of
    /// `range` to pipeline stage `stage`, or `None` if infeasible.
    fn stage_times(&self, stage: usize, range: LayerRange) -> Option<StageTimes>;
}

/// Isomorphism-class key (§5.3): within a homogeneous transformer, two
/// layer windows with equal length, equal first-layer kind and the same
/// "reaches the final layer" flag contain identical layer sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct IsoKey {
    stage: usize,
    first_kind: LayerKind,
    len: usize,
    ends_last: bool,
}

/// The production provider: budgets each `(stage, window)` with the
/// memory model and optimizes it with the recomputation knapsack, caching
/// by isomorphism class.
#[derive(Debug)]
pub struct KnapsackCostProvider<'a> {
    seq: &'a LayerSeq,
    table: &'a ProfileTable,
    mem: &'a MemoryModel,
    capacity: Bytes,
    iso_cache: bool,
    knapsack: KnapsackConfig,
    rec: Recorder,
    cache: RefCell<HashMap<IsoKey, Option<StageTimes>>>,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

impl<'a> KnapsackCostProvider<'a> {
    /// Creates a provider for stages drawn from `seq`, profiled in
    /// `table`, budgeted by `mem` against a per-device `capacity`.
    #[must_use]
    pub fn new(
        seq: &'a LayerSeq,
        table: &'a ProfileTable,
        mem: &'a MemoryModel,
        capacity: Bytes,
    ) -> Self {
        KnapsackCostProvider {
            seq,
            table,
            mem,
            capacity,
            iso_cache: true,
            knapsack: KnapsackConfig::default(),
            rec: Recorder::disabled(),
            cache: RefCell::new(HashMap::new()),
            hits: Cell::new(0),
            misses: Cell::new(0),
        }
    }

    /// Enables or disables the §5.3 isomorphism cache (disable only for
    /// the ablation benchmark; results are identical either way).
    #[must_use]
    pub fn with_isomorphism_cache(mut self, enabled: bool) -> Self {
        self.iso_cache = enabled;
        self
    }

    /// Overrides the knapsack tuning (cell cap, GCD rescaling).
    #[must_use]
    pub fn with_knapsack_config(mut self, knapsack: KnapsackConfig) -> Self {
        self.knapsack = knapsack;
        self
    }

    /// Attaches an observability recorder. The provider reports
    /// `partition.iso_cache.{hits,misses}`, `partition.leaf_evals` and
    /// per-leaf timing (`partition.leaf.us`), and forwards the recorder
    /// into the recomputation knapsack it runs per leaf.
    #[must_use]
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.rec = rec;
        self
    }

    /// `(cache hits, cache misses)` accumulated so far.
    #[must_use]
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }

    /// The device capacity the provider budgets against.
    #[must_use]
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Runs the full knapsack for one concrete stage assignment,
    /// returning the chosen strategy (used to materialize the final plan
    /// after Algorithm 1 picks the boundaries).
    ///
    /// # Errors
    ///
    /// Returns [`StrategyError::OutOfMemory`] when the stage cannot fit
    /// even under full recomputation.
    pub fn optimize_stage(
        &self,
        stage: usize,
        range: LayerRange,
    ) -> Result<OptimizedStage, StrategyError> {
        let budget = self
            .mem
            .activation_budget(self.table, self.seq, range, stage, self.capacity)
            .ok_or(StrategyError::OutOfMemory {
                required: Bytes::new(u64::MAX),
                budget: Bytes::ZERO,
            })?;
        let units = self.table.units_in(range);
        optimize_traced(&units, budget, self.knapsack, &self.rec)
    }

    fn compute(&self, stage: usize, range: LayerRange) -> Option<StageTimes> {
        self.rec.incr(keys::PARTITION_LEAF_EVALS);
        let started = self.rec.is_enabled().then(std::time::Instant::now);
        let opt = self.optimize_stage(stage, range).ok();
        if let Some(t0) = started {
            self.rec
                .observe(keys::PARTITION_LEAF_US, t0.elapsed().as_secs_f64() * 1e6);
        }
        let opt = opt?;
        Some(StageTimes {
            f: opt.cost.time_f,
            b: opt.cost.time_b,
        })
    }
}

impl StageCostProvider for KnapsackCostProvider<'_> {
    fn stage_times(&self, stage: usize, range: LayerRange) -> Option<StageTimes> {
        if !self.iso_cache {
            self.misses.set(self.misses.get() + 1);
            self.rec.incr(adapipe_obs::keys::ISO_CACHE_MISSES);
            return self.compute(stage, range);
        }
        let key = IsoKey {
            stage,
            first_kind: self.seq.layer(range.first).kind,
            len: range.len(),
            ends_last: range.last == self.seq.len() - 1,
        };
        if let Some(cached) = self.cache.borrow().get(&key) {
            self.hits.set(self.hits.get() + 1);
            self.rec.incr(adapipe_obs::keys::ISO_CACHE_HITS);
            return *cached;
        }
        self.misses.set(self.misses.get() + 1);
        self.rec.incr(adapipe_obs::keys::ISO_CACHE_MISSES);
        let result = self.compute(stage, range);
        self.cache.borrow_mut().insert(key, result);
        result
    }
}

/// The verification twin of [`KnapsackCostProvider`]: budgets each
/// `(stage, window)` through the *same* memory model, but optimizes the
/// stage with the brute-force subset enumeration of
/// [`adapipe_recompute::optimize_exhaustive`] instead of the knapsack DP.
///
/// Deliberately dumb: no isomorphism cache (only exact-key memoization,
/// which is trivially sound), no knapsack tuning, no recorder plumbing —
/// the fewer moving parts the oracle shares with the production path, the
/// more a disagreement means. Usable only on instances small enough for
/// `optimize_exhaustive`; windows whose stages exceed its enumeration
/// limit are reported infeasible, so keep oracle instances within
/// [`adapipe_recompute::exhaustive::MAX_ORACLE_FREE_UNITS`] free units
/// per stage.
#[derive(Debug)]
pub struct OracleCostProvider<'a> {
    seq: &'a LayerSeq,
    table: &'a ProfileTable,
    mem: &'a MemoryModel,
    capacity: Bytes,
    cache: RefCell<HashMap<(usize, LayerRange), Option<StageTimes>>>,
}

impl<'a> OracleCostProvider<'a> {
    /// Creates an oracle provider over the same inputs as
    /// [`KnapsackCostProvider::new`].
    #[must_use]
    pub fn new(
        seq: &'a LayerSeq,
        table: &'a ProfileTable,
        mem: &'a MemoryModel,
        capacity: Bytes,
    ) -> Self {
        OracleCostProvider {
            seq,
            table,
            mem,
            capacity,
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// The device capacity the oracle budgets against.
    #[must_use]
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Brute-force-optimizes one concrete stage assignment.
    ///
    /// # Errors
    ///
    /// [`StrategyError::OutOfMemory`] when the stage cannot fit even
    /// under full recomputation; [`StrategyError::TooLargeForOracle`]
    /// when the window has too many free units to enumerate.
    pub fn optimize_stage(
        &self,
        stage: usize,
        range: LayerRange,
    ) -> Result<OptimizedStage, StrategyError> {
        let budget = self
            .mem
            .activation_budget(self.table, self.seq, range, stage, self.capacity)
            .ok_or(StrategyError::OutOfMemory {
                required: Bytes::new(u64::MAX),
                budget: Bytes::ZERO,
            })?;
        let units = self.table.units_in(range);
        optimize_exhaustive(&units, budget)
    }
}

impl StageCostProvider for OracleCostProvider<'_> {
    fn stage_times(&self, stage: usize, range: LayerRange) -> Option<StageTimes> {
        if let Some(cached) = self.cache.borrow().get(&(stage, range)) {
            return *cached;
        }
        let result = self
            .optimize_stage(stage, range)
            .ok()
            .map(|opt| StageTimes {
                f: opt.cost.time_f,
                b: opt.cost.time_b,
            });
        self.cache.borrow_mut().insert((stage, range), result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::f1b_iteration_time;
    use adapipe_hw::presets as hw;
    use adapipe_memory::OptimizerSpec;
    use adapipe_model::{presets, ModelSpec, ParallelConfig, TrainConfig};
    use adapipe_profiler::Profiler;
    use adapipe_units::MicroSecs;

    struct Fixture {
        seq: LayerSeq,
        table: ProfileTable,
        mem: MemoryModel,
    }

    fn fixture(model: ModelSpec, parallel: ParallelConfig, seq_len: usize) -> Fixture {
        let train = TrainConfig::new(1, seq_len, 16 * parallel.data()).unwrap();
        let table = Profiler::new(hw::cluster_a()).profile(&model, &parallel, &train);
        let seq = LayerSeq::for_model(&model);
        let mem = MemoryModel::new(model, parallel, OptimizerSpec::adam_fp32());
        Fixture { seq, table, mem }
    }

    #[test]
    fn iso_cache_changes_nothing_but_hit_counts() {
        let fx = fixture(
            presets::gpt2_small(),
            ParallelConfig::new(2, 4, 1).unwrap(),
            1024,
        );
        let cached = KnapsackCostProvider::new(&fx.seq, &fx.table, &fx.mem, Bytes::from_gib(80));
        let raw = KnapsackCostProvider::new(&fx.seq, &fx.table, &fx.mem, Bytes::from_gib(80))
            .with_isomorphism_cache(false);
        for stage in 0..4 {
            for first in [0usize, 1, 5, 10] {
                for last in [12usize, 20, 25] {
                    let r = LayerRange::new(first, last);
                    assert_eq!(cached.stage_times(stage, r), raw.stage_times(stage, r));
                    // Querying twice hits the cache.
                    let (h0, _) = cached.cache_stats();
                    let _ = cached.stage_times(stage, r);
                    let (h1, _) = cached.cache_stats();
                    assert_eq!(h1, h0 + 1);
                }
            }
        }
        let (hits, _) = cached.cache_stats();
        assert!(hits > 0);
        let (raw_hits, _) = raw.cache_stats();
        assert_eq!(raw_hits, 0);
    }

    #[test]
    fn isomorphic_windows_share_cost() {
        let fx = fixture(
            presets::gpt2_small(),
            ParallelConfig::new(2, 4, 1).unwrap(),
            1024,
        );
        let p = KnapsackCostProvider::new(&fx.seq, &fx.table, &fx.mem, Bytes::from_gib(80));
        // Layers 3..=6 and 5..=8 both start with an attention layer and
        // span four layers.
        let a = p.stage_times(1, LayerRange::new(3, 6));
        let b = p.stage_times(1, LayerRange::new(5, 8));
        assert_eq!(a, b);
    }

    #[test]
    fn earlier_stage_has_slower_backward() {
        // Same window, earlier stage -> tighter budget -> more
        // recomputation -> larger b; f never changes.
        let fx = fixture(
            presets::gpt3_175b(),
            ParallelConfig::new(8, 8, 1).unwrap(),
            16384,
        );
        let p = KnapsackCostProvider::new(&fx.seq, &fx.table, &fx.mem, Bytes::from_gib(80));
        let range = fx.seq.even_partition(8)[4];
        let s0 = p.stage_times(0, range).unwrap();
        let s7 = p.stage_times(7, range).unwrap();
        assert!((s0.f - s7.f).abs() < MicroSecs::new(1e-6));
        assert!(s0.b >= s7.b);
    }

    #[test]
    fn infeasible_window_is_none() {
        let fx = fixture(
            presets::gpt3_175b(),
            ParallelConfig::new(8, 8, 1).unwrap(),
            16384,
        );
        let p = KnapsackCostProvider::new(&fx.seq, &fx.table, &fx.mem, Bytes::from_gib(4));
        let whole = LayerRange::new(0, fx.seq.len() - 1);
        assert!(p.stage_times(0, whole).is_none());
    }

    #[test]
    fn oracle_provider_agrees_with_knapsack_provider() {
        // tiny_gpt windows are small enough to enumerate exhaustively;
        // the GCD-rescaled knapsack is exact, so the two providers must
        // report identical stage times for every feasible window.
        let fx = fixture(
            presets::tiny_gpt(),
            ParallelConfig::new(1, 2, 1).unwrap(),
            128,
        );
        let l = fx.seq.len();
        let dp = KnapsackCostProvider::new(&fx.seq, &fx.table, &fx.mem, Bytes::from_gib(2));
        let oracle = OracleCostProvider::new(&fx.seq, &fx.table, &fx.mem, Bytes::from_gib(2));
        let mut feasible = 0usize;
        for stage in 0..2 {
            for first in 0..l {
                for last in first..l {
                    let r = LayerRange::new(first, last);
                    let free = fx
                        .table
                        .units_in(r)
                        .iter()
                        .filter(|u| !u.is_pinned() && u.mem_saved > Bytes::ZERO)
                        .count();
                    if free > adapipe_recompute::exhaustive::MAX_ORACLE_FREE_UNITS {
                        continue;
                    }
                    let (a, b) = (dp.stage_times(stage, r), oracle.stage_times(stage, r));
                    match (a, b) {
                        (Some(a), Some(b)) => {
                            feasible += 1;
                            assert!(
                                (a.f - b.f).abs() < MicroSecs::new(1e-9)
                                    && (a.b - b.b).abs() < MicroSecs::new(1e-6),
                                "stage {stage} {r:?}: dp {a:?} vs oracle {b:?}"
                            );
                        }
                        (None, None) => {}
                        _ => panic!(
                            "feasibility disagreement at stage {stage} {r:?}: {a:?} vs {b:?}"
                        ),
                    }
                }
            }
        }
        assert!(feasible > 0, "fixture produced no feasible windows");
    }

    #[test]
    fn even_partition_end_to_end_cost_is_finite() {
        let fx = fixture(
            presets::gpt2_small(),
            ParallelConfig::new(2, 4, 1).unwrap(),
            1024,
        );
        let p = KnapsackCostProvider::new(&fx.seq, &fx.table, &fx.mem, Bytes::from_gib(80));
        let parts = fx.seq.even_partition(4);
        let times: Vec<StageTimes> = parts
            .iter()
            .enumerate()
            .map(|(s, r)| p.stage_times(s, *r).unwrap())
            .collect();
        let bd = f1b_iteration_time(&times, 16);
        assert!(!bd.total().is_invalid_cost() && bd.total() > MicroSecs::ZERO);
    }
}
