//! Canonical metric-key names shared across the workspace.
//!
//! Every consumer of a cross-crate metric (the CLI's `--metrics-out`
//! report, the `adapipe-serve` `/metrics` endpoint, tests and CI jq
//! probes) must agree on the key strings. Defining them once here keeps
//! the producers (`adapipe-partition`, `adapipe-serve`) and the
//! consumers from drifting apart; a renamed key becomes a compile
//! error instead of a silently-empty dashboard.

use crate::Recorder;

/// §5.3 isomorphism-cache lookup hits (counter, `adapipe-partition`).
pub const ISO_CACHE_HITS: &str = "partition.iso_cache.hits";

/// §5.3 isomorphism-cache lookup misses (counter, `adapipe-partition`).
pub const ISO_CACHE_MISSES: &str = "partition.iso_cache.misses";

/// §5.3 isomorphism-cache hit rate in `[0, 1]` (gauge, derived from the
/// two counters by [`publish_iso_cache_hit_rate`]).
pub const ISO_CACHE_HIT_RATE: &str = "partition.iso_cache.hit_rate";

/// Total HTTP requests accepted by `adapipe-serve` (counter).
pub const SERVE_REQUESTS: &str = "serve.requests";

/// Plan-cache hits in `adapipe-serve` (counter).
pub const SERVE_CACHE_HITS: &str = "serve.cache.hits";

/// Plan-cache misses (cold plans) in `adapipe-serve` (counter).
pub const SERVE_CACHE_MISSES: &str = "serve.cache.misses";

/// Plan-cache hit rate in `[0, 1]` (gauge, derived like the iso-cache
/// rate by [`publish_serve_cache_hit_rate`]).
pub const SERVE_CACHE_HIT_RATE: &str = "serve.cache.hit_rate";

/// Plan-cache entries evicted by the LRU bound (counter).
pub const SERVE_CACHE_EVICTIONS: &str = "serve.cache.evictions";

/// Requests rejected with 503 because the worker queue was full
/// (counter).
pub const SERVE_REJECTED_BACKPRESSURE: &str = "serve.rejected.backpressure";

/// Requests rejected with 503 because their deadline expired while
/// queued (counter).
pub const SERVE_REJECTED_DEADLINE: &str = "serve.rejected.deadline";

/// Requests answered after their deadline had already passed (counter;
/// the response still ships, the miss is diagnosed by the watchdog).
pub const SERVE_DEADLINE_MISSED: &str = "serve.deadline.missed";

/// Workers the `adapipe-faults` watchdog currently classifies as
/// persistent deadline-missers (gauge).
pub const SERVE_DEADLINE_PERSISTENT: &str = "serve.deadline.persistent_workers";

/// Plans rejected by the `adapipe::verify` gate before leaving the
/// server (counter; nonzero means a planner bug).
pub const SERVE_VERIFY_REJECTED: &str = "serve.verify.rejected";

/// End-to-end request handling time in microseconds (histogram).
pub const SERVE_REQUEST_US: &str = "serve.request.us";

/// Cold-plan (cache-miss) solve time in microseconds (histogram).
pub const SERVE_PLAN_US: &str = "serve.plan.us";

/// Current worker-queue depth (gauge, sampled on every push/pop
/// transition).
pub const SERVE_QUEUE_DEPTH: &str = "serve.queue.depth";

/// High-water worker-queue depth (gauge, max-tracked).
pub const SERVE_QUEUE_DEPTH_MAX: &str = "serve.queue.depth.max";

/// Workers currently executing a request (gauge, sampled on every
/// request transition).
pub const SERVE_WORKERS_BUSY: &str = "serve.workers.busy";

/// Responses by status class (counters).
pub const SERVE_HTTP_2XX: &str = "serve.http.2xx";
/// Responses with client-error status (counter).
pub const SERVE_HTTP_4XX: &str = "serve.http.4xx";
/// Responses with server-error status (counter).
pub const SERVE_HTTP_5XX: &str = "serve.http.5xx";

// ---- planner / search-engine names ---------------------------------
// The taxonomy in docs/observability.md; producers reference these
// constants so the `stringly-metric` xtask lint can keep free-floating
// name literals out of lib crates.

/// Knapsack optimizations run (counter, `adapipe-recompute`).
pub const KNAPSACK_CALLS: &str = "recompute.knapsack.calls";
/// DP cells evaluated; 0 under the everything-fits shortcut (counter).
pub const KNAPSACK_CELLS: &str = "recompute.knapsack.cells";
/// Extra scale doublings past the GCD when the cell cap binds (counter).
pub const KNAPSACK_REBUCKETS: &str = "recompute.knapsack.rebuckets";
/// Largest §5.3 memory-axis scale factor used (gauge, max-tracked).
pub const KNAPSACK_GCD_SCALE: &str = "recompute.knapsack.gcd_scale";
/// Wall-clock µs per knapsack call (histogram).
pub const KNAPSACK_US: &str = "recompute.knapsack.us";

/// Cache misses that ran a real knapsack (counter, `adapipe-partition`).
pub const PARTITION_LEAF_EVALS: &str = "partition.leaf_evals";
/// Wall-clock µs per leaf-cost evaluation (histogram).
pub const PARTITION_LEAF_US: &str = "partition.leaf.us";
/// Algorithm 1 DP states filled (counter).
pub const ALG1_STATES: &str = "partition.alg1.states";
/// Split points scored across all states (counter).
pub const ALG1_CANDIDATES: &str = "partition.alg1.candidates";
/// Isomorphism-class representative leaves evaluated by the parallel
/// prefill pass (counter, `adapipe` planner).
pub const PREFILL_LEAVES: &str = "partition.prefill.leaves";

// ---- execution-engine names ----------------------------------------
// Produced by consumers of `adapipe-exec` (the planner, the serve
// daemon, the benches) from `ExecPool::stats()` and the global
// subproblem cache; see docs/parallel.md.

/// Workers configured in the deterministic exec pool (gauge).
pub const EXEC_POOL_WORKERS: &str = "exec.pool.workers";
/// Fork-join batches executed by the pool so far (gauge, cumulative).
pub const EXEC_POOL_BATCHES: &str = "exec.pool.batches";
/// Tasks executed across all pool batches so far (gauge, cumulative).
pub const EXEC_POOL_TASKS: &str = "exec.pool.tasks";
/// Tasks obtained by work-stealing from another worker's deque
/// (gauge, cumulative).
pub const EXEC_POOL_STEALS: &str = "exec.pool.steals";
/// High-water initial per-worker queue depth (gauge, max-tracked).
pub const EXEC_POOL_QUEUE_DEPTH_MAX: &str = "exec.pool.queue.depth.max";

/// Process-global subproblem-cache lookup hits (counter,
/// `adapipe-partition`).
pub const SUBCACHE_HITS: &str = "subcache.hits";
/// Process-global subproblem-cache lookup misses (counter).
pub const SUBCACHE_MISSES: &str = "subcache.misses";
/// Subproblem-cache hit rate in `[0, 1]` (gauge, derived from the two
/// counters by [`publish_subcache_hit_rate`]).
pub const SUBCACHE_HIT_RATE: &str = "subcache.hit_rate";
/// Subproblem-cache entries evicted by the LRU bound (gauge,
/// cumulative over the process lifetime).
pub const SUBCACHE_EVICTIONS: &str = "subcache.evictions";
/// Approximate bytes currently held by the subproblem cache (gauge).
pub const SUBCACHE_BYTES: &str = "subcache.bytes";
/// Entries currently held by the subproblem cache (gauge).
pub const SUBCACHE_ENTRIES: &str = "subcache.entries";

/// Simulator events processed (counter, `adapipe-sim`).
pub const SIM_EVENTS: &str = "sim.events";
/// Simulator tasks executed (counter).
pub const SIM_TASKS: &str = "sim.tasks";
/// Dispatchable-set high-water mark (gauge, max-tracked).
pub const SIM_READY_QUEUE_PEAK: &str = "sim.ready_queue.peak";

/// Per-device busy-time gauge name: `sim.device<i>.busy_us`.
#[must_use]
pub fn sim_device_busy_us(device: usize) -> String {
    format!("sim.device{device}.busy_us")
}

/// Per-device bubble-time gauge name: `sim.device<i>.bubble_us`.
#[must_use]
pub fn sim_device_bubble_us(device: usize) -> String {
    format!("sim.device{device}.bubble_us")
}

/// Degradation-aware replans that retried a tighter solve (counter,
/// `adapipe`).
pub const REPLAN_RETRIES: &str = "replan.retries";
/// Replans that fell back to a full recompute (counter).
pub const REPLAN_FALLBACK_FULL_RECOMPUTE: &str = "replan.fallback.full_recompute";
/// Iso-cache hits observed during a replan (histogram).
pub const REPLAN_ISO_HITS: &str = "replan.iso_cache.hits";
/// Iso-cache misses observed during a replan (histogram).
pub const REPLAN_ISO_MISSES: &str = "replan.iso_cache.misses";
/// Wall-clock µs per replan solve (histogram).
pub const REPLAN_SOLVE_US: &str = "replan.solve.us";

// ---- optimality-verification names ---------------------------------
// Produced by `adapipe::oracle` / `adapipe::certify` and surfaced by
// `adapipe verify --optimality` and `adapipe report`.

/// Instances evaluated by the DP-vs-oracle agreement sweeps and the
/// counterexample search (counter, `adapipe`).
pub const ORACLE_INSTANCES: &str = "oracle.instances";
/// Instances where the DP left the calibrated gap band or beat the
/// brute-force oracle (counter; nonzero means a planner bug).
pub const ORACLE_DISAGREEMENTS: &str = "oracle.disagreements";
/// Per-instance DP-over-oracle gap in percent (histogram).
pub const ORACLE_GAP_PCT: &str = "oracle.gap.pct";

/// Lower-bound certificates computed for plans (counter, `adapipe`).
pub const CERT_CHECKS: &str = "certificate.checks";
/// Certificates that failed validation: internally inconsistent, or a
/// bound above the plan cost it claims to bound (counter).
pub const CERT_FAILURES: &str = "certificate.failures";
/// Certified plan-cost-over-lower-bound gap in percent (histogram).
pub const CERT_GAP_PCT: &str = "certificate.gap.pct";

/// Bench regenerator wall-clock gauge (seconds).
pub const BENCH_WALL_S: &str = "bench.wall_s";
/// Serve-load bench per-hit latency (histogram, µs).
pub const BENCH_SERVE_LOAD_HIT_US: &str = "bench.serve_load.hit.us";

// ---- span names ----------------------------------------------------

/// Root planner span (args carry the method).
pub const SPAN_PLAN: &str = "plan";
/// Cost-profiling phase.
pub const SPAN_PLAN_PROFILE: &str = "plan.profile";
/// §5 partition-search phase (wraps [`SPAN_PARTITION_ALG1`]).
pub const SPAN_PLAN_PARTITION: &str = "plan.partition";
/// Parallel leaf-prefill phase preceding the serial DP sweep.
pub const SPAN_PLAN_PREFILL: &str = "plan.prefill";
/// Plan-materialization phase.
pub const SPAN_PLAN_MATERIALIZE: &str = "plan.materialize";
/// Plan evaluation (wraps [`SPAN_EVALUATE_SIMULATE`]).
pub const SPAN_EVALUATE: &str = "evaluate";
/// The simulation inside an evaluation.
pub const SPAN_EVALUATE_SIMULATE: &str = "evaluate.simulate";
/// One discrete-event simulator run.
pub const SPAN_SIM_RUN: &str = "sim.run";
/// One Algorithm 1 DP solve.
pub const SPAN_PARTITION_ALG1: &str = "partition.alg1";
/// A whole chaos-harness run.
pub const SPAN_CHAOS: &str = "chaos";
/// One injected-fault step inside a chaos run.
pub const SPAN_CHAOS_STEP: &str = "chaos.step";
/// A degradation-aware replan.
pub const SPAN_REPLAN: &str = "replan";
/// The partition re-solve inside a replan.
pub const SPAN_REPLAN_PARTITION: &str = "replan.partition";

/// Time a request spent queued before a worker picked it up
/// (serve-request trace span; starts at enqueue).
pub const SPAN_SERVE_QUEUE_WAIT: &str = "serve.queue_wait";
/// Request parsing/validation (serve-request trace span).
pub const SPAN_SERVE_PARSE: &str = "serve.parse";
/// The `adapipe::verify` gate on a cold plan (serve-request trace span).
pub const SPAN_SERVE_VERIFY: &str = "serve.verify";
/// Plan-cache insertion of a cold plan (serve-request trace span).
pub const SPAN_SERVE_CACHE_INSERT: &str = "serve.cache_insert";

// ---- flight-recorder event kinds -----------------------------------
// The `kind` vocabulary of `adapipe-flight/v1` dumps (see
// `crate::flight`); `reason` fields reuse the same constants.

/// A request was rejected with 503 because the queue was full.
pub const FLIGHT_BACKPRESSURE: &str = "flight.backpressure";
/// A request was rejected or answered late against its deadline.
pub const FLIGHT_DEADLINE: &str = "flight.deadline";
/// The watchdog emitted a `DegradationEvent`.
pub const FLIGHT_WATCHDOG: &str = "flight.watchdog";
/// A chaos-harness run ended in a non-accepted outcome.
pub const FLIGHT_CHAOS_FAILURE: &str = "flight.chaos.failure";
/// A plan failed the verify gate.
pub const FLIGHT_VERIFY_REJECTED: &str = "flight.verify.rejected";
/// An operator requested a dump via `POST /admin/dump`.
pub const FLIGHT_MANUAL: &str = "flight.manual";

/// Derives a hit rate from a hit and a miss counter and publishes it
/// under `rate_key`. Returns `(hits, misses, rate)`, or `None` when no
/// lookup was recorded (the gauge is left unset so reports distinguish
/// "no traffic" from "0% hits").
fn publish_hit_rate(
    rec: &Recorder,
    hits_key: &str,
    misses_key: &str,
    rate_key: &str,
) -> Option<(u64, u64, f64)> {
    let hits = rec.counter(hits_key);
    let misses = rec.counter(misses_key);
    let total = hits + misses;
    if total == 0 {
        return None;
    }
    let rate = hits as f64 / total as f64;
    rec.gauge(rate_key, rate);
    Some((hits, misses, rate))
}

/// Publishes the §5.3 iso-cache hit rate ([`ISO_CACHE_HIT_RATE`]) from
/// its counters so `/metrics` and `--metrics-out` report it uniformly.
/// Returns `(hits, misses, rate)` when any lookup was recorded.
pub fn publish_iso_cache_hit_rate(rec: &Recorder) -> Option<(u64, u64, f64)> {
    publish_hit_rate(rec, ISO_CACHE_HITS, ISO_CACHE_MISSES, ISO_CACHE_HIT_RATE)
}

/// Publishes the serve plan-cache hit rate ([`SERVE_CACHE_HIT_RATE`])
/// from its counters. Returns `(hits, misses, rate)` when any request
/// was served.
pub fn publish_serve_cache_hit_rate(rec: &Recorder) -> Option<(u64, u64, f64)> {
    publish_hit_rate(
        rec,
        SERVE_CACHE_HITS,
        SERVE_CACHE_MISSES,
        SERVE_CACHE_HIT_RATE,
    )
}

/// Publishes the global subproblem-cache hit rate
/// ([`SUBCACHE_HIT_RATE`]) from its counters. Returns
/// `(hits, misses, rate)` when any lookup was recorded.
pub fn publish_subcache_hit_rate(rec: &Recorder) -> Option<(u64, u64, f64)> {
    publish_hit_rate(rec, SUBCACHE_HITS, SUBCACHE_MISSES, SUBCACHE_HIT_RATE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_lookups_publishes_nothing() {
        let rec = Recorder::new();
        assert_eq!(publish_iso_cache_hit_rate(&rec), None);
        assert_eq!(rec.gauge_value(ISO_CACHE_HIT_RATE), None);
    }

    #[test]
    fn hit_rate_is_derived_and_published() {
        let rec = Recorder::new();
        rec.add(ISO_CACHE_HITS, 3);
        rec.add(ISO_CACHE_MISSES, 1);
        let (hits, misses, rate) = publish_iso_cache_hit_rate(&rec).unwrap();
        assert_eq!((hits, misses), (3, 1));
        assert!((rate - 0.75).abs() < 1e-12);
        let gauge = rec.gauge_value(ISO_CACHE_HIT_RATE).unwrap();
        assert!((gauge - 0.75).abs() < 1e-12);
    }

    #[test]
    fn serve_cache_rate_uses_its_own_keys() {
        let rec = Recorder::new();
        rec.add(SERVE_CACHE_HITS, 9);
        rec.add(SERVE_CACHE_MISSES, 1);
        let (_, _, rate) = publish_serve_cache_hit_rate(&rec).unwrap();
        assert!((rate - 0.9).abs() < 1e-12);
        assert!(rec.gauge_value(SERVE_CACHE_HIT_RATE).is_some());
        assert_eq!(rec.gauge_value(ISO_CACHE_HIT_RATE), None);
    }

    #[test]
    fn misses_only_still_publishes_a_zero_rate() {
        let rec = Recorder::new();
        rec.add(ISO_CACHE_MISSES, 4);
        let (hits, misses, rate) = publish_iso_cache_hit_rate(&rec).unwrap();
        assert_eq!((hits, misses), (0, 4));
        assert!(rate.abs() < 1e-12);
        let gauge = rec.gauge_value(ISO_CACHE_HIT_RATE).unwrap();
        assert!(gauge.abs() < 1e-12);
    }
}
