//! Fixture: unbounded queues in a queue crate must fire
//! `bounded-channel`.

pub fn spawn_workers() {
    let (tx, rx) = mpsc::channel();
    let backlog: VecDeque<Job> = VecDeque::new();
    let spare: VecDeque<Job> = VecDeque::default();
    drop((tx, rx, backlog, spare));
}

pub fn bounded_is_fine() {
    let (tx, rx) = mpsc::sync_channel(8);
    let backlog: VecDeque<Job> = VecDeque::with_capacity(8);
    drop((tx, rx, backlog));
}
