//! Dense row-major f32 tensors and the raw kernels the autograd tape
//! records. Everything is 2-D `[rows, cols]`; batch and sequence are
//! folded into rows.

use std::fmt;

/// A dense row-major matrix of f32.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a tensor from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Tensor { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    #[must_use]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element at `(r, c)`.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// Raw data slice.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self @ other` for `[m,k] x [k,n]`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    #[must_use]
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "matmul inner dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(m, n);
        for i in 0..m {
            for l in 0..k {
                let a = self.data[i * k + l];
                // lint: allow(float-eq): exact-zero sparsity skip — only a
                // true zero multiplicand contributes nothing.
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[l * n..(l + 1) * n];
                let orow = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ @ other` for `[k,m]ᵀ x [k,n]` (used by weight gradients).
    ///
    /// # Panics
    ///
    /// Panics on row-count mismatch.
    #[must_use]
    pub fn t_matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "t_matmul row mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(m, n);
        for l in 0..k {
            let arow = &self.data[l * m..(l + 1) * m];
            let brow = &other.data[l * n..(l + 1) * n];
            for (i, &a) in arow.iter().enumerate() {
                // lint: allow(float-eq): exact-zero sparsity skip, as above.
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ otherᵀ` for `[m,k] x [n,k]ᵀ` (used by data gradients).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    #[must_use]
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "matmul_t column mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Tensor::zeros(m, n);
        for i in 0..m {
            let arow = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for (&a, &b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                out.data[i * n + j] = acc;
            }
        }
        out
    }

    /// Elementwise sum `self + other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Adds `other` in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scales every element in place.
    pub fn scale_assign(&mut self, k: f32) {
        for a in &mut self.data {
            *a *= k;
        }
    }

    /// Broadcast-adds a `[cols]` row vector to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `[1, cols]`.
    #[must_use]
    pub fn add_bias(&self, bias: &Tensor) -> Tensor {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for c in 0..out.cols {
                out.data[r * out.cols + c] += bias.data[c];
            }
        }
        out
    }

    /// Sums rows into a `[1, cols]` vector (bias gradient).
    #[must_use]
    pub fn col_sum(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)?;
        if self.len() <= 8 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known_values() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn transposed_matmuls_agree_with_explicit_transpose() {
        let a = Tensor::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 4, (0..12).map(|x| x as f32).collect());
        // aᵀ @ b via t_matmul.
        let c = a.t_matmul(&b);
        assert_eq!((c.rows(), c.cols()), (2, 4));
        // Check one element: c[1][2] = sum_l a[l][1] * b[l][2].
        let expect: f32 = (0..3).map(|l| a.at(l, 1) * b.at(l, 2)).sum();
        assert!((c.at(1, 2) - expect).abs() < 1e-6);

        // a @ bᵀ via matmul_t where shapes align: [3,2] x [5,2]ᵀ.
        let d = Tensor::from_vec(5, 2, (0..10).map(|x| x as f32).collect());
        let e = a.matmul_t(&d);
        assert_eq!((e.rows(), e.cols()), (3, 5));
        let expect: f32 = (0..2).map(|k| a.at(2, k) * d.at(4, k)).sum();
        assert!((e.at(2, 4) - expect).abs() < 1e-6);
    }

    #[test]
    fn bias_and_col_sum_are_adjoint() {
        let x = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(1, 3, vec![10., 20., 30.]);
        let y = x.add_bias(&b);
        assert_eq!(y.at(1, 2), 36.0);
        let g = y.col_sum();
        assert_eq!(g.data(), &[25., 47., 69.]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_shape_checked() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// `t_matmul` and `matmul_t` agree with explicit transposition
        /// through `matmul` on random shapes and data.
        #[test]
        fn transposed_matmuls_are_consistent(
            m in 1usize..5, k in 1usize..5, n in 1usize..5,
            seed in 0u32..1000,
        ) {
            let fill = |rows: usize, cols: usize, salt: u32| {
                let data = (0..rows * cols)
                    .map(|i| {
                        let x = (i as u32).wrapping_mul(2654435761).wrapping_add(seed + salt);
                        (x % 17) as f32 / 8.0 - 1.0
                    })
                    .collect();
                Tensor::from_vec(rows, cols, data)
            };
            let transpose = |t: &Tensor| {
                let mut out = Tensor::zeros(t.cols(), t.rows());
                for r in 0..t.rows() {
                    for c in 0..t.cols() {
                        *out.at_mut(c, r) = t.at(r, c);
                    }
                }
                out
            };
            let a = fill(k, m, 1); // for t_matmul: aᵀ @ b
            let b = fill(k, n, 2);
            let via_t = a.t_matmul(&b);
            let explicit = transpose(&a).matmul(&b);
            proptest::prop_assert_eq!(via_t.data(), explicit.data());

            let c = fill(m, k, 3); // for matmul_t: c @ dᵀ
            let d = fill(n, k, 4);
            let via_mt = c.matmul_t(&d);
            let explicit = c.matmul(&transpose(&d));
            for (x, y) in via_mt.data().iter().zip(explicit.data()) {
                proptest::prop_assert!((x - y).abs() < 1e-4);
            }
        }

        /// Matmul distributes over addition.
        #[test]
        fn matmul_distributes_over_add(
            m in 1usize..4, k in 1usize..4, n in 1usize..4,
            seed in 0u32..1000,
        ) {
            let fill = |rows: usize, cols: usize, salt: u32| {
                let data = (0..rows * cols)
                    .map(|i| {
                        let x = (i as u32).wrapping_mul(374761393).wrapping_add(seed + salt);
                        (x % 13) as f32 / 6.0 - 1.0
                    })
                    .collect();
                Tensor::from_vec(rows, cols, data)
            };
            let a = fill(m, k, 1);
            let b1 = fill(k, n, 2);
            let b2 = fill(k, n, 3);
            let lhs = a.matmul(&b1.add(&b2));
            let rhs = a.matmul(&b1).add(&a.matmul(&b2));
            for (x, y) in lhs.data().iter().zip(rhs.data()) {
                proptest::prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn add_and_scale() {
        let mut a = Tensor::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Tensor::from_vec(1, 3, vec![4., 5., 6.]);
        a.add_assign(&b);
        a.scale_assign(2.0);
        assert_eq!(a.data(), &[10., 14., 18.]);
        assert_eq!(a.add(&b).data(), &[14., 19., 24.]);
    }
}
