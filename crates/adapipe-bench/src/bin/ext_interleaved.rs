//! Extension: interleaved 1F1B vs plain 1F1B vs AdaPipe.
//!
//! §2.1 of the paper notes Megatron's interleaved schedule "reduces the
//! bubble ratio while bringing more communication overhead". This
//! driver quantifies both effects on our simulator and shows where
//! AdaPipe's recomputation/partitioning co-design still wins: the
//! interleaved schedule shrinks bubbles but *raises* per-stage memory
//! residency, forcing more recomputation under the same budget.

use adapipe::{Method, Planner};
use adapipe_bench::{print_table, time_cell};
use adapipe_hw::presets as hw;
use adapipe_model::{presets, ParallelConfig, TrainConfig};

fn main() {
    let planner = Planner::new(presets::gpt3_175b(), hw::cluster_a());
    let parallel = ParallelConfig::new(8, 8, 1).expect("valid");
    let methods = [
        Method::DappleFull,
        Method::InterleavedFull,
        Method::DappleNone,
        Method::InterleavedNone,
        Method::AdaPipe,
    ];

    let mut rows = Vec::new();
    // Few micro-batches (bubble-bound) vs many (steady-bound).
    for (seq, gbs, regime) in [
        (4096usize, 16usize, "n=16 (bubble-bound)"),
        (4096, 128, "n=128 (steady-bound)"),
    ] {
        let train = TrainConfig::new(1, seq, gbs).expect("valid");
        for method in methods {
            let result = planner
                .plan(method, parallel, train)
                .map(|p| planner.evaluate(&p));
            let (bubble, peak) = match &result {
                Ok(e) => (
                    format!("{:.1}%", 100.0 * e.report.bubble_ratio()),
                    format!("{:.1}", e.max_peak_gb()),
                ),
                Err(_) => ("-".into(), "-".into()),
            };
            rows.push(vec![
                regime.to_string(),
                method.to_string(),
                time_cell(&result),
                bubble,
                peak,
            ]);
        }
    }
    print_table(
        "Extension: interleaved 1F1B vs 1F1B vs AdaPipe — GPT-3, (8,8,1)",
        &["regime", "method", "iter time (s)", "bubble", "peak GB"],
        &rows,
    );
    println!(
        "\nExpected shape: with few micro-batches the interleaved schedule cuts the \
         bubble ratio (≈1/v of plain 1F1B) at higher peak memory; with many \
         micro-batches the bubble advantage fades while the extra communication \
         and memory remain — and AdaPipe, which attacks recomputation instead of \
         bubbles, wins the steady-bound regime."
    );
}
