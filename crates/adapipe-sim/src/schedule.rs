//! Schedule generators: GPipe, 1F1B (DAPPLE), Chimera and ChimeraD.
//!
//! Each generator turns per-stage execution profiles ([`StageExec`]) into
//! a [`TaskGraph`] for the event engine. 1F1B and GPipe use exact
//! fixed-order queues (their engines are deterministic scripts) with the
//! script position encoded in each task's priority; the bidirectional
//! Chimera schedules use greedy priorities, letting the interleaving
//! emerge from dependencies — backward passes and earlier scheduling
//! units first, which is the rule Chimera's hand schedules encode.

// Index loops below mirror the (micro-batch, stage) grids of the paper's
// schedule diagrams.
#![allow(clippy::needless_range_loop)]

use crate::task::{Discipline, OpKind, StageExec, TaskGraph, TaskMeta};
use adapipe_units::{convert, Bytes, MicroSecs};

/// Script position of op (`kind`, micro-batch `m`) in stage `s`'s 1F1B
/// queue: `p − s − 1` warmup forwards, alternating steady phase, backward
/// drain.
fn f1b_script_pos(kind: OpKind, m: usize, s: usize, p: usize, n: usize) -> u64 {
    let w = (p - s - 1).min(n); // warmup forwards
    let pos = match kind {
        OpKind::Forward => {
            if m < w {
                m
            } else {
                w + 2 * (m - w)
            }
        }
        OpKind::Backward => {
            if m < n - w {
                w + 2 * m + 1
            } else {
                w + 2 * (n - w) + (m - (n - w))
            }
        }
    };
    convert::usize_u64(pos)
}

/// Builds the 1F1B (DAPPLE) schedule: stage `s` runs `p − s − 1` warmup
/// forwards, alternates forward/backward in the steady phase, and drains
/// backwards in the ending phase. `p2p` is the stage-boundary transfer
/// delay in seconds.
///
/// # Panics
///
/// Panics if `stages` is empty or `n` is less than the stage count.
#[must_use]
pub fn one_f_one_b(stages: &[StageExec], n: usize, p2p: MicroSecs) -> TaskGraph {
    let p = stages.len();
    assert!(p > 0, "pipeline must have at least one stage");
    assert!(n >= p, "1F1B needs n >= p (n={n}, p={p})");

    let mut g = TaskGraph::new("1f1b", p, Discipline::FixedOrder);
    let mut fwd_id = vec![vec![usize::MAX; n]; p];
    let mut bwd_id = vec![vec![usize::MAX; n]; p];

    // Forwards stage-major ascending (dep F(m, s-1) already pushed).
    for s in 0..p {
        for m in 0..n {
            let deps = if s == 0 {
                vec![]
            } else {
                vec![(fwd_id[s - 1][m], p2p)]
            };
            fwd_id[s][m] = g.push(
                s,
                stages[s].time_f,
                deps,
                stages[s].saved_bytes,
                Bytes::ZERO,
                f1b_script_pos(OpKind::Forward, m, s, p, n),
                TaskMeta {
                    kind: OpKind::Forward,
                    micro_batch: m,
                    stage: s,
                    replica: 0,
                },
            );
        }
    }
    // Backwards stage-major descending (dep B(m, s+1) already pushed).
    for s in (0..p).rev() {
        for m in 0..n {
            let deps = if s == p - 1 {
                vec![(fwd_id[s][m], MicroSecs::ZERO)]
            } else {
                vec![(bwd_id[s + 1][m], p2p)]
            };
            bwd_id[s][m] = g.push(
                s,
                stages[s].time_b,
                deps,
                stages[s].buffer_bytes,
                stages[s].buffer_bytes.saturating_add(stages[s].saved_bytes),
                f1b_script_pos(OpKind::Backward, m, s, p, n),
                TaskMeta {
                    kind: OpKind::Backward,
                    micro_batch: m,
                    stage: s,
                    replica: 0,
                },
            );
        }
    }
    g
}

/// Builds the GPipe schedule: all forwards, then all backwards (reverse
/// micro-batch order, as in Figure 2 (a)). Memory-hungry: every stage
/// holds all `n` micro-batches' activations at the forward/backward
/// boundary.
///
/// # Panics
///
/// Panics if `stages` is empty or `n == 0`.
#[must_use]
pub fn gpipe(stages: &[StageExec], n: usize, p2p: MicroSecs) -> TaskGraph {
    let p = stages.len();
    assert!(p > 0, "pipeline must have at least one stage");
    assert!(n > 0, "need at least one micro-batch");

    let mut g = TaskGraph::new("gpipe", p, Discipline::FixedOrder);
    let mut fwd_id = vec![vec![usize::MAX; n]; p];
    for s in 0..p {
        for m in 0..n {
            let deps = if s == 0 {
                vec![]
            } else {
                vec![(fwd_id[s - 1][m], p2p)]
            };
            fwd_id[s][m] = g.push(
                s,
                stages[s].time_f,
                deps,
                stages[s].saved_bytes,
                Bytes::ZERO,
                convert::usize_u64(m),
                TaskMeta {
                    kind: OpKind::Forward,
                    micro_batch: m,
                    stage: s,
                    replica: 0,
                },
            );
        }
    }
    let mut bwd_id = vec![vec![usize::MAX; n]; p];
    for s in (0..p).rev() {
        for m in (0..n).rev() {
            let deps = if s == p - 1 {
                vec![(fwd_id[s][m], MicroSecs::ZERO)]
            } else {
                vec![(bwd_id[s + 1][m], p2p)]
            };
            bwd_id[s][m] = g.push(
                s,
                stages[s].time_b,
                deps,
                stages[s].buffer_bytes,
                stages[s].buffer_bytes.saturating_add(stages[s].saved_bytes),
                convert::usize_u64(n + (n - 1 - m)),
                TaskMeta {
                    kind: OpKind::Backward,
                    micro_batch: m,
                    stage: s,
                    replica: 0,
                },
            );
        }
    }
    g
}

/// Builds a Chimera bidirectional schedule: two model replicas per
/// device — the *down* pipeline maps stage `s` to device `s`, the *up*
/// pipeline to device `p − 1 − s` — with micro-batches split between
/// directions in scheduling units of `p` (§2.1 and §7.2 of the paper).
///
/// With `forward_doubling`, forwards process two micro-batches at once
/// (duration and activations doubled) to equalize forward and backward
/// op lengths — the ChimeraD baseline.
///
/// Note: parameter duplication across replicas is *static* memory and is
/// accounted by the caller; this graph tracks dynamic activations only.
///
/// # Panics
///
/// Panics if `p` is odd or zero, or if `n` is not a positive multiple of
/// `p`.
#[must_use]
pub fn chimera(
    stages: &[StageExec],
    n: usize,
    p2p: MicroSecs,
    forward_doubling: bool,
) -> TaskGraph {
    let p = stages.len();
    assert!(
        p > 0 && p.is_multiple_of(2),
        "chimera needs an even stage count, got {p}"
    );
    assert!(
        n > 0 && n.is_multiple_of(p),
        "chimera needs n to be a positive multiple of p (n={n}, p={p})"
    );

    let name = if forward_doubling {
        "chimera-d"
    } else {
        "chimera"
    };
    let mut g = TaskGraph::new(name, p, Discipline::GreedyPriority);

    // Micro-batch -> direction. Direction 0 = down, 1 = up; each
    // scheduling unit of p micro-batches is split half/half.
    let half = p / 2;
    let direction = |m: usize| usize::from(m % p >= half);
    let device_of = |dir: usize, s: usize| if dir == 0 { s } else { p - 1 - s };

    // Forward groups: singles, or same-direction pairs when doubling.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    {
        let mut per_dir: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
        for m in 0..n {
            per_dir[direction(m)].push(m);
        }
        for list in per_dir {
            if forward_doubling {
                for pair in list.chunks(2) {
                    groups.push(pair.to_vec());
                }
            } else {
                for m in list {
                    groups.push(vec![m]);
                }
            }
        }
    }
    let mut group_of = vec![usize::MAX; n];
    for (gi, ms) in groups.iter().enumerate() {
        for &m in ms {
            group_of[m] = gi;
        }
    }

    let unit = |m: usize| m / p;
    // Priority: earlier unit first; backward before forward within a unit
    // (Chimera's memory-driven rule); then micro-batch, then stage.
    let fwd_prio = |m: usize, s: usize| convert::usize_u64((unit(m) * 2 + 1) * n * p + m * p + s);
    let bwd_prio = |m: usize, s: usize| convert::usize_u64((unit(m) * 2) * n * p + m * p + s);

    let mut fwd_id = vec![vec![usize::MAX; p]; groups.len()];
    for (gi, ms) in groups.iter().enumerate() {
        let Some(&m0) = ms.first() else { continue };
        let dir = direction(m0);
        let scale = convert::count_f64(ms.len());
        for s in 0..p {
            let dev = device_of(dir, s);
            let deps = if s == 0 {
                vec![]
            } else {
                vec![(fwd_id[gi][s - 1], p2p)]
            };
            fwd_id[gi][s] = g.push(
                dev,
                stages[s].time_f * scale,
                deps,
                stages[s].saved_bytes * convert::usize_u64(ms.len()),
                Bytes::ZERO,
                fwd_prio(m0, s),
                TaskMeta {
                    kind: OpKind::Forward,
                    micro_batch: m0,
                    stage: s,
                    replica: dir,
                },
            );
        }
    }
    let mut bwd_id = vec![vec![usize::MAX; p]; n];
    for m in 0..n {
        let dir = direction(m);
        let gi = group_of[m];
        for s in (0..p).rev() {
            let dev = device_of(dir, s);
            let deps = if s == p - 1 {
                vec![(fwd_id[gi][s], MicroSecs::ZERO)]
            } else {
                vec![(bwd_id[m][s + 1], p2p)]
            };
            bwd_id[m][s] = g.push(
                dev,
                stages[s].time_b,
                deps,
                stages[s].buffer_bytes,
                stages[s].buffer_bytes.saturating_add(stages[s].saved_bytes),
                bwd_prio(m, s),
                TaskMeta {
                    kind: OpKind::Backward,
                    micro_batch: m,
                    stage: s,
                    replica: dir,
                },
            );
        }
    }

    // Chimera concatenates scheduling units rigidly: on each device, the
    // backwards of unit u+1 wait for every backward of unit u, and
    // likewise for forwards (forwards of the next unit may still fill the
    // previous unit's ending bubbles, but units never reorder). This is
    // what creates the inter-unit bubbles of §7.2 when B > F.
    let units = n / p;
    if units > 1 {
        // Per (device, unit): forward / backward task ids.
        let mut f_by = vec![vec![Vec::new(); units]; p];
        let mut b_by = vec![vec![Vec::new(); units]; p];
        for (gi, ms) in groups.iter().enumerate() {
            let Some(&m0) = ms.first() else { continue };
            let dir = direction(m0);
            for s in 0..p {
                f_by[device_of(dir, s)][unit(m0)].push(fwd_id[gi][s]);
            }
        }
        for m in 0..n {
            let dir = direction(m);
            for s in 0..p {
                b_by[device_of(dir, s)][unit(m)].push(bwd_id[m][s]);
            }
        }
        for dev in 0..p {
            for u in 1..units {
                for &task in &f_by[dev][u] {
                    for &dep in &f_by[dev][u - 1] {
                        g.add_dep(task, dep, MicroSecs::ZERO);
                    }
                }
                for &task in &b_by[dev][u] {
                    for &dep in &b_by[dev][u - 1] {
                        g.add_dep(task, dep, MicroSecs::ZERO);
                    }
                }
            }
        }
    }
    g
}

/// Builds Megatron-LM's *interleaved* 1F1B schedule (§2.1 of the paper):
/// the layer sequence is split into `devices · v` chunks (virtual
/// stages), and device `d` hosts virtual stages `d, p + d, 2p + d, …`.
/// Finer slicing shrinks the bubble to roughly `1/v` of plain 1F1B at
/// the cost of `v×` the stage-boundary communication — the trade-off the
/// paper cites when comparing against it.
///
/// `chunks[vs]` is the execution profile of virtual stage `vs`; its
/// length must be a positive multiple of `devices`. Backward passes get
/// priority over forwards on each device (the memory-driven rule), so
/// the interleaving emerges from the dependence structure.
///
/// # Panics
///
/// Panics if `devices` is zero, `chunks` is not a positive multiple of
/// `devices`, or `n < devices`.
#[must_use]
pub fn interleaved(chunks: &[StageExec], devices: usize, n: usize, p2p: MicroSecs) -> TaskGraph {
    let p = devices;
    assert!(p > 0, "need at least one device");
    let vp = chunks.len();
    assert!(
        vp >= p && vp.is_multiple_of(p),
        "chunk count {vp} must be a positive multiple of devices {p}"
    );
    assert!(n >= p, "interleaved 1F1B needs n >= devices (n={n}, p={p})");

    let mut g = TaskGraph::new("interleaved-1f1b", p, Discipline::GreedyPriority);
    let device_of = |vs: usize| vs % p;

    // Backwards outrank forwards; within a kind, earlier micro-batches
    // and earlier virtual stages first (for B: later virtual stages
    // first, since gradients flow backwards).
    let fwd_prio = |m: usize, vs: usize| convert::usize_u64(1_000_000_000 + m * vp + vs);
    let bwd_prio = |m: usize, vs: usize| convert::usize_u64(m * vp + (vp - 1 - vs));

    let mut fwd_id = vec![vec![usize::MAX; vp]; n];
    for vs in 0..vp {
        for m in 0..n {
            let deps = if vs == 0 {
                vec![]
            } else {
                vec![(fwd_id[m][vs - 1], p2p)]
            };
            fwd_id[m][vs] = g.push(
                device_of(vs),
                chunks[vs].time_f,
                deps,
                chunks[vs].saved_bytes,
                Bytes::ZERO,
                fwd_prio(m, vs),
                TaskMeta {
                    kind: OpKind::Forward,
                    micro_batch: m,
                    stage: vs,
                    replica: 0,
                },
            );
        }
    }
    let mut bwd_id = vec![vec![usize::MAX; vp]; n];
    for vs in (0..vp).rev() {
        for m in 0..n {
            let deps = if vs == vp - 1 {
                vec![(fwd_id[m][vs], MicroSecs::ZERO)]
            } else {
                vec![(bwd_id[m][vs + 1], p2p)]
            };
            bwd_id[m][vs] = g.push(
                device_of(vs),
                chunks[vs].time_b,
                deps,
                chunks[vs].buffer_bytes,
                chunks[vs]
                    .buffer_bytes
                    .saturating_add(chunks[vs].saved_bytes),
                bwd_prio(m, vs),
                TaskMeta {
                    kind: OpKind::Backward,
                    micro_batch: m,
                    stage: vs,
                    replica: 0,
                },
            );
        }
    }
    // Residency throttle: treat the virtual pipeline as a vp-deep 1F1B —
    // virtual stage vs holds at most vp − vs in-flight micro-batches, so
    // F(m, vs) waits for B(m − (vp − vs), vs). Without this, greedy
    // devices would run all forwards eagerly, GPipe-style.
    for vs in 0..vp {
        let cap = vp - vs;
        for m in cap..n {
            g.add_dep(fwd_id[m][vs], bwd_id[m - cap][vs], MicroSecs::ZERO);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;

    fn balanced(p: usize, f: f64, b: f64, saved: u64, buffer: u64) -> Vec<StageExec> {
        vec![
            StageExec {
                time_f: MicroSecs::new(f),
                time_b: MicroSecs::new(b),
                saved_bytes: Bytes::new(saved),
                buffer_bytes: Bytes::new(buffer)
            };
            p
        ]
    }

    /// Zero transfer delay, for the closed-form comparisons.
    const FREE: MicroSecs = MicroSecs::ZERO;

    #[test]
    fn f1b_matches_closed_form_balanced() {
        for (p, n) in [(2usize, 4usize), (4, 8), (8, 64), (4, 4)] {
            let g = one_f_one_b(&balanced(p, 1.0, 2.0, 0, 0), n, FREE);
            let r = simulate(&g);
            let expect = (n + p - 1) as f64 * 3.0;
            assert!(
                (r.makespan.as_micros() - expect).abs() < 1e-9,
                "p={p} n={n}: {}",
                r.makespan
            );
        }
    }

    #[test]
    fn f1b_memory_peak_is_p_minus_s_activations() {
        let (p, n, saved, buffer) = (4usize, 12usize, 1000u64, 77u64);
        let g = one_f_one_b(&balanced(p, 1.0, 2.0, saved, buffer), n, FREE);
        let r = simulate(&g);
        for (s, dev) in r.devices.iter().enumerate() {
            let expect = Bytes::new((p - s) as u64 * saved + buffer);
            assert_eq!(dev.peak_dynamic_bytes, expect, "stage {s}");
        }
    }

    #[test]
    fn f1b_script_positions_are_a_permutation() {
        let (p, n) = (5usize, 9usize);
        for s in 0..p {
            let mut seen = vec![false; 2 * n];
            for m in 0..n {
                for kind in [OpKind::Forward, OpKind::Backward] {
                    let pos = f1b_script_pos(kind, m, s, p, n) as usize;
                    assert!(!seen[pos], "stage {s}: position {pos} duplicated");
                    seen[pos] = true;
                }
            }
            assert!(seen.iter().all(|&b| b), "stage {s}: gaps in script");
        }
    }

    #[test]
    fn gpipe_memory_peak_is_n_activations() {
        let (p, n, saved) = (3usize, 6usize, 500u64);
        let g = gpipe(&balanced(p, 1.0, 2.0, saved, 33), n, FREE);
        let r = simulate(&g);
        for dev in &r.devices {
            assert_eq!(dev.peak_dynamic_bytes, Bytes::new(n as u64 * saved + 33));
        }
    }

    #[test]
    fn gpipe_and_f1b_have_equal_bubbles_but_different_memory() {
        // Without interleaving, GPipe and 1F1B share the same bubble
        // count (2(p−1) slots); 1F1B's win is memory.
        let (p, n) = (4usize, 16usize);
        let stages = balanced(p, 1.0, 2.0, 100, 0);
        let rg = simulate(&gpipe(&stages, n, FREE));
        let rf = simulate(&one_f_one_b(&stages, n, FREE));
        assert!((rg.makespan - rf.makespan).abs() < MicroSecs::new(1e-9));
        assert!(rf.max_peak_dynamic_bytes() < rg.max_peak_dynamic_bytes());
    }

    #[test]
    fn f1b_p2p_delay_stretches_makespan() {
        let (p, n) = (4usize, 8usize);
        let no = simulate(&one_f_one_b(&balanced(p, 1.0, 2.0, 0, 0), n, FREE));
        let with = simulate(&one_f_one_b(
            &balanced(p, 1.0, 2.0, 0, 0),
            n,
            MicroSecs::new(0.25),
        ));
        assert!(with.makespan > no.makespan);
    }

    #[test]
    fn unbalanced_bottleneck_dominates_f1b() {
        let mut stages = balanced(4, 1.0, 2.0, 0, 0);
        stages[1] = StageExec {
            time_f: MicroSecs::new(2.0),
            time_b: MicroSecs::new(4.0),
            saved_bytes: Bytes::ZERO,
            buffer_bytes: Bytes::ZERO,
        };
        let n = 32;
        let r = simulate(&one_f_one_b(&stages, n, FREE));
        // Steady phase must run at the bottleneck micro-step (6.0).
        assert!(r.makespan > MicroSecs::new((n - 4) as f64 * 6.0));
    }

    #[test]
    fn chimera_runs_all_tasks_and_balances_directions() {
        let (p, n) = (4usize, 8usize);
        let g = chimera(&balanced(p, 1.0, 2.0, 10, 1), n, FREE, false);
        let r = simulate(&g);
        assert_eq!(r.timeline.len(), 2 * n * p);
        let down = r.timeline.iter().filter(|e| e.meta.replica == 0).count();
        assert_eq!(down, n * p);
    }

    #[test]
    fn chimera_concatenation_hurts_when_n_exceeds_p() {
        // B = 2F: concatenated Chimera units leave bubbles that 1F1B
        // avoids (§7.2 of the paper).
        let (p, n) = (4usize, 32usize);
        let stages = balanced(p, 1.0, 2.0, 0, 0);
        let rc = simulate(&chimera(&stages, n, FREE, false));
        let rf = simulate(&one_f_one_b(&stages, n, FREE));
        assert!(
            rc.makespan > rf.makespan,
            "chimera {} vs 1f1b {}",
            rc.makespan,
            rf.makespan
        );
    }

    #[test]
    fn chimera_d_never_shrinks_memory_and_doubles_granularity() {
        let (p, n) = (4usize, 16usize);
        let stages = balanced(p, 1.0, 2.0, 1000, 0);
        let rc = simulate(&chimera(&stages, n, FREE, false));
        let rd = simulate(&chimera(&stages, n, FREE, true));
        assert!(rd.max_peak_dynamic_bytes() >= rc.max_peak_dynamic_bytes());
        // Every doubled forward allocates two micro-batches at once.
        let doubled = rd
            .timeline
            .iter()
            .filter(|e| e.meta.kind == OpKind::Forward)
            .count();
        assert_eq!(doubled, n / 2 * p);
    }

    #[test]
    fn chimera_middle_devices_hold_most_activations() {
        // Figure 8: Chimera-Non peaks in the middle stages because both
        // directions' activations overlap there.
        let (p, n) = (8usize, 16usize);
        let stages = balanced(p, 1.0, 2.0, 1000, 0);
        let r = simulate(&chimera(&stages, n, FREE, false));
        let peaks: Vec<Bytes> = r.devices.iter().map(|d| d.peak_dynamic_bytes).collect();
        let mid = peaks[p / 2 - 1].max(peaks[p / 2]);
        assert!(mid >= peaks[0], "peaks {peaks:?}");
        assert!(mid >= peaks[p - 1], "peaks {peaks:?}");
    }

    #[test]
    fn interleaving_reduces_bubbles_when_n_is_small() {
        // p devices, v = 2: same total work per device as plain 1F1B
        // over p stages, but finer slicing shrinks warmup/ending bubbles.
        let (p, n) = (4usize, 4usize);
        let plain = balanced(p, 1.0, 2.0, 0, 0);
        // Each of the 2p chunks is half a plain stage.
        let chunks = balanced(2 * p, 0.5, 1.0, 0, 0);
        let r_plain = simulate(&one_f_one_b(&plain, n, FREE));
        let r_inter = simulate(&interleaved(&chunks, p, n, FREE));
        assert!(
            r_inter.makespan < r_plain.makespan,
            "interleaved {} vs plain {}",
            r_inter.makespan,
            r_plain.makespan
        );
    }

    #[test]
    fn interleaving_pays_more_communication() {
        // With expensive stage boundaries the v=2 advantage shrinks or
        // inverts — the paper's "more communication overhead" caveat.
        let (p, n) = (4usize, 4usize);
        let plain = balanced(p, 1.0, 2.0, 0, 0);
        let chunks = balanced(2 * p, 0.5, 1.0, 0, 0);
        let p2p = MicroSecs::new(0.4);
        let gain_free = simulate(&one_f_one_b(&plain, n, FREE)).makespan
            - simulate(&interleaved(&chunks, p, n, FREE)).makespan;
        let gain_costly = simulate(&one_f_one_b(&plain, n, p2p)).makespan
            - simulate(&interleaved(&chunks, p, n, p2p)).makespan;
        assert!(gain_costly < gain_free, "{gain_costly} !< {gain_free}");
    }

    #[test]
    fn interleaved_runs_every_task_once() {
        let (p, n, v) = (3usize, 6usize, 3usize);
        let chunks = balanced(v * p, 0.4, 0.8, 7, 1);
        let r = simulate(&interleaved(&chunks, p, n, MicroSecs::new(0.01)));
        assert_eq!(r.timeline.len(), 2 * n * v * p);
        // Device d runs exactly its own virtual stages.
        for e in &r.timeline {
            assert_eq!(e.device, e.meta.stage % p);
        }
    }

    #[test]
    fn interleaved_with_v1_matches_plain_1f1b_memory() {
        let (p, n) = (4usize, 8usize);
        let stages = balanced(p, 1.0, 2.0, 100, 3);
        let plain = simulate(&one_f_one_b(&stages, n, FREE));
        let inter = simulate(&interleaved(&stages, p, n, FREE));
        // v = 1: same chunk-per-device layout; peaks must match 1F1B's
        // (p - s) law.
        for (s, (a, b)) in plain.devices.iter().zip(&inter.devices).enumerate() {
            assert_eq!(a.peak_dynamic_bytes, b.peak_dynamic_bytes, "stage {s}");
        }
    }

    #[test]
    #[should_panic(expected = "multiple of devices")]
    fn interleaved_rejects_ragged_chunks() {
        let _ = interleaved(&balanced(5, 1.0, 1.0, 0, 0), 2, 4, FREE);
    }

    #[test]
    #[should_panic(expected = "even stage count")]
    fn chimera_rejects_odd_p() {
        let _ = chimera(&balanced(3, 1.0, 1.0, 0, 0), 6, FREE, false);
    }

    #[test]
    #[should_panic(expected = "multiple of p")]
    fn chimera_rejects_ragged_n() {
        let _ = chimera(&balanced(4, 1.0, 1.0, 0, 0), 6, FREE, false);
    }
}
