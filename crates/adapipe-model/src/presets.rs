//! Model presets used throughout the paper's evaluation and our tests.
// lint: allow-file(expect): every preset is a fixed literal configuration
// whose builder invariants are exercised by this module's tests; a failure
// here is a compile-time-style defect, not a runtime condition.

use crate::spec::{FfnKind, ModelSpec};

/// GPT-3 175B (Brown et al., 2020): 96 decoder blocks, hidden 12288,
/// 96 heads, 4·h feed-forward, 50257-token vocabulary. The larger of the
/// two evaluation models in the paper.
#[must_use]
pub fn gpt3_175b() -> ModelSpec {
    ModelSpec::builder("gpt3-175b")
        .hidden(12288)
        .heads(96)
        .ffn_hidden(4 * 12288)
        .vocab(50257)
        .decoder_layers(96)
        .build()
        .expect("preset is valid")
}

/// Llama 2 70B (Touvron et al., 2023): 80 decoder blocks, hidden 8192,
/// 64 query heads with 8 grouped KV heads, SwiGLU feed-forward of width
/// 28672, 32000-token vocabulary.
#[must_use]
pub fn llama2_70b() -> ModelSpec {
    ModelSpec::builder("llama2-70b")
        .hidden(8192)
        .heads(64)
        .kv_heads(8)
        .ffn_hidden(28672)
        .vocab(32000)
        .decoder_layers(80)
        .ffn(FfnKind::SwiGlu)
        .build()
        .expect("preset is valid")
}

/// GPT-3 13B: the mid-size configuration of the GPT-3 family (40
/// blocks, hidden 5140-ish rounded to the published 5120).
#[must_use]
pub fn gpt3_13b() -> ModelSpec {
    ModelSpec::builder("gpt3-13b")
        .hidden(5120)
        .heads(40)
        .ffn_hidden(4 * 5120)
        .vocab(50257)
        .decoder_layers(40)
        .build()
        .expect("preset is valid")
}

/// Llama 2 13B: 40 blocks, hidden 5120, classic MHA, SwiGLU of width
/// 13824.
#[must_use]
pub fn llama2_13b() -> ModelSpec {
    ModelSpec::builder("llama2-13b")
        .hidden(5120)
        .heads(40)
        .ffn_hidden(13824)
        .vocab(32000)
        .decoder_layers(40)
        .ffn(FfnKind::SwiGlu)
        .build()
        .expect("preset is valid")
}

/// BERT-Large-like encoder-as-decoder stand-in (§4.1 notes the unit
/// division also applies to BERT): 24 blocks, hidden 1024.
#[must_use]
pub fn bert_large() -> ModelSpec {
    ModelSpec::builder("bert-large")
        .hidden(1024)
        .heads(16)
        .ffn_hidden(4096)
        .vocab(30522)
        .decoder_layers(24)
        .build()
        .expect("preset is valid")
}

/// A small GPT-2-like model for fast integration tests and examples.
#[must_use]
pub fn gpt2_small() -> ModelSpec {
    ModelSpec::builder("gpt2-small")
        .hidden(768)
        .heads(12)
        .ffn_hidden(3072)
        .vocab(50257)
        .decoder_layers(12)
        .build()
        .expect("preset is valid")
}

/// A tiny model for unit tests and the miniature training engine.
#[must_use]
pub fn tiny_gpt() -> ModelSpec {
    ModelSpec::builder("tiny-gpt")
        .hidden(64)
        .heads(4)
        .ffn_hidden(256)
        .vocab(128)
        .decoder_layers(4)
        .build()
        .expect("preset is valid")
}

/// A tiny Llama-style model (grouped-query attention + SwiGLU) for tests.
#[must_use]
pub fn tiny_llama() -> ModelSpec {
    ModelSpec::builder("tiny-llama")
        .hidden(64)
        .heads(4)
        .kv_heads(2)
        .ffn_hidden(192)
        .vocab(128)
        .decoder_layers(4)
        .ffn(FfnKind::SwiGlu)
        .build()
        .expect("preset is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_build() {
        for spec in [
            gpt3_175b(),
            gpt3_13b(),
            llama2_70b(),
            llama2_13b(),
            bert_large(),
            gpt2_small(),
            tiny_gpt(),
            tiny_llama(),
        ] {
            assert!(spec.hidden() > 0);
            assert!(spec.total_params() > 0);
        }
    }

    #[test]
    fn mid_size_presets_have_plausible_param_counts() {
        let g = gpt3_13b().total_params() as f64;
        assert!((1.2e10..1.4e10).contains(&g), "gpt3-13b = {g:.3e}");
        let l = llama2_13b().total_params() as f64;
        assert!((1.2e10..1.4e10).contains(&l), "llama2-13b = {l:.3e}");
    }

    #[test]
    fn llama_uses_gqa_and_swiglu() {
        let spec = llama2_70b();
        assert_eq!(spec.kv_heads(), 8);
        assert_eq!(spec.ffn(), FfnKind::SwiGlu);
        assert_eq!(spec.head_dim(), 128);
    }
}
