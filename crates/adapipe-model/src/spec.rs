use crate::error::ConfigError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The feed-forward flavour of a transformer model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FfnKind {
    /// Classic two-matrix MLP with a GeLU in between (GPT-2/GPT-3, BERT).
    Gelu,
    /// Gated three-matrix MLP with SiLU (Llama family).
    SwiGlu,
}

impl fmt::Display for FfnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FfnKind::Gelu => "gelu",
            FfnKind::SwiGlu => "swiglu",
        })
    }
}

/// Architectural description of a decoder-only transformer.
///
/// A `ModelSpec` carries everything the profiler and memory model need to
/// size tensors and count FLOPs: hidden width, head layout, feed-forward
/// width and flavour, vocabulary size, depth and activation precision.
///
/// Construct one with [`ModelSpec::builder`] or use a preset from
/// [`presets`](crate::presets).
///
/// ```
/// use adapipe_model::{FfnKind, ModelSpec};
///
/// let spec = ModelSpec::builder("toy")
///     .hidden(256)
///     .heads(8)
///     .ffn_hidden(1024)
///     .vocab(1000)
///     .decoder_layers(4)
///     .build()?;
/// assert_eq!(spec.head_dim(), 32);
/// # Ok::<(), adapipe_model::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelSpec {
    name: String,
    hidden: usize,
    heads: usize,
    kv_heads: usize,
    ffn_hidden: usize,
    vocab: usize,
    decoder_layers: usize,
    ffn: FfnKind,
    dtype_bytes: usize,
}

impl ModelSpec {
    /// Starts building a model specification with the given name.
    #[must_use]
    pub fn builder(name: impl Into<String>) -> ModelSpecBuilder {
        ModelSpecBuilder::new(name)
    }

    /// Human-readable model name, e.g. `"gpt3-175b"`.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Hidden (embedding) dimension.
    #[must_use]
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Number of attention (query) heads.
    #[must_use]
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Number of key/value heads (grouped-query attention); equals
    /// [`heads`](Self::heads) for classic multi-head attention.
    #[must_use]
    pub fn kv_heads(&self) -> usize {
        self.kv_heads
    }

    /// Inner width of the feed-forward block.
    #[must_use]
    pub fn ffn_hidden(&self) -> usize {
        self.ffn_hidden
    }

    /// Vocabulary size.
    #[must_use]
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Number of decoder blocks (each contributes an attention layer and a
    /// feed-forward layer to the layer sequence).
    #[must_use]
    pub fn decoder_layers(&self) -> usize {
        self.decoder_layers
    }

    /// Feed-forward flavour.
    #[must_use]
    pub fn ffn(&self) -> FfnKind {
        self.ffn
    }

    /// Bytes per activation/parameter element (2 for fp16/bf16).
    #[must_use]
    pub fn dtype_bytes(&self) -> usize {
        self.dtype_bytes
    }

    /// Per-head dimension, `hidden / heads`.
    #[must_use]
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// Width of the concatenated key/value projections,
    /// `kv_heads * head_dim`. Smaller than `hidden` under grouped-query
    /// attention.
    #[must_use]
    pub fn kv_hidden(&self) -> usize {
        self.kv_heads * self.head_dim()
    }
}

impl fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (h={}, heads={}/{}, ffn={}, L={}, vocab={}, {})",
            self.name,
            self.hidden,
            self.heads,
            self.kv_heads,
            self.ffn_hidden,
            self.decoder_layers,
            self.vocab,
            self.ffn
        )
    }
}

/// Builder for [`ModelSpec`].
///
/// All dimension fields default to zero and must be set; `kv_heads`
/// defaults to `heads` (multi-head attention), `ffn` to [`FfnKind::Gelu`]
/// and `dtype_bytes` to 2 (half precision).
#[derive(Debug, Clone)]
pub struct ModelSpecBuilder {
    name: String,
    hidden: usize,
    heads: usize,
    kv_heads: Option<usize>,
    ffn_hidden: usize,
    vocab: usize,
    decoder_layers: usize,
    ffn: FfnKind,
    dtype_bytes: usize,
}

impl ModelSpecBuilder {
    fn new(name: impl Into<String>) -> Self {
        ModelSpecBuilder {
            name: name.into(),
            hidden: 0,
            heads: 0,
            kv_heads: None,
            ffn_hidden: 0,
            vocab: 0,
            decoder_layers: 0,
            ffn: FfnKind::Gelu,
            dtype_bytes: 2,
        }
    }

    /// Sets the hidden dimension.
    #[must_use]
    pub fn hidden(mut self, hidden: usize) -> Self {
        self.hidden = hidden;
        self
    }

    /// Sets the number of attention heads.
    #[must_use]
    pub fn heads(mut self, heads: usize) -> Self {
        self.heads = heads;
        self
    }

    /// Sets the number of key/value heads (grouped-query attention).
    #[must_use]
    pub fn kv_heads(mut self, kv_heads: usize) -> Self {
        self.kv_heads = Some(kv_heads);
        self
    }

    /// Sets the feed-forward inner width.
    #[must_use]
    pub fn ffn_hidden(mut self, ffn_hidden: usize) -> Self {
        self.ffn_hidden = ffn_hidden;
        self
    }

    /// Sets the vocabulary size.
    #[must_use]
    pub fn vocab(mut self, vocab: usize) -> Self {
        self.vocab = vocab;
        self
    }

    /// Sets the number of decoder blocks.
    #[must_use]
    pub fn decoder_layers(mut self, decoder_layers: usize) -> Self {
        self.decoder_layers = decoder_layers;
        self
    }

    /// Sets the feed-forward flavour.
    #[must_use]
    pub fn ffn(mut self, ffn: FfnKind) -> Self {
        self.ffn = ffn;
        self
    }

    /// Sets the bytes per activation element (default 2 = half precision).
    #[must_use]
    pub fn dtype_bytes(mut self, dtype_bytes: usize) -> Self {
        self.dtype_bytes = dtype_bytes;
        self
    }

    /// Validates the configuration and builds the [`ModelSpec`].
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any dimension is zero, if `hidden` is not
    /// divisible by `heads`, or if `heads` is not divisible by `kv_heads`.
    pub fn build(self) -> Result<ModelSpec, ConfigError> {
        let check = |field: &'static str, v: usize| {
            if v == 0 {
                Err(ConfigError::ZeroField { field })
            } else {
                Ok(())
            }
        };
        check("hidden", self.hidden)?;
        check("heads", self.heads)?;
        check("ffn_hidden", self.ffn_hidden)?;
        check("vocab", self.vocab)?;
        check("decoder_layers", self.decoder_layers)?;
        check("dtype_bytes", self.dtype_bytes)?;
        let kv_heads = self.kv_heads.unwrap_or(self.heads);
        check("kv_heads", kv_heads)?;
        if !self.hidden.is_multiple_of(self.heads) {
            return Err(ConfigError::HiddenNotDivisibleByHeads {
                hidden: self.hidden,
                heads: self.heads,
            });
        }
        if !self.heads.is_multiple_of(kv_heads) {
            return Err(ConfigError::HeadsNotDivisibleByKvHeads {
                heads: self.heads,
                kv_heads,
            });
        }
        Ok(ModelSpec {
            name: self.name,
            hidden: self.hidden,
            heads: self.heads,
            kv_heads,
            ffn_hidden: self.ffn_hidden,
            vocab: self.vocab,
            decoder_layers: self.decoder_layers,
            ffn: self.ffn,
            dtype_bytes: self.dtype_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> ModelSpecBuilder {
        ModelSpec::builder("toy")
            .hidden(256)
            .heads(8)
            .ffn_hidden(1024)
            .vocab(1000)
            .decoder_layers(4)
    }

    #[test]
    fn builder_fills_defaults() {
        let spec = toy().build().unwrap();
        assert_eq!(spec.kv_heads(), spec.heads());
        assert_eq!(spec.ffn(), FfnKind::Gelu);
        assert_eq!(spec.dtype_bytes(), 2);
        assert_eq!(spec.head_dim(), 32);
        assert_eq!(spec.kv_hidden(), 256);
    }

    #[test]
    fn grouped_query_attention_shrinks_kv_hidden() {
        let spec = toy().kv_heads(2).build().unwrap();
        assert_eq!(spec.kv_hidden(), 64);
    }

    #[test]
    fn zero_field_rejected() {
        let err = toy().hidden(0).build().unwrap_err();
        assert_eq!(err, ConfigError::ZeroField { field: "hidden" });
    }

    #[test]
    fn indivisible_heads_rejected() {
        let err = toy().hidden(250).build().unwrap_err();
        assert!(matches!(err, ConfigError::HiddenNotDivisibleByHeads { .. }));
    }

    #[test]
    fn indivisible_kv_heads_rejected() {
        let err = toy().kv_heads(3).build().unwrap_err();
        assert!(matches!(
            err,
            ConfigError::HeadsNotDivisibleByKvHeads { .. }
        ));
    }

    #[test]
    fn display_mentions_name_and_dims() {
        let s = toy().build().unwrap().to_string();
        assert!(s.contains("toy"));
        assert!(s.contains("h=256"));
    }
}
