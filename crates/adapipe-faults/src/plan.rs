//! The fault-plan DSL: a seed plus a list of faults, with a line-based
//! text format (`adapipe-faults v1`) that round-trips byte for byte.

use adapipe_units::{Bytes, MicroSecs};
use std::error::Error;
use std::fmt;

/// Magic first line of the text format.
pub const HEADER: &str = "adapipe-faults v1";

/// One injected fault. Stage and device indices coincide for the plain
/// 1F1B pipelines the chaos harness drives (stage `s` runs on device
/// `s`).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Fault {
    /// Device `device` computes at `factor` × its healthy speed (so
    /// every kernel takes `1 / factor` × as long) from training step
    /// `from_step` onwards. Persistent.
    Straggler {
        /// Affected device (= pipeline stage under 1F1B).
        device: usize,
        /// Remaining compute speed, in `(0, 1]`.
        factor: f64,
        /// First training step the slowdown applies to.
        from_step: usize,
    },
    /// Every stage-boundary link moves bytes at `bandwidth_factor` ×
    /// its healthy bandwidth. Persistent.
    LinkDegradation {
        /// Remaining bandwidth, in `(0, 1]`.
        bandwidth_factor: f64,
    },
    /// Stage `stage` loses `shrink` bytes of activation budget — a
    /// neighbouring job, fragmentation, or a shrunk reservation.
    /// Persistent.
    MemoryPressure {
        /// Affected pipeline stage.
        stage: usize,
        /// Bytes removed from the stage's activation budget.
        shrink: Bytes,
    },
    /// Micro-batch `micro_batch` on `device` takes `delay` extra time,
    /// once, at a fire step drawn deterministically from the plan seed
    /// by [`FaultClock`](crate::FaultClock). Transient.
    TransientStall {
        /// Affected device.
        device: usize,
        /// Affected micro-batch.
        micro_batch: usize,
        /// One-shot extra delay.
        delay: MicroSecs,
    },
}

/// A seeded, ordered list of faults. The seed drives every
/// fault-scheduling decision, so equal plans perturb a run identically.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (a healthy cluster) under `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Appends `fault` to the plan.
    ///
    /// # Panics
    ///
    /// Panics if the fault is out of range: a straggler or link factor
    /// outside `(0, 1]`, or a negative/non-finite stall delay. The text
    /// parser reports these as [`FaultParseError`]s instead.
    pub fn push(&mut self, fault: Fault) {
        match &fault {
            Fault::Straggler { factor, .. } => {
                assert!(
                    *factor > 0.0 && *factor <= 1.0,
                    "straggler factor must be in (0, 1], got {factor}"
                );
            }
            Fault::LinkDegradation { bandwidth_factor } => {
                assert!(
                    *bandwidth_factor > 0.0 && *bandwidth_factor <= 1.0,
                    "link bandwidth factor must be in (0, 1], got {bandwidth_factor}"
                );
            }
            Fault::MemoryPressure { .. } => {}
            Fault::TransientStall { delay, .. } => {
                assert!(
                    !delay.is_invalid_cost(),
                    "stall delay must be a finite non-negative time, got {delay}"
                );
            }
        }
        self.faults.push(fault);
    }

    /// Builder-style [`FaultPlan::push`].
    ///
    /// # Panics
    ///
    /// As for [`FaultPlan::push`].
    #[must_use]
    pub fn with(mut self, fault: Fault) -> Self {
        self.push(fault);
        self
    }

    /// The seed every fault-scheduling decision derives from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The faults, in plan order.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether the plan injects nothing (a healthy cluster).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Combined bandwidth factor of every link-degradation fault
    /// (product; 1.0 when none).
    #[must_use]
    pub fn bandwidth_factor(&self) -> f64 {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::LinkDegradation { bandwidth_factor } => Some(*bandwidth_factor),
                _ => None,
            })
            .product()
    }

    /// Total activation-budget shrink charged to `stage`.
    #[must_use]
    pub fn budget_shrink(&self, stage: usize) -> Bytes {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::MemoryPressure { stage: s, shrink } if *s == stage => Some(*shrink),
                _ => None,
            })
            .fold(Bytes::ZERO, Bytes::saturating_add)
    }

    /// Compute-speed factor of `device` at training step `step`:
    /// product of every straggler active by then (1.0 when healthy).
    #[must_use]
    pub fn compute_factor_at(&self, device: usize, step: usize) -> f64 {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::Straggler {
                    device: d,
                    factor,
                    from_step,
                } if *d == device && *from_step <= step => Some(*factor),
                _ => None,
            })
            .product()
    }

    /// Whether any straggler or memory-pressure fault exists (the
    /// persistent classes that warrant a replan once detected).
    #[must_use]
    pub fn has_persistent_faults(&self) -> bool {
        self.faults.iter().any(|f| {
            matches!(
                f,
                Fault::Straggler { .. }
                    | Fault::MemoryPressure { .. }
                    | Fault::LinkDegradation { .. }
            )
        })
    }

    /// Serializes the plan in the `adapipe-faults v1` text format. The
    /// output is canonical: parsing it back yields an equal plan, and
    /// equal plans serialize to identical bytes.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&format!("seed = {}\n", self.seed));
        for f in &self.faults {
            match f {
                Fault::Straggler {
                    device,
                    factor,
                    from_step,
                } => out.push_str(&format!(
                    "straggler device={device} factor={factor:?} from-step={from_step}\n"
                )),
                Fault::LinkDegradation { bandwidth_factor } => {
                    out.push_str(&format!("link bandwidth-factor={bandwidth_factor:?}\n"))
                }
                Fault::MemoryPressure { stage, shrink } => out.push_str(&format!(
                    "mem-shrink stage={stage} bytes={}\n",
                    shrink.get()
                )),
                Fault::TransientStall {
                    device,
                    micro_batch,
                    delay,
                } => out.push_str(&format!(
                    "stall device={device} micro-batch={micro_batch} delay-us={:?}\n",
                    delay.as_micros()
                )),
            }
        }
        out
    }

    /// Parses the `adapipe-faults v1` text format.
    ///
    /// # Errors
    ///
    /// A typed [`FaultParseError`] naming the offending line.
    pub fn from_text(text: &str) -> Result<Self, FaultParseError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, h)) if h.trim() == HEADER => {}
            other => {
                return Err(FaultParseError::BadHeader {
                    found: other.map(|(_, h)| h.to_string()).unwrap_or_default(),
                })
            }
        }
        let mut seed: Option<u64> = None;
        let mut faults = Vec::new();
        for (idx, raw) in lines {
            let line = idx + 1; // 1-based for humans
            let text = raw.trim();
            if text.is_empty() || text.starts_with('#') {
                continue;
            }
            let mut tokens = text.split_whitespace();
            let Some(head) = tokens.next() else { continue };
            let fields = Fields::parse(line, tokens.collect())?;
            match head {
                "seed" | "seed=" => {
                    // "seed = N" splits as ["seed", "=", "N"]; Fields
                    // treats the bare "=" + value pair specially.
                    seed = Some(fields.bare_assignment(line)?);
                }
                "straggler" => {
                    let factor = fields.f64(line, "factor")?;
                    if !(factor > 0.0 && factor <= 1.0) {
                        return Err(FaultParseError::OutOfRange {
                            line,
                            what: format!("straggler factor {factor} not in (0, 1]"),
                        });
                    }
                    faults.push(Fault::Straggler {
                        device: fields.usize(line, "device")?,
                        factor,
                        from_step: fields.usize_or(line, "from-step", 0)?,
                    });
                }
                "link" => {
                    let bandwidth_factor = fields.f64(line, "bandwidth-factor")?;
                    if !(bandwidth_factor > 0.0 && bandwidth_factor <= 1.0) {
                        return Err(FaultParseError::OutOfRange {
                            line,
                            what: format!("link bandwidth factor {bandwidth_factor} not in (0, 1]"),
                        });
                    }
                    faults.push(Fault::LinkDegradation { bandwidth_factor });
                }
                "mem-shrink" => faults.push(Fault::MemoryPressure {
                    stage: fields.usize(line, "stage")?,
                    shrink: Bytes::new(fields.u64(line, "bytes")?),
                }),
                "stall" => {
                    let delay = fields.f64(line, "delay-us")?;
                    if !(delay.is_finite() && delay >= 0.0) {
                        return Err(FaultParseError::OutOfRange {
                            line,
                            what: format!("stall delay {delay} must be finite and >= 0"),
                        });
                    }
                    faults.push(Fault::TransientStall {
                        device: fields.usize(line, "device")?,
                        micro_batch: fields.usize(line, "micro-batch")?,
                        delay: MicroSecs::new(delay),
                    });
                }
                other => {
                    return Err(FaultParseError::UnknownFault {
                        line,
                        kind: other.to_string(),
                    })
                }
            }
        }
        let seed = seed.ok_or(FaultParseError::MissingSeed)?;
        let mut plan = FaultPlan::new(seed);
        // Ranges were validated above, so `push`'s asserts cannot fire.
        for f in faults {
            plan.push(f);
        }
        Ok(plan)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_text())
    }
}

/// `key=value` fields of one fault line.
struct Fields {
    pairs: Vec<(String, String)>,
}

impl Fields {
    fn parse(line: usize, tokens: Vec<&str>) -> Result<Self, FaultParseError> {
        let mut pairs = Vec::new();
        let mut rest = tokens.into_iter();
        while let Some(tok) = rest.next() {
            if tok == "=" {
                // "seed = N": keep the bare assignment under the "" key.
                let value = rest.next().unwrap_or("");
                pairs.push((String::new(), value.to_string()));
            } else if let Some((k, v)) = tok.split_once('=') {
                pairs.push((k.to_string(), v.to_string()));
            } else {
                return Err(FaultParseError::BadToken {
                    line,
                    token: tok.to_string(),
                });
            }
        }
        Ok(Fields { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn bare_assignment(&self, line: usize) -> Result<u64, FaultParseError> {
        let v = self.get("").ok_or(FaultParseError::MissingKey {
            line,
            key: "seed".to_string(),
        })?;
        v.parse().map_err(|_| FaultParseError::BadValue {
            line,
            key: "seed".to_string(),
            value: v.to_string(),
        })
    }

    fn required(&self, line: usize, key: &str) -> Result<&str, FaultParseError> {
        self.get(key).ok_or_else(|| FaultParseError::MissingKey {
            line,
            key: key.to_string(),
        })
    }

    fn usize(&self, line: usize, key: &str) -> Result<usize, FaultParseError> {
        let v = self.required(line, key)?;
        v.parse().map_err(|_| FaultParseError::BadValue {
            line,
            key: key.to_string(),
            value: v.to_string(),
        })
    }

    fn usize_or(&self, line: usize, key: &str, default: usize) -> Result<usize, FaultParseError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| FaultParseError::BadValue {
                line,
                key: key.to_string(),
                value: v.to_string(),
            }),
        }
    }

    fn u64(&self, line: usize, key: &str) -> Result<u64, FaultParseError> {
        let v = self.required(line, key)?;
        v.parse().map_err(|_| FaultParseError::BadValue {
            line,
            key: key.to_string(),
            value: v.to_string(),
        })
    }

    fn f64(&self, line: usize, key: &str) -> Result<f64, FaultParseError> {
        let v = self.required(line, key)?;
        v.parse().map_err(|_| FaultParseError::BadValue {
            line,
            key: key.to_string(),
            value: v.to_string(),
        })
    }
}

/// Typed error from [`FaultPlan::from_text`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultParseError {
    /// The first line is not `adapipe-faults v1`.
    BadHeader {
        /// What the first line actually was.
        found: String,
    },
    /// No `seed = N` line.
    MissingSeed,
    /// A fault line starts with an unknown keyword.
    UnknownFault {
        /// 1-based line number.
        line: usize,
        /// The unknown keyword.
        kind: String,
    },
    /// A token is not `key=value`.
    BadToken {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A required `key=value` field is absent.
    MissingKey {
        /// 1-based line number.
        line: usize,
        /// The missing key.
        key: String,
    },
    /// A field's value does not parse.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// The field's key.
        key: String,
        /// The unparseable value.
        value: String,
    },
    /// A value parses but violates its range (factor outside `(0, 1]`,
    /// negative delay).
    OutOfRange {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        what: String,
    },
}

impl fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultParseError::BadHeader { found } => {
                write!(f, "expected header {HEADER:?}, found {found:?}")
            }
            FaultParseError::MissingSeed => write!(f, "missing `seed = <n>` line"),
            FaultParseError::UnknownFault { line, kind } => {
                write!(f, "line {line}: unknown fault kind {kind:?}")
            }
            FaultParseError::BadToken { line, token } => {
                write!(f, "line {line}: expected key=value, found {token:?}")
            }
            FaultParseError::MissingKey { line, key } => {
                write!(f, "line {line}: missing field {key}=")
            }
            FaultParseError::BadValue { line, key, value } => {
                write!(f, "line {line}: bad value for {key}: {value:?}")
            }
            FaultParseError::OutOfRange { line, what } => {
                write!(f, "line {line}: {what}")
            }
        }
    }
}

impl Error for FaultParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FaultPlan {
        FaultPlan::new(42)
            .with(Fault::Straggler {
                device: 2,
                factor: 0.6,
                from_step: 1,
            })
            .with(Fault::LinkDegradation {
                bandwidth_factor: 0.5,
            })
            .with(Fault::MemoryPressure {
                stage: 1,
                shrink: Bytes::from_gib(4),
            })
            .with(Fault::TransientStall {
                device: 0,
                micro_batch: 3,
                delay: MicroSecs::new(5000.0),
            })
    }

    #[test]
    fn text_round_trips_exactly() {
        let plan = sample();
        let text = plan.to_text();
        let back = FaultPlan::from_text(&text).unwrap();
        assert_eq!(plan, back);
        assert_eq!(text, back.to_text(), "canonical form must be stable");
    }

    #[test]
    fn parses_comments_blank_lines_and_spaced_seed() {
        let text = "adapipe-faults v1\n\n# a comment\nseed = 7\nstraggler device=0 factor=0.5\n";
        let plan = FaultPlan::from_text(text).unwrap();
        assert_eq!(plan.seed(), 7);
        assert_eq!(plan.faults().len(), 1);
        // from-step defaults to 0.
        assert!(matches!(
            plan.faults()[0],
            Fault::Straggler { from_step: 0, .. }
        ));
    }

    #[test]
    fn rejects_bad_header_and_missing_seed() {
        assert!(matches!(
            FaultPlan::from_text("nope\n"),
            Err(FaultParseError::BadHeader { .. })
        ));
        assert!(matches!(
            FaultPlan::from_text("adapipe-faults v1\nstraggler device=0 factor=0.5\n"),
            Err(FaultParseError::MissingSeed)
        ));
    }

    #[test]
    fn rejects_out_of_range_factors() {
        for text in [
            "adapipe-faults v1\nseed = 1\nstraggler device=0 factor=0.0\n",
            "adapipe-faults v1\nseed = 1\nstraggler device=0 factor=1.5\n",
            "adapipe-faults v1\nseed = 1\nlink bandwidth-factor=-0.5\n",
            "adapipe-faults v1\nseed = 1\nstall device=0 micro-batch=0 delay-us=-1\n",
        ] {
            assert!(
                matches!(
                    FaultPlan::from_text(text),
                    Err(FaultParseError::OutOfRange { .. })
                ),
                "{text}"
            );
        }
    }

    #[test]
    fn rejects_unknown_kinds_and_bad_tokens() {
        assert!(matches!(
            FaultPlan::from_text("adapipe-faults v1\nseed = 1\nmeteor strike=1\n"),
            Err(FaultParseError::UnknownFault { .. })
        ));
        assert!(matches!(
            FaultPlan::from_text("adapipe-faults v1\nseed = 1\nstraggler device\n"),
            Err(FaultParseError::BadToken { .. })
        ));
        assert!(matches!(
            FaultPlan::from_text("adapipe-faults v1\nseed = 1\nstraggler factor=0.5\n"),
            Err(FaultParseError::MissingKey { .. })
        ));
        assert!(matches!(
            FaultPlan::from_text("adapipe-faults v1\nseed = 1\nstraggler device=x factor=0.5\n"),
            Err(FaultParseError::BadValue { .. })
        ));
    }

    #[test]
    fn derived_views_compose_faults() {
        let plan = sample();
        assert!((plan.bandwidth_factor() - 0.5).abs() < 1e-12);
        assert_eq!(plan.budget_shrink(1), Bytes::from_gib(4));
        assert_eq!(plan.budget_shrink(0), Bytes::ZERO);
        // Straggler activates at step 1.
        assert!((plan.compute_factor_at(2, 0) - 1.0).abs() < 1e-12);
        assert!((plan.compute_factor_at(2, 1) - 0.6).abs() < 1e-12);
        assert!((plan.compute_factor_at(0, 5) - 1.0).abs() < 1e-12);
        assert!(plan.has_persistent_faults());
        assert!(!FaultPlan::new(1).has_persistent_faults());
    }

    #[test]
    fn errors_render_with_line_numbers() {
        let e = FaultPlan::from_text("adapipe-faults v1\nseed = 1\nbogus x=1\n").unwrap_err();
        assert!(e.to_string().contains("line 3"), "{e}");
    }
}
