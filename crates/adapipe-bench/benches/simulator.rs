//! Throughput of the discrete-event schedule simulator across schedule
//! families and pipeline scales.

use adapipe_sim::{schedule, simulate, StageExec};
use adapipe_units::{Bytes, MicroSecs};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn stages(p: usize) -> Vec<StageExec> {
    (0..p)
        .map(|s| StageExec {
            time_f: MicroSecs::new(1.0 + 0.01 * s as f64),
            time_b: MicroSecs::new(2.0 + 0.02 * s as f64),
            saved_bytes: Bytes::new(1 << 30),
            buffer_bytes: Bytes::new(1 << 28),
        })
        .collect()
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    for (p, n) in [(8usize, 64usize), (16, 128), (32, 256)] {
        let st = stages(p);
        group.bench_with_input(
            BenchmarkId::new("1f1b", format!("p{p}_n{n}")),
            &st,
            |b, st| {
                b.iter(|| {
                    simulate(black_box(&schedule::one_f_one_b(
                        st,
                        n,
                        MicroSecs::new(1e-4),
                    )))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("gpipe", format!("p{p}_n{n}")),
            &st,
            |b, st| {
                b.iter(|| simulate(black_box(&schedule::gpipe(st, n, MicroSecs::new(1e-4)))));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("chimera", format!("p{p}_n{n}")),
            &st,
            |b, st| {
                b.iter(|| {
                    simulate(black_box(&schedule::chimera(
                        st,
                        n,
                        MicroSecs::new(1e-4),
                        false,
                    )))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
