//! A library crate root with no `#![forbid(unsafe_code)]`.

pub fn f() {}
