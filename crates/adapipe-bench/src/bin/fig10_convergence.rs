//! Figure 10: convergence validation. Trains the miniature GPT with the
//! real pipeline-parallel engine under (a) DAPPLE-Full — even partition,
//! full recomputation — and (b) an AdaPipe-style plan — skewed partition
//! plus mixed per-unit recomputation — from identical initialization,
//! and prints both loss curves.
//!
//! The paper's claim (§7.5) is that AdaPipe changes no math; with
//! initialization held fixed our curves are *bit-identical*, which is
//! the strongest form of that claim. (The paper's two curves differ only
//! because its partitioning changes parameter initialization order.)

use adapipe_bench::bar;
use adapipe_model::{units_for_layer, LayerSeq};
use adapipe_train::{train, TrainerConfig};

fn main() {
    let mut cfg = TrainerConfig::tiny_for_tests();
    cfg.decoder_layers = 4;
    cfg.seq_len = 16;
    cfg.dims.max_seq = 16;
    cfg.micro_batches = 4;
    cfg.steps = 200;
    cfg.lr = 0.15;

    // (a) DAPPLE-Full: even partition, full recomputation.
    let dapple = cfg.with_full_recompute();

    // (b) AdaPipe-style: stage 0 takes fewer layers (it would recompute
    // more), stage 1 takes more; stage 0 recomputes its free units,
    // stage 1 saves half of them — a hand-rolled nontrivial strategy of
    // the kind the planner emits.
    let spec = cfg.model_spec();
    let seq = LayerSeq::for_model(&spec);
    let split = seq.len() / 2 - 2;
    let partition = vec![(0, split), (split + 1, seq.len() - 1)];
    let mut flags: Vec<Vec<bool>> = Vec::new();
    for (s, &(first, last)) in partition.iter().enumerate() {
        let mut stage_flags = Vec::new();
        let mut free_seen = 0usize;
        for l in first..=last {
            for kind in units_for_layer(&spec, seq.layer(l).kind) {
                if kind.is_pinned() {
                    stage_flags.push(true);
                } else if s == 0 {
                    stage_flags.push(false); // early stage: recompute all
                } else {
                    free_seen += 1;
                    stage_flags.push(free_seen.is_multiple_of(2)); // late stage: save half
                }
            }
        }
        flags.push(stage_flags);
    }
    let adapipe = cfg.with_partition(partition).with_adaptive(flags);

    println!("training DAPPLE-Full ({} steps)...", cfg.steps);
    let a = train(&dapple);
    println!("training AdaPipe plan ({} steps)...", cfg.steps);
    let b = train(&adapipe);

    println!("\n== Figure 10: loss curves ==");
    println!(
        "{:>5}  {:>12} {:>12}  curve (DAPPLE-Full)",
        "step", "DAPPLE-Full", "AdaPipe"
    );
    let max_loss = a.losses.iter().copied().fold(0.0f32, f32::max);
    for step in (0..cfg.steps).step_by(10) {
        println!(
            "{step:>5}  {:>12.4} {:>12.4}  {}",
            a.losses[step],
            b.losses[step],
            bar(f64::from(a.losses[step]), f64::from(max_loss), 40)
        );
    }
    let max_diff = a
        .losses
        .iter()
        .zip(&b.losses)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
        .max(0.0);
    println!(
        "\nfinal losses: DAPPLE-Full {:.4}, AdaPipe {:.4}; max |diff| over {} steps = {max_diff:e}",
        a.final_loss(),
        b.final_loss(),
        cfg.steps
    );
    println!(
        "Expected shape: both curves decrease from ~ln(vocab) = {:.2} and coincide \
         exactly — recomputation and repartitioning change scheduling, not math.",
        (cfg.dims.vocab as f32).ln()
    );
    assert_eq!(a.losses, b.losses, "loss curves must be bit-identical");
}
