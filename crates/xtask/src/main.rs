//! `xtask` — workspace maintenance tasks, invoked as
//! `cargo run -p xtask -- <task>`.
//!
//! The only task today is `lint`: a zero-dependency source-level lint
//! pass enforcing the panic-freedom and API-hygiene rules documented in
//! `docs/static-analysis.md`. It is deliberately *not* a Rust parser —
//! it scans masked source text (comments and strings blanked) so it
//! stays dependency-free and fast, at the cost of only catching the
//! idioms it was written for.

use xtask::lint;

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: cargo run -p xtask -- <task>

tasks:
  lint    run the workspace source-level lint pass (see docs/static-analysis.md)
";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(task) = args.next() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    match task.as_str() {
        "lint" => lint_task(),
        "-h" | "--help" | "help" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("error: unknown task `{other}`\n");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn lint_task() -> ExitCode {
    let root = workspace_root();
    let violations = lint::run(&root);
    if violations.is_empty() {
        println!("lint: ok — no violations");
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        println!("{v}");
    }
    println!("lint: {} violation(s)", violations.len());
    ExitCode::FAILURE
}

/// The workspace root: `CARGO_MANIFEST_DIR/../..` when run via cargo,
/// the current directory otherwise.
fn workspace_root() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        let manifest = PathBuf::from(dir);
        if let Some(root) = manifest.parent().and_then(|p| p.parent()) {
            return root.to_path_buf();
        }
    }
    PathBuf::from(".")
}
