//! Scaling of the §4.3 recomputation knapsack, including the §5.3 GCD
//! rescaling ablation: the same stage optimized with and without
//! dividing the memory axis by the GCD of the unit sizes.

use adapipe_hw::presets as hw;
use adapipe_model::{presets, LayerRange, ParallelConfig, TrainConfig};
use adapipe_profiler::Profiler;
use adapipe_recompute::{optimize_with, KnapsackConfig};
use adapipe_units::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_knapsack(c: &mut Criterion) {
    let model = presets::gpt3_175b();
    let parallel = ParallelConfig::new(8, 8, 1).unwrap();
    let train = TrainConfig::new(1, 4096, 128).unwrap();
    let table = Profiler::new(hw::cluster_a()).profile(&model, &parallel, &train);

    let mut group = c.benchmark_group("knapsack");
    for layers in [12usize, 24, 48] {
        let units = table.units_in(LayerRange::new(1, layers));
        let all: Bytes = units.iter().map(|u| u.mem_saved).sum();
        let budget = all * 60 / 100;
        group.bench_with_input(
            BenchmarkId::new("gcd_rescaled", layers),
            &units,
            |b, units| {
                b.iter(|| {
                    optimize_with(
                        black_box(units),
                        black_box(budget),
                        KnapsackConfig::default(),
                    )
                    .unwrap()
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("no_gcd", layers), &units, |b, units| {
            b.iter(|| {
                optimize_with(
                    black_box(units),
                    black_box(budget),
                    KnapsackConfig {
                        disable_gcd: true,
                        ..Default::default()
                    },
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_knapsack);
criterion_main!(benches);
