pub fn first(xs: &[usize]) -> usize {
    // lint: allow(index): non-empty by the ctor assert
    xs[0]
}
