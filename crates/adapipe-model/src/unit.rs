use crate::layer::LayerKind;
use crate::spec::{FfnKind, ModelSpec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a computation unit (Figure 4 of the paper).
///
/// A computation unit is the minimal group of operators that adaptive
/// recomputation saves or recomputes *together*: operators whose
/// intermediate tensors would not be kept even by a non-recomputed backward
/// pass (transposes, additions, reshapes, …) are merged into the unit of the
/// tensor they feed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum UnitKind {
    /// Token/position embedding lookup (pinned: its output is the stage
    /// input for layer 0 and is always kept).
    Embedding,
    /// Pre-attention layer norm.
    AttnNorm,
    /// Query projection GEMM (plus folded bias/transpose/scale).
    QProj,
    /// Key projection GEMM.
    KProj,
    /// Value projection GEMM.
    VProj,
    /// Fused FlashAttention core (QKᵀ, softmax, PV). Saves its output and a
    /// small fp32 log-sum-exp tensor internally.
    CoreAttention,
    /// Attention output projection GEMM. Pinned saved (§4.2: the last GEMM
    /// of each layer is never recomputed, bounding the recompute buffer).
    OutProj,
    /// Pre-FFN layer norm.
    FfnNorm,
    /// First FFN GEMM (h → ffn_hidden), GeLU models.
    FfnFc1,
    /// GeLU activation.
    FfnAct,
    /// Second FFN GEMM (ffn_hidden → h), GeLU models. Pinned saved.
    FfnFc2,
    /// Gate projection GEMM (SwiGLU models).
    FfnGate,
    /// Up projection GEMM (SwiGLU models).
    FfnUp,
    /// SiLU(gate) * up elementwise (SwiGLU models).
    FfnActGated,
    /// Down projection GEMM (SwiGLU models). Pinned saved.
    FfnDown,
    /// Final norm + LM head projection (pinned).
    DecodingHead,
}

impl UnitKind {
    /// Whether this unit's output is *pinned saved*: the paper restricts
    /// the output of the last GEMM of each attention / feed-forward layer
    /// (and the embedding / head boundaries) to always be saved, so that
    /// the recompute buffer never exceeds one decoder layer (§4.2).
    #[must_use]
    pub fn is_pinned(self) -> bool {
        matches!(
            self,
            UnitKind::Embedding
                | UnitKind::OutProj
                | UnitKind::FfnFc2
                | UnitKind::FfnDown
                | UnitKind::DecodingHead
        )
    }

    /// Whether the unit is dominated by a matrix multiplication (vs a
    /// bandwidth-bound elementwise / normalization op).
    #[must_use]
    pub fn is_matmul(self) -> bool {
        matches!(
            self,
            UnitKind::QProj
                | UnitKind::KProj
                | UnitKind::VProj
                | UnitKind::CoreAttention
                | UnitKind::OutProj
                | UnitKind::FfnFc1
                | UnitKind::FfnFc2
                | UnitKind::FfnGate
                | UnitKind::FfnUp
                | UnitKind::FfnDown
                | UnitKind::DecodingHead
        )
    }
}

impl fmt::Display for UnitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            UnitKind::Embedding => "embedding",
            UnitKind::AttnNorm => "attn-norm",
            UnitKind::QProj => "q-proj",
            UnitKind::KProj => "k-proj",
            UnitKind::VProj => "v-proj",
            UnitKind::CoreAttention => "core-attention",
            UnitKind::OutProj => "out-proj",
            UnitKind::FfnNorm => "ffn-norm",
            UnitKind::FfnFc1 => "ffn-fc1",
            UnitKind::FfnAct => "ffn-act",
            UnitKind::FfnFc2 => "ffn-fc2",
            UnitKind::FfnGate => "ffn-gate",
            UnitKind::FfnUp => "ffn-up",
            UnitKind::FfnActGated => "ffn-act-gated",
            UnitKind::FfnDown => "ffn-down",
            UnitKind::DecodingHead => "decoding-head",
        };
        f.write_str(name)
    }
}

/// A computation unit instantiated at a concrete position in the model:
/// its kind plus the index of the layer it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ComputationUnit {
    /// What this unit computes.
    pub kind: UnitKind,
    /// Index of the parent layer within the model's layer sequence.
    pub layer: usize,
}

impl ComputationUnit {
    /// Whether the unit's output must always be saved (see
    /// [`UnitKind::is_pinned`]).
    #[must_use]
    pub fn is_pinned(&self) -> bool {
        self.kind.is_pinned()
    }
}

impl fmt::Display for ComputationUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.kind, self.layer)
    }
}

/// Returns the computation units making up one layer of `kind` for `spec`,
/// in execution order (Figure 4 of the paper).
///
/// Attention layers decompose into
/// `[AttnNorm, QProj, KProj, VProj, CoreAttention, OutProj]`; feed-forward
/// layers into `[FfnNorm, FfnFc1, FfnAct, FfnFc2]` (GeLU) or
/// `[FfnNorm, FfnGate, FfnUp, FfnActGated, FfnDown]` (SwiGLU); embedding
/// and decoding head are single pinned units.
#[must_use]
pub fn units_for_layer(spec: &ModelSpec, kind: LayerKind) -> Vec<UnitKind> {
    match kind {
        LayerKind::Embedding => vec![UnitKind::Embedding],
        LayerKind::DecodingHead => vec![UnitKind::DecodingHead],
        LayerKind::Attention => vec![
            UnitKind::AttnNorm,
            UnitKind::QProj,
            UnitKind::KProj,
            UnitKind::VProj,
            UnitKind::CoreAttention,
            UnitKind::OutProj,
        ],
        LayerKind::FeedForward => match spec.ffn() {
            FfnKind::Gelu => vec![
                UnitKind::FfnNorm,
                UnitKind::FfnFc1,
                UnitKind::FfnAct,
                UnitKind::FfnFc2,
            ],
            FfnKind::SwiGlu => vec![
                UnitKind::FfnNorm,
                UnitKind::FfnGate,
                UnitKind::FfnUp,
                UnitKind::FfnActGated,
                UnitKind::FfnDown,
            ],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn pinned_units_are_layer_outputs() {
        for kind in [
            UnitKind::Embedding,
            UnitKind::OutProj,
            UnitKind::FfnFc2,
            UnitKind::FfnDown,
            UnitKind::DecodingHead,
        ] {
            assert!(kind.is_pinned(), "{kind} should be pinned");
        }
        for kind in [
            UnitKind::AttnNorm,
            UnitKind::QProj,
            UnitKind::CoreAttention,
            UnitKind::FfnAct,
        ] {
            assert!(!kind.is_pinned(), "{kind} should be free");
        }
    }

    #[test]
    fn attention_layer_decomposition_matches_figure4() {
        let spec = presets::gpt3_175b();
        let units = units_for_layer(&spec, LayerKind::Attention);
        assert_eq!(
            units,
            vec![
                UnitKind::AttnNorm,
                UnitKind::QProj,
                UnitKind::KProj,
                UnitKind::VProj,
                UnitKind::CoreAttention,
                UnitKind::OutProj
            ]
        );
        // Exactly one pinned unit per layer, and it is last.
        assert!(units.last().unwrap().is_pinned());
        assert_eq!(units.iter().filter(|u| u.is_pinned()).count(), 1);
    }

    #[test]
    fn ffn_decomposition_depends_on_flavour() {
        let gpt = presets::gpt3_175b();
        let llama = presets::llama2_70b();
        assert_eq!(units_for_layer(&gpt, LayerKind::FeedForward).len(), 4);
        assert_eq!(units_for_layer(&llama, LayerKind::FeedForward).len(), 5);
        for spec in [gpt, llama] {
            let units = units_for_layer(&spec, LayerKind::FeedForward);
            assert!(units.last().unwrap().is_pinned());
        }
    }

    #[test]
    fn embedding_and_head_are_single_pinned_units() {
        let spec = presets::gpt3_175b();
        for kind in [LayerKind::Embedding, LayerKind::DecodingHead] {
            let units = units_for_layer(&spec, kind);
            assert_eq!(units.len(), 1);
            assert!(units[0].is_pinned());
        }
    }
}
