use adapipe_units::{Bytes, BytesPerSec, MicroSecs};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A link between devices: sustained bandwidth and per-message latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    bandwidth: BytesPerSec,
    latency: MicroSecs,
}

impl LinkSpec {
    /// Creates a link with the given sustained bandwidth and per-message
    /// latency.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is not strictly positive or `latency` is
    /// negative.
    #[must_use]
    pub fn new(bandwidth: BytesPerSec, latency: MicroSecs) -> Self {
        assert!(bandwidth.get() > 0.0, "link bandwidth must be positive");
        assert!(
            !latency.is_invalid_cost(),
            "link latency must be a finite non-negative time"
        );
        LinkSpec { bandwidth, latency }
    }

    /// Sustained bandwidth.
    #[must_use]
    pub fn bandwidth(&self) -> BytesPerSec {
        self.bandwidth
    }

    /// Per-message latency.
    #[must_use]
    pub fn latency(&self) -> MicroSecs {
        self.latency
    }

    /// Time to move `bytes` over this link once.
    #[must_use]
    pub fn transfer_time(&self, bytes: Bytes) -> MicroSecs {
        self.latency + bytes / self.bandwidth
    }
}

impl fmt::Display for LinkSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} GB/s, {:.1} us",
            self.bandwidth.get() / 1e9,
            self.latency.as_micros()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_linearly_past_latency() {
        let link = LinkSpec::new(BytesPerSec::new(1e9), MicroSecs::new(1.0));
        let t1 = link.transfer_time(Bytes::new(1_000_000));
        let t2 = link.transfer_time(Bytes::new(2_000_000));
        // Another megabyte at 1 GB/s is another millisecond.
        assert!((t2 - t1 - MicroSecs::from_millis(1.0)).abs() < MicroSecs::new(1e-6));
    }

    #[test]
    fn zero_bytes_costs_latency_only() {
        let link = LinkSpec::new(BytesPerSec::new(5e9), MicroSecs::new(2.0));
        assert!(
            (link.transfer_time(Bytes::ZERO) - MicroSecs::new(2.0)).abs() < MicroSecs::new(1e-9)
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        let _ = LinkSpec::new(BytesPerSec::new(0.0), MicroSecs::ZERO);
    }
}
