//! Figure 7: end-to-end performance on cluster B (Ascend 910, 32 GB) at
//! small and large scale, with the paper's fixed parallel strategies —
//! GPT-3 at (t, p) = (8, 8), Llama 2 at (4, 8) — and global batch scaled
//! with the data-parallel size.

use adapipe::{Method, Planner};
use adapipe_bench::{cluster_b_parallel, print_table, time_cell};
use adapipe_hw::presets as hw;
use adapipe_model::{presets, TrainConfig};
use adapipe_units::MicroSecs;

fn main() {
    // (model, devices, global batch), per Table 2.
    let configs = [
        (presets::llama2_70b(), 128usize, 256usize),
        (presets::llama2_70b(), 1024, 1024),
        (presets::gpt3_175b(), 256, 256),
        (presets::gpt3_175b(), 2048, 2048),
    ];
    let methods = [
        Method::DappleFull,
        Method::DappleNone,
        Method::EvenPartitioning,
        Method::AdaPipe,
    ];

    let mut rows = Vec::new();
    for (model, devices, gbs) in configs {
        let nodes = devices / 8;
        // Cluster B runs MindSpore, which accumulates gradients in FP32
        // (§4.2 models exactly this factor).
        let planner = Planner::new(model.clone(), hw::cluster_b_with_nodes(nodes))
            .with_optimizer(adapipe_memory::OptimizerSpec::adam_fp32_grad_accum());
        let parallel = cluster_b_parallel(&model, devices);
        let train = TrainConfig::new(1, 4096, gbs).expect("valid");
        let mut times = Vec::new();
        for method in methods {
            let result = planner
                .plan(method, parallel, train)
                .map(|p| planner.evaluate(&p));
            times.push(result);
        }
        let dapple_best = times[..2]
            .iter()
            .filter_map(|r| r.as_ref().ok().filter(|e| e.fits).map(|e| e.iteration_time))
            .fold(MicroSecs::new(f64::INFINITY), MicroSecs::min);
        for (method, result) in methods.iter().zip(&times) {
            let speedup = match result {
                Ok(e) if e.fits && dapple_best.is_finite() => {
                    format!("{:.2}x", dapple_best / e.iteration_time)
                }
                _ => "-".into(),
            };
            rows.push(vec![
                format!("{} ({devices})", model.name()),
                method.to_string(),
                time_cell(result),
                speedup,
            ]);
        }
    }
    print_table(
        "Figure 7: cluster B end-to-end (seq 4096, fixed strategies)",
        &[
            "model (#devices)",
            "method",
            "iter time (s)",
            "vs best DAPPLE",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: DAPPLE-Non OOMs on the 32 GB devices; AdaPipe >= Even \
         Partitioning > DAPPLE-Full (paper: up to 1.22x / 1.18x), and the speedups \
         persist at 1024/2048 devices (weak scaling)."
    );
}
