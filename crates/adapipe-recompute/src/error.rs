use adapipe_units::Bytes;
use std::error::Error;
use std::fmt;

/// Error returned when no recomputation strategy can satisfy a stage's
/// memory budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum StrategyError {
    /// Even recomputing every non-pinned unit, the pinned intermediates
    /// alone exceed the per-micro-batch budget. This is how the OOM
    /// entries of Table 3 arise (e.g. the `(1, 32, 2)` strategy, where
    /// unsharded layer outputs are too large to pin).
    OutOfMemory {
        /// Memory required by pinned units per micro-batch.
        required: Bytes,
        /// Memory available per micro-batch.
        budget: Bytes,
    },
    /// The brute-force oracle was asked to enumerate more free units
    /// than its exponential budget allows
    /// ([`crate::exhaustive::MAX_ORACLE_FREE_UNITS`]).
    TooLargeForOracle {
        /// Sized free units in the stage.
        free_units: usize,
        /// The enumeration limit.
        limit: usize,
    },
}

impl fmt::Display for StrategyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrategyError::OutOfMemory { required, budget } => write!(
                f,
                "pinned intermediates need {required} per micro-batch \
                 but only {budget} are available"
            ),
            StrategyError::TooLargeForOracle { free_units, limit } => write!(
                f,
                "stage has {free_units} sized free units but the \
                 brute-force oracle enumerates at most {limit}"
            ),
        }
    }
}

impl Error for StrategyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_both_sides() {
        let e = StrategyError::OutOfMemory {
            required: Bytes::new(10),
            budget: Bytes::new(5),
        };
        let s = e.to_string();
        assert!(s.contains("10") && s.contains('5'));
    }
}
