//! The event-driven execution engine.

// Index-based loops here mirror the task-id bookkeeping; iterators would
// obscure the id arithmetic.
#![allow(clippy::needless_range_loop)]

use crate::error::SimError;
use crate::report::{DeviceReport, MemorySample, SimReport, TimelineEntry};
use crate::task::{Discipline, TaskGraph};
use adapipe_obs::{keys, Recorder};
use adapipe_units::{convert, Bytes, MicroSecs};
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    /// A task finished on its device.
    Complete(usize),
    /// A task's dependencies are all satisfied as of this time.
    Ready(usize),
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Executes `graph` and reports makespan, per-device bubbles and peak
/// dynamic memory, and the full timeline.
///
/// The simulation is deterministic: ties are broken by task id.
///
/// # Panics
///
/// Panics if the graph deadlocks (a fixed-order queue waits on a task
/// that can never run — e.g. a cross-device cycle through queue order).
#[must_use]
pub fn simulate(graph: &TaskGraph) -> SimReport {
    simulate_traced(graph, &Recorder::disabled())
}

/// [`simulate`], reporting engine effort to `rec`: tasks and events
/// processed (`sim.tasks`, `sim.events`), the dispatchable-set
/// high-water mark (`sim.ready_queue.peak` gauge) and per-device
/// busy/bubble seconds, all inside a `sim.run` span.
///
/// # Panics
///
/// Panics if the graph deadlocks (see [`simulate`]).
#[must_use]
pub fn simulate_traced(graph: &TaskGraph, rec: &Recorder) -> SimReport {
    match try_simulate_traced(graph, rec) {
        Ok(report) => report,
        // lint: allow(panic): the panicking entry points keep their
        // historical contract for callers that treat a deadlock as a
        // programming bug; recoverable callers use try_simulate*.
        Err(e) => panic!("{e}"),
    }
}

/// [`simulate`] returning a typed [`SimError`] instead of panicking on
/// deadlock — the entry point for fault-injected graphs, where a stuck
/// schedule is an expected outcome to detect, not a bug.
///
/// # Errors
///
/// [`SimError::Deadlock`] when some tasks can never run.
pub fn try_simulate(graph: &TaskGraph) -> Result<SimReport, SimError> {
    try_simulate_traced(graph, &Recorder::disabled())
}

/// [`try_simulate`], reporting engine effort to `rec` (see
/// [`simulate_traced`] for the metrics emitted).
///
/// # Errors
///
/// [`SimError::Deadlock`] when some tasks can never run.
pub fn try_simulate_traced(graph: &TaskGraph, rec: &Recorder) -> Result<SimReport, SimError> {
    let _span = rec
        .span_cat(keys::SPAN_SIM_RUN, "sim")
        .with_arg("schedule", &graph.name);
    let mut events: u64 = 0;
    let mut ready_peak: usize = 0;

    let n = graph.tasks.len();
    let d = graph.devices;

    // Dependency bookkeeping.
    let mut unmet: Vec<usize> = graph.tasks.iter().map(|t| t.deps.len()).collect();
    let mut ready_at: Vec<f64> = vec![0.0; n];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (id, t) in graph.tasks.iter().enumerate() {
        for &(dep, _) in &t.deps {
            dependents[dep].push(id);
        }
    }

    // Per-device state. Fixed-order queues run in (priority, id) order —
    // generators encode the schedule script position in the priority.
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); d];
    for (id, t) in graph.tasks.iter().enumerate() {
        queues[t.device].push(id);
    }
    for q in &mut queues {
        q.sort_by_key(|&id| (graph.tasks[id].priority, id));
    }
    let mut queue_ptr = vec![0usize; d];
    let mut dispatchable: Vec<BTreeSet<(u64, usize)>> = vec![BTreeSet::new(); d];
    let mut busy = vec![false; d];
    let mut busy_time = vec![0.0f64; d];
    let mut mem_cur = vec![0i64; d];
    let mut mem_peak = vec![0i64; d];

    let mut started = vec![false; n];
    let mut done = vec![false; n];
    let mut is_ready = vec![false; n];

    let mut heap: BinaryHeap<Event> = BinaryHeap::new();
    let mut seq = 0u64;
    let push = |heap: &mut BinaryHeap<Event>, seq: &mut u64, time: f64, kind: EventKind| {
        *seq += 1;
        heap.push(Event {
            time,
            seq: *seq,
            kind,
        });
    };

    let mut timeline: Vec<TimelineEntry> = Vec::with_capacity(n);
    let mut memory_timeline: Vec<MemorySample> = Vec::with_capacity(2 * n);
    let mut completed = 0usize;
    let mut makespan = 0.0f64;

    // Seed: tasks with no dependencies are ready at t = 0.
    for id in 0..n {
        if unmet[id] == 0 {
            push(&mut heap, &mut seq, 0.0, EventKind::Ready(id));
        }
    }

    // Starts `id` on its (idle) device at `now`.
    macro_rules! start_task {
        ($id:expr, $now:expr) => {{
            let id = $id;
            let now = $now;
            let t = &graph.tasks[id];
            debug_assert!(!busy[t.device]);
            busy[t.device] = true;
            started[id] = true;
            dispatchable[t.device].remove(&(t.priority, id));
            mem_cur[t.device] += convert::u64_i64_saturating(t.mem_acquire.get());
            mem_peak[t.device] = mem_peak[t.device].max(mem_cur[t.device]);
            memory_timeline.push(MemorySample {
                time: MicroSecs::new(now),
                device: t.device,
                bytes: Bytes::new(convert::i64_u64_clamped(mem_cur[t.device])),
            });
            busy_time[t.device] += t.dur.as_micros();
            let end = now + t.dur.as_micros();
            timeline.push(TimelineEntry {
                device: t.device,
                meta: t.meta,
                start: MicroSecs::new(now),
                end: MicroSecs::new(end),
            });
            push(&mut heap, &mut seq, end, EventKind::Complete(id));
        }};
    }

    // Tries to start the next task on `dev` at `now`.
    macro_rules! try_dispatch {
        ($dev:expr, $now:expr) => {{
            let dev = $dev;
            let now = $now;
            if !busy[dev] {
                match graph.discipline {
                    Discipline::FixedOrder => {
                        // Skip completed heads (shouldn't happen, but safe).
                        while queue_ptr[dev] < queues[dev].len()
                            && done[queues[dev][queue_ptr[dev]]]
                        {
                            queue_ptr[dev] += 1;
                        }
                        if queue_ptr[dev] < queues[dev].len() {
                            let head = queues[dev][queue_ptr[dev]];
                            if !started[head] && is_ready[head] && ready_at[head] <= now + 1e-15 {
                                queue_ptr[dev] += 1;
                                start_task!(head, now);
                            }
                        }
                    }
                    Discipline::GreedyPriority => {
                        if let Some(&(_prio, id)) = dispatchable[dev].iter().next() {
                            start_task!(id, now);
                        }
                    }
                }
            }
        }};
    }

    // Process events in batches sharing a timestamp: all state changes at
    // time t are applied before any dispatch decision at time t, so a
    // greedy device sees every task that became ready at t, not just the
    // first event's.
    let mut touched: Vec<usize> = Vec::new();
    while let Some(first) = heap.pop() {
        let now = first.time;
        touched.clear();
        let mut batch = vec![first];
        // lint: allow(float-eq): batching events that share the *exact*
        // timestamp is intentional — co-timed events come from identical
        // arithmetic, so bit equality is the correct grouping predicate.
        while heap.peek().is_some_and(|next| next.time == now) {
            if let Some(next) = heap.pop() {
                batch.push(next);
            }
        }
        for ev in batch {
            events += 1;
            match ev.kind {
                EventKind::Ready(id) => {
                    if started[id] {
                        continue;
                    }
                    is_ready[id] = true;
                    let t = &graph.tasks[id];
                    dispatchable[t.device].insert((t.priority, id));
                    ready_peak = ready_peak.max(dispatchable[t.device].len());
                    touched.push(t.device);
                }
                EventKind::Complete(id) => {
                    let t = &graph.tasks[id];
                    done[id] = true;
                    completed += 1;
                    busy[t.device] = false;
                    mem_cur[t.device] -= convert::u64_i64_saturating(t.mem_release.get());
                    memory_timeline.push(MemorySample {
                        time: MicroSecs::new(ev.time),
                        device: t.device,
                        bytes: Bytes::new(convert::i64_u64_clamped(mem_cur[t.device])),
                    });
                    makespan = makespan.max(ev.time);
                    touched.push(t.device);
                    // Propagate to dependents.
                    for &dep_id in &dependents[id] {
                        let edge = graph.tasks[dep_id]
                            .deps
                            .iter()
                            .find(|(p, _)| *p == id)
                            .map_or(0.0, |(_, delay)| delay.as_micros());
                        ready_at[dep_id] = ready_at[dep_id].max(ev.time + edge);
                        unmet[dep_id] -= 1;
                        if unmet[dep_id] == 0 {
                            push(
                                &mut heap,
                                &mut seq,
                                ready_at[dep_id],
                                EventKind::Ready(dep_id),
                            );
                        }
                    }
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();
        for &dev in &touched {
            try_dispatch!(dev, now);
        }
    }

    if completed != n {
        // Deadlock: name a few stuck tasks and what they wait on, which
        // turns an opaque hang into an actionable bug report.
        let mut stuck: Vec<String> = Vec::new();
        for (id, t) in graph.tasks.iter().enumerate() {
            if !done[id] && stuck.len() < 8 {
                let waiting: Vec<usize> = t
                    .deps
                    .iter()
                    .map(|&(d, _)| d)
                    .filter(|&d| !done[d])
                    .collect();
                stuck.push(format!(
                    "task {id} ({:?} mb{} s{} on dev{}) waits on {waiting:?}",
                    t.meta.kind, t.meta.micro_batch, t.meta.stage, t.device
                ));
            }
        }
        return Err(SimError::Deadlock {
            schedule: graph.name.clone(),
            completed,
            total: n,
            stuck,
        });
    }

    timeline.sort_by(|a, b| {
        a.start
            .as_micros()
            .total_cmp(&b.start.as_micros())
            .then(a.device.cmp(&b.device))
    });
    let devices = (0..d)
        .map(|dev| DeviceReport {
            busy: MicroSecs::new(busy_time[dev]),
            bubble: MicroSecs::new(makespan - busy_time[dev]),
            peak_dynamic_bytes: Bytes::new(convert::i64_u64_clamped(mem_peak[dev])),
        })
        .collect();
    memory_timeline.sort_by(|a, b| {
        a.time
            .as_micros()
            .total_cmp(&b.time.as_micros())
            .then(a.device.cmp(&b.device))
    });
    if rec.is_enabled() {
        rec.add(keys::SIM_TASKS, convert::usize_u64(n));
        rec.add(keys::SIM_EVENTS, events);
        rec.gauge_max(keys::SIM_READY_QUEUE_PEAK, convert::count_f64(ready_peak));
        for dev in 0..d {
            rec.gauge(&keys::sim_device_busy_us(dev), busy_time[dev]);
            rec.gauge(&keys::sim_device_bubble_us(dev), makespan - busy_time[dev]);
        }
    }
    Ok(SimReport {
        schedule: graph.name.clone(),
        makespan: MicroSecs::new(makespan),
        devices,
        timeline,
        memory_timeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Discipline, OpKind, TaskGraph, TaskMeta};

    fn meta(mb: usize) -> TaskMeta {
        TaskMeta {
            kind: OpKind::Forward,
            micro_batch: mb,
            stage: 0,
            replica: 0,
        }
    }

    #[test]
    fn chain_runs_sequentially_with_delays() {
        let mut g = TaskGraph::new("chain", 2, Discipline::FixedOrder);
        let a = g.push(
            0,
            MicroSecs::new(1.0),
            vec![],
            Bytes::ZERO,
            Bytes::ZERO,
            0,
            meta(0),
        );
        let b = g.push(
            1,
            MicroSecs::new(2.0),
            vec![(a, MicroSecs::new(0.5))],
            Bytes::ZERO,
            Bytes::ZERO,
            0,
            meta(0),
        );
        let _ = b;
        let r = simulate(&g);
        assert!((r.makespan - MicroSecs::new(3.5)).abs() < MicroSecs::new(1e-12));
        assert!((r.devices[1].bubble - MicroSecs::new(1.5)).abs() < MicroSecs::new(1e-12));
    }

    #[test]
    fn fixed_order_blocks_on_queue_head() {
        // Device 0 queue: [x (depends on y), z]. y runs on device 1 after
        // 2s. FixedOrder must idle device 0 until x is ready even though
        // z is runnable.
        let mut g = TaskGraph::new("block", 2, Discipline::FixedOrder);
        let y = g.push(
            1,
            MicroSecs::new(2.0),
            vec![],
            Bytes::ZERO,
            Bytes::ZERO,
            0,
            meta(0),
        );
        let _x = g.push(
            0,
            MicroSecs::new(1.0),
            vec![(y, MicroSecs::ZERO)],
            Bytes::ZERO,
            Bytes::ZERO,
            0,
            meta(1),
        );
        let _z = g.push(
            0,
            MicroSecs::new(1.0),
            vec![],
            Bytes::ZERO,
            Bytes::ZERO,
            1,
            meta(2),
        );
        let r = simulate(&g);
        assert!((r.makespan - MicroSecs::new(4.0)).abs() < MicroSecs::new(1e-12));
    }

    #[test]
    fn greedy_reorders_past_blocked_head() {
        let mut g = TaskGraph::new("greedy", 2, Discipline::GreedyPriority);
        let y = g.push(
            1,
            MicroSecs::new(2.0),
            vec![],
            Bytes::ZERO,
            Bytes::ZERO,
            0,
            meta(0),
        );
        let _x = g.push(
            0,
            MicroSecs::new(1.0),
            vec![(y, MicroSecs::ZERO)],
            Bytes::ZERO,
            Bytes::ZERO,
            0,
            meta(1),
        );
        let _z = g.push(
            0,
            MicroSecs::new(1.0),
            vec![],
            Bytes::ZERO,
            Bytes::ZERO,
            1,
            meta(2),
        );
        let r = simulate(&g);
        // z runs at t=0 on device 0; x at t=2.
        assert!((r.makespan - MicroSecs::new(3.0)).abs() < MicroSecs::new(1e-12));
    }

    #[test]
    fn memory_ledger_tracks_peak_not_end() {
        let mut g = TaskGraph::new("mem", 1, Discipline::FixedOrder);
        // Acquire 100, release 0; then acquire 50 release 150.
        let a = g.push(
            0,
            MicroSecs::new(1.0),
            vec![],
            Bytes::new(100),
            Bytes::ZERO,
            0,
            meta(0),
        );
        let _b = g.push(
            0,
            MicroSecs::new(1.0),
            vec![(a, MicroSecs::ZERO)],
            Bytes::new(50),
            Bytes::new(150),
            1,
            meta(1),
        );
        let r = simulate(&g);
        assert_eq!(r.devices[0].peak_dynamic_bytes, Bytes::new(150));
    }

    #[test]
    fn deterministic_tie_breaking() {
        let mut g = TaskGraph::new("tie", 1, Discipline::GreedyPriority);
        for i in 0..5 {
            let _ = g.push(
                0,
                MicroSecs::new(1.0),
                vec![],
                Bytes::ZERO,
                Bytes::ZERO,
                10 - i,
                meta(i as usize),
            );
        }
        let r1 = simulate(&g);
        let r2 = simulate(&g);
        assert_eq!(r1.timeline.len(), r2.timeline.len());
        for (a, b) in r1.timeline.iter().zip(&r2.timeline) {
            assert_eq!(a.meta, b.meta);
            assert!((a.start - b.start).abs() < MicroSecs::new(1e-15));
        }
        // Priorities inverted: micro-batch 4 (priority 6) runs first.
        assert_eq!(r1.timeline[0].meta.micro_batch, 4);
    }

    #[test]
    fn traced_simulation_reports_engine_effort() {
        let mut g = TaskGraph::new("traced", 2, Discipline::GreedyPriority);
        let a = g.push(
            0,
            MicroSecs::new(1.0),
            vec![],
            Bytes::ZERO,
            Bytes::ZERO,
            0,
            meta(0),
        );
        let _b = g.push(
            1,
            MicroSecs::new(2.0),
            vec![(a, MicroSecs::new(0.5))],
            Bytes::ZERO,
            Bytes::ZERO,
            0,
            meta(1),
        );
        let rec = Recorder::new();
        let traced = simulate_traced(&g, &rec);
        let plain = simulate(&g);
        assert!((traced.makespan - plain.makespan).abs() < MicroSecs::new(1e-15));
        let snap = rec.snapshot();
        assert_eq!(snap.counters["sim.tasks"], 2);
        assert!(snap.counters["sim.events"] >= 4); // 2 ready + 2 complete
        assert!(snap.gauges["sim.ready_queue.peak"] >= 1.0);
        assert!(snap.gauges.contains_key("sim.device0.busy_us"));
        assert!(snap.gauges.contains_key("sim.device1.bubble_us"));
        assert_eq!(snap.spans.iter().filter(|s| s.name == "sim.run").count(), 1);
    }

    #[test]
    fn deadlock_returns_typed_error_from_try_simulate() {
        let mut g = TaskGraph::new("cycle", 2, Discipline::GreedyPriority);
        let a = g.push(
            0,
            MicroSecs::new(1.0),
            vec![],
            Bytes::ZERO,
            Bytes::ZERO,
            0,
            meta(0),
        );
        let b = g.push(
            1,
            MicroSecs::new(1.0),
            vec![(a, MicroSecs::ZERO)],
            Bytes::ZERO,
            Bytes::ZERO,
            0,
            meta(1),
        );
        // Close the cycle: a also waits on b.
        g.add_dep(a, b, MicroSecs::ZERO);
        match try_simulate(&g) {
            Err(SimError::Deadlock {
                completed,
                total,
                schedule,
                stuck,
            }) => {
                assert_eq!((completed, total), (0, 2));
                assert_eq!(schedule, "cycle");
                assert!(!stuck.is_empty());
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "schedule deadlocked")]
    fn deadlock_still_panics_via_simulate() {
        let mut g = TaskGraph::new("cycle", 1, Discipline::GreedyPriority);
        let a = g.push(
            0,
            MicroSecs::new(1.0),
            vec![],
            Bytes::ZERO,
            Bytes::ZERO,
            0,
            meta(0),
        );
        g.add_dep(a, a, MicroSecs::ZERO);
        let _ = simulate(&g);
    }

    #[test]
    fn try_simulate_matches_simulate_on_healthy_graphs() {
        let mut g = TaskGraph::new("ok", 1, Discipline::FixedOrder);
        let a = g.push(
            0,
            MicroSecs::new(2.0),
            vec![],
            Bytes::new(7),
            Bytes::new(7),
            0,
            meta(0),
        );
        let _ = a;
        let ok = try_simulate(&g).unwrap();
        let plain = simulate(&g);
        assert_eq!(ok, plain);
    }

    #[test]
    fn busy_plus_bubble_equals_makespan() {
        let mut g = TaskGraph::new("sum", 3, Discipline::FixedOrder);
        let a = g.push(
            0,
            MicroSecs::new(1.0),
            vec![],
            Bytes::ZERO,
            Bytes::ZERO,
            0,
            meta(0),
        );
        let b = g.push(
            1,
            MicroSecs::new(2.0),
            vec![(a, MicroSecs::new(0.1))],
            Bytes::ZERO,
            Bytes::ZERO,
            0,
            meta(0),
        );
        let _c = g.push(
            2,
            MicroSecs::new(3.0),
            vec![(b, MicroSecs::new(0.1))],
            Bytes::ZERO,
            Bytes::ZERO,
            0,
            meta(0),
        );
        let r = simulate(&g);
        for dev in &r.devices {
            assert!((dev.busy + dev.bubble - r.makespan).abs() < MicroSecs::new(1e-12));
        }
    }
}
