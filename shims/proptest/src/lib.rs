//! Offline shim for `proptest`.
//!
//! A miniature property-testing harness covering exactly the surface
//! this workspace uses: the `proptest!` macro (with optional
//! `#![proptest_config(...)]`), integer/float range strategies, tuple
//! strategies, `collection::vec`, `bool::ANY`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//! - no shrinking — a failing case reports its seed, case index and
//!   generated inputs, which is enough to reproduce (generation is
//!   deterministic per test name);
//! - `proptest-regressions` files are ignored;
//! - rejection via `prop_assume!` skips the case without a retry quota.
//!
//! See `shims/README.md` for why the workspace vendors this.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::{Range, RangeInclusive};

pub use rand::Rng as _;

/// The RNG handed to strategies (a deterministic xoshiro256++).
pub type TestRng = StdRng;

/// Runner configuration (shim of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
    /// A `prop_assert!` failed with this message.
    Fail(String),
}

/// Generates values of `Self::Value` from a [`TestRng`] (shim of
/// `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

pub mod bool {
    //! Boolean strategies (shim of `proptest::bool`).

    use super::{Strategy, TestRng};

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The `proptest::bool::ANY` strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rand::Rng::gen_bool(rng, 0.5)
        }
    }
}

/// A length specification for [`collection::vec`]: either exact or a
/// half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

pub mod collection {
    //! Collection strategies (shim of `proptest::collection`).

    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from a
    /// [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector whose elements come from
    /// `element` and whose length comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rand::Rng::gen_range(
                rng,
                self.size.min..self.size.max_exclusive.max(self.size.min + 1),
            );
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Drives the generated cases of one property (used by the expansion of
/// [`proptest!`]; not part of the public proptest API).
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    seed: u64,
    name: &'static str,
    rejected: u32,
}

impl TestRunner {
    /// Creates a runner for the property named `name`. Generation is
    /// seeded from the name (FNV-1a), so each property is deterministic
    /// across runs but distinct from its siblings.
    #[must_use]
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            config,
            seed,
            name,
            rejected: 0,
        }
    }

    /// Number of cases to run.
    #[must_use]
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The RNG for case `case`.
    #[must_use]
    pub fn rng_for(&self, case: u32) -> TestRng {
        TestRng::seed_from_u64(self.seed ^ (u64::from(case) << 32 | 0x5DEE_CE66))
    }

    /// Records one case outcome; panics (failing the `#[test]`) on
    /// assertion failure, echoing the generated inputs.
    ///
    /// # Panics
    ///
    /// Panics when the outcome is [`TestCaseError::Fail`].
    pub fn record(&mut self, case: u32, outcome: Result<(), TestCaseError>, inputs: &str) {
        match outcome {
            Ok(()) => {}
            Err(TestCaseError::Reject) => self.rejected += 1,
            Err(TestCaseError::Fail(msg)) => panic!(
                "property `{}` failed at case {case}/{}:\n  {msg}\n  inputs: {inputs}",
                self.name, self.config.cases
            ),
        }
    }

    /// Finishes the run; warns (does not fail) when every case was
    /// rejected, since the property then verified nothing.
    pub fn finish(&self) {
        if self.rejected == self.config.cases && self.config.cases > 0 {
            eprintln!(
                "warning: property `{}` rejected all {} cases via prop_assume!",
                self.name, self.config.cases
            );
        }
    }
}

/// Shim of `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Shim of the `proptest!` macro: runs each contained `#[test]` function
/// over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal recursion for [`proptest!`]: expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(config, stringify!($name));
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for(case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                runner.record(case, outcome, &inputs);
            }
            runner.finish();
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Shim of `prop_assert!`: fails the current case (not the process) so
/// the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Shim of `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Shim of `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Shim of `prop_assume!`: skips the case when the precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs_generate_in_bounds(
            x in 1usize..10,
            f in 0.5f64..2.0,
            v in proptest::collection::vec(0u32..100, 2..6),
            pair in (0.1f64..1.0, 5u64..9),
            flag in proptest::bool::ANY,
        ) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&f));
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 100));
            prop_assert!((0.1..1.0).contains(&pair.0));
            prop_assert!((5..9).contains(&pair.1));
            let _ = flag;
        }

        #[test]
        fn assume_skips_cases(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn exact_vec_size_is_exact() {
        let strat = proptest::collection::vec(0u32..5, 7usize);
        let mut rng = crate::TestRng::seed_from_u64(3);
        use rand::SeedableRng as _;
        for _ in 0..20 {
            assert_eq!(crate::Strategy::generate(&strat, &mut rng).len(), 7);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails`")]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
