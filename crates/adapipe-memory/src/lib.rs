//! Per-stage memory model (§4.2 of the paper).
//!
//! The paper splits a stage's device memory into three parts:
//!
//! 1. **Static memory** — parameters, gradients and (ZeRO-1-sharded)
//!    optimizer states. Independent of recomputation.
//! 2. **Recompute buffer** — space to rematerialize the intermediates of
//!    one decoder layer during backward. Bounded by a single layer because
//!    every layer's output GEMM is pinned saved.
//! 3. **Saved intermediates** — `(p − s) · Σ_{U ∉ R} Mem(U)` under 1F1B,
//!    since stage `s` holds activations of `p − s` in-flight micro-batches.
//!
//! Subtracting (1) and (2) from the device capacity yields the budget the
//! recomputation knapsack may spend on (3).
//!
//! # Example
//!
//! ```
//! use adapipe_hw::presets as hw;
//! use adapipe_memory::{MemoryModel, OptimizerSpec};
//! use adapipe_model::{presets, LayerRange, LayerSeq, ParallelConfig, TrainConfig};
//! use adapipe_profiler::Profiler;
//! use adapipe_units::Bytes;
//!
//! let model = presets::gpt3_175b();
//! let parallel = ParallelConfig::new(8, 8, 1)?;
//! let train = TrainConfig::new(1, 4096, 128)?;
//! let table = Profiler::new(hw::cluster_a()).profile(&model, &parallel, &train);
//! let seq = LayerSeq::for_model(&model);
//!
//! let mem = MemoryModel::new(model.clone(), parallel, OptimizerSpec::adam_fp32());
//! let range = LayerRange::new(0, 24);
//! let stage0 = mem.stage_breakdown(&table, &seq, range, 0, table.saved_bytes_pinned(range));
//! assert!(stage0.static_bytes > Bytes::ZERO);
//! # Ok::<(), adapipe_model::ConfigError>(())
//! ```

#![forbid(unsafe_code)]

mod model;
mod optimizer;

pub use model::{f1b_live_microbatches, MemoryModel, StageMemory};
pub use optimizer::OptimizerSpec;
