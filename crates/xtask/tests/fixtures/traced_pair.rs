pub fn solve_traced(x: usize, rec: &Recorder) -> f64 {
    let _ = (x, rec);
    0.0
}
