//! Stage-cost providers: map `(stage, layer window)` to optimized
//! forward/backward times by running the recomputation knapsack.
//!
//! [`KnapsackCostProvider`] is shareable concurrent state (`Sync`):
//! the §5.3 isomorphism cache sits behind a `Mutex` and the hit/miss
//! counters are atomics, so leaf evaluations can fan out over an
//! [`adapipe_exec::ExecPool`] (see [`KnapsackCostProvider::prefill`])
//! while Algorithm 1 itself stays serial — which is what keeps plans
//! byte-identical at any thread count.

use crate::cost::StageTimes;
use crate::subcache::{self, SubproblemCache};
use adapipe_exec::cache::Digest;
use adapipe_exec::{CacheStats, ExecError, ExecPool};
use adapipe_memory::MemoryModel;
use adapipe_model::{LayerKind, LayerRange, LayerSeq};
use adapipe_obs::{keys, Recorder};
use adapipe_profiler::ProfileTable;
use adapipe_recompute::{
    optimize_exhaustive, optimize_traced, KnapsackConfig, OptimizedStage, StrategyError,
};
use adapipe_units::{convert, Bytes};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// Source of the `f[s,i,j]` / `b[s,i,j]` arrays consumed by Algorithm 1.
///
/// Returning `None` marks the assignment infeasible (the stage cannot fit
/// even under full recomputation), which Algorithm 1 propagates into OOM
/// verdicts for whole configurations.
pub trait StageCostProvider {
    /// Optimized forward/backward times for assigning the layers of
    /// `range` to pipeline stage `stage`, or `None` if infeasible.
    fn stage_times(&self, stage: usize, range: LayerRange) -> Option<StageTimes>;
}

/// Isomorphism-class key (§5.3): within a homogeneous transformer, two
/// layer windows with equal length, equal first-layer kind and the same
/// "reaches the final layer" flag contain identical layer sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct IsoKey {
    stage: usize,
    first_kind: LayerKind,
    len: usize,
    ends_last: bool,
}

/// The production provider: budgets each `(stage, window)` with the
/// memory model and optimizes it with the recomputation knapsack, caching
/// by isomorphism class — and, when a [`SubproblemCache`] is attached,
/// consulting the process-global content-addressed leaf cache so
/// isomorphic windows of *other* solves and requests are reused too.
#[derive(Debug)]
pub struct KnapsackCostProvider<'a> {
    seq: &'a LayerSeq,
    table: &'a ProfileTable,
    mem: &'a MemoryModel,
    capacity: Bytes,
    iso_cache: bool,
    knapsack: KnapsackConfig,
    rec: Recorder,
    subcache: Option<&'a SubproblemCache>,
    /// Per-layer content digests, built once on first subcache lookup:
    /// window keys then hash `O(len)` digest bytes instead of
    /// re-serializing every unit profile, which would cost more than
    /// the microsecond-scale knapsack solve the cache skips.
    layer_digests: OnceLock<Vec<Digest>>,
    cache: Mutex<HashMap<IsoKey, Option<StageTimes>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<'a> KnapsackCostProvider<'a> {
    /// Creates a provider for stages drawn from `seq`, profiled in
    /// `table`, budgeted by `mem` against a per-device `capacity`.
    #[must_use]
    pub fn new(
        seq: &'a LayerSeq,
        table: &'a ProfileTable,
        mem: &'a MemoryModel,
        capacity: Bytes,
    ) -> Self {
        KnapsackCostProvider {
            seq,
            table,
            mem,
            capacity,
            iso_cache: true,
            knapsack: KnapsackConfig::default(),
            rec: Recorder::disabled(),
            subcache: None,
            layer_digests: OnceLock::new(),
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Enables or disables the §5.3 isomorphism cache (disable only for
    /// the ablation benchmark; results are identical either way).
    #[must_use]
    pub fn with_isomorphism_cache(mut self, enabled: bool) -> Self {
        self.iso_cache = enabled;
        self
    }

    /// Overrides the knapsack tuning (cell cap, GCD rescaling).
    #[must_use]
    pub fn with_knapsack_config(mut self, knapsack: KnapsackConfig) -> Self {
        self.knapsack = knapsack;
        self
    }

    /// Attaches a content-addressed subproblem cache consulted (and
    /// filled) by every leaf evaluation. Pass
    /// [`subcache::global()`](crate::subcache::global) to share leaves
    /// process-wide; results are byte-identical either way because a
    /// cached leaf replays exactly what the knapsack would compute.
    #[must_use]
    pub fn with_subproblem_cache(mut self, cache: &'a SubproblemCache) -> Self {
        self.subcache = Some(cache);
        self
    }

    /// Attaches an observability recorder. The provider reports
    /// `partition.iso_cache.{hits,misses}`, `partition.leaf_evals`,
    /// `subcache.{hits,misses}` (when a subproblem cache is attached)
    /// and per-leaf timing (`partition.leaf.us`), and forwards the
    /// recorder into the recomputation knapsack it runs per leaf.
    #[must_use]
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.rec = rec;
        self
    }

    /// Isomorphism-cache hits/misses accumulated so far.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// The device capacity the provider budgets against.
    #[must_use]
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Runs the full knapsack for one concrete stage assignment,
    /// returning the chosen strategy (used to materialize the final plan
    /// after Algorithm 1 picks the boundaries).
    ///
    /// # Errors
    ///
    /// Returns [`StrategyError::OutOfMemory`] when the stage cannot fit
    /// even under full recomputation.
    pub fn optimize_stage(
        &self,
        stage: usize,
        range: LayerRange,
    ) -> Result<OptimizedStage, StrategyError> {
        let budget = self
            .mem
            .activation_budget(self.table, self.seq, range, stage, self.capacity)
            .ok_or(StrategyError::OutOfMemory {
                required: Bytes::new(u64::MAX),
                budget: Bytes::ZERO,
            })?;
        let units = self.table.units_in(range);
        let keyed = self.subcache.and_then(|sc| {
            let digests = self
                .layer_digests
                .get_or_init(|| {
                    (0..self.table.num_layers())
                        .map(|l| subcache::layer_digest(self.table.layer_units(l)))
                        .collect()
                })
                .get(range.first..=range.last)?;
            Some((sc, subcache::leaf_key(digests, budget, self.knapsack)))
        });
        let Some((sc, key)) = keyed else {
            return optimize_traced(&units, budget, self.knapsack, &self.rec);
        };
        if let Some(outcome) = sc.lookup(&key) {
            self.rec.incr(keys::SUBCACHE_HITS);
            return subcache::rebuild(&units, budget, &outcome);
        }
        self.rec.incr(keys::SUBCACHE_MISSES);
        let result = optimize_traced(&units, budget, self.knapsack, &self.rec);
        if let Some(outcome) = subcache::outcome_of(&result) {
            sc.store(key, outcome);
        }
        result
    }

    /// Evaluates, in parallel over `pool`, one representative leaf for
    /// every isomorphism class among `windows` that is not cached yet,
    /// so a following serial [`algorithm1::solve`](crate::algorithm1)
    /// run answers every query from the cache. Returns how many leaves
    /// were computed. Pair with
    /// [`algorithm1::reachable_windows`](crate::algorithm1::reachable_windows);
    /// over-approximation only costs extra cached leaves, never a
    /// different plan — the DP itself stays serial and the leaves are
    /// pure, which is the byte-identity argument (docs/parallel.md).
    ///
    /// No-op (0 computed) when the isomorphism cache is disabled or the
    /// pool has a single worker; each computed representative counts as
    /// one isomorphism-cache miss, exactly as it would when the DP
    /// discovered it serially.
    ///
    /// # Errors
    ///
    /// Propagates [`ExecError`] if a pooled leaf evaluation panicked.
    pub fn prefill(
        &self,
        pool: &ExecPool,
        windows: &[(usize, LayerRange)],
    ) -> Result<usize, ExecError> {
        if !self.iso_cache || pool.threads() < 2 {
            return Ok(0);
        }
        let mut reps: Vec<(IsoKey, usize, LayerRange)> = Vec::new();
        {
            let cache = self.lock_cache();
            let mut seen: HashSet<IsoKey> = HashSet::new();
            for &(stage, range) in windows {
                let key = self.iso_key(stage, range);
                if cache.contains_key(&key) || !seen.insert(key) {
                    continue;
                }
                reps.push((key, stage, range));
            }
        }
        if reps.len() < 2 {
            return Ok(0);
        }
        let computed = pool.map(&reps, |&(_, stage, range)| self.compute(stage, range))?;
        self.misses
            .fetch_add(convert::usize_u64(reps.len()), Ordering::Relaxed);
        self.rec
            .add(keys::ISO_CACHE_MISSES, convert::usize_u64(reps.len()));
        let mut cache = self.lock_cache();
        for ((key, _, _), times) in reps.iter().zip(computed) {
            cache.insert(*key, times);
        }
        Ok(reps.len())
    }

    fn compute(&self, stage: usize, range: LayerRange) -> Option<StageTimes> {
        self.rec.incr(keys::PARTITION_LEAF_EVALS);
        let started = self.rec.is_enabled().then(std::time::Instant::now);
        let opt = self.optimize_stage(stage, range).ok();
        if let Some(t0) = started {
            self.rec
                .observe(keys::PARTITION_LEAF_US, t0.elapsed().as_secs_f64() * 1e6);
        }
        let opt = opt?;
        Some(StageTimes {
            f: opt.cost.time_f,
            b: opt.cost.time_b,
        })
    }

    fn iso_key(&self, stage: usize, range: LayerRange) -> IsoKey {
        IsoKey {
            stage,
            first_kind: self.seq.layer(range.first).kind,
            len: range.len(),
            ends_last: range.last == self.seq.len() - 1,
        }
    }

    /// Locks the iso cache, treating poisoning as recovered: leaf
    /// evaluations contain their panics inside the exec pool, so the
    /// map behind a poisoned lock is still consistent.
    fn lock_cache(&self) -> MutexGuard<'_, HashMap<IsoKey, Option<StageTimes>>> {
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl StageCostProvider for KnapsackCostProvider<'_> {
    fn stage_times(&self, stage: usize, range: LayerRange) -> Option<StageTimes> {
        if !self.iso_cache {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.rec.incr(adapipe_obs::keys::ISO_CACHE_MISSES);
            return self.compute(stage, range);
        }
        let key = self.iso_key(stage, range);
        if let Some(cached) = self.lock_cache().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.rec.incr(adapipe_obs::keys::ISO_CACHE_HITS);
            return *cached;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.rec.incr(adapipe_obs::keys::ISO_CACHE_MISSES);
        let result = self.compute(stage, range);
        self.lock_cache().insert(key, result);
        result
    }
}

/// The verification twin of [`KnapsackCostProvider`]: budgets each
/// `(stage, window)` through the *same* memory model, but optimizes the
/// stage with the brute-force subset enumeration of
/// [`adapipe_recompute::optimize_exhaustive`] instead of the knapsack DP.
///
/// Deliberately dumb: no isomorphism cache (only exact-key memoization,
/// which is trivially sound), no knapsack tuning, no recorder plumbing —
/// the fewer moving parts the oracle shares with the production path, the
/// more a disagreement means. Usable only on instances small enough for
/// `optimize_exhaustive`; windows whose stages exceed its enumeration
/// limit are reported infeasible, so keep oracle instances within
/// [`adapipe_recompute::exhaustive::MAX_ORACLE_FREE_UNITS`] free units
/// per stage.
#[derive(Debug)]
pub struct OracleCostProvider<'a> {
    seq: &'a LayerSeq,
    table: &'a ProfileTable,
    mem: &'a MemoryModel,
    capacity: Bytes,
    cache: RefCell<HashMap<(usize, LayerRange), Option<StageTimes>>>,
}

impl<'a> OracleCostProvider<'a> {
    /// Creates an oracle provider over the same inputs as
    /// [`KnapsackCostProvider::new`].
    #[must_use]
    pub fn new(
        seq: &'a LayerSeq,
        table: &'a ProfileTable,
        mem: &'a MemoryModel,
        capacity: Bytes,
    ) -> Self {
        OracleCostProvider {
            seq,
            table,
            mem,
            capacity,
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// The device capacity the oracle budgets against.
    #[must_use]
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Brute-force-optimizes one concrete stage assignment.
    ///
    /// # Errors
    ///
    /// [`StrategyError::OutOfMemory`] when the stage cannot fit even
    /// under full recomputation; [`StrategyError::TooLargeForOracle`]
    /// when the window has too many free units to enumerate.
    pub fn optimize_stage(
        &self,
        stage: usize,
        range: LayerRange,
    ) -> Result<OptimizedStage, StrategyError> {
        let budget = self
            .mem
            .activation_budget(self.table, self.seq, range, stage, self.capacity)
            .ok_or(StrategyError::OutOfMemory {
                required: Bytes::new(u64::MAX),
                budget: Bytes::ZERO,
            })?;
        let units = self.table.units_in(range);
        optimize_exhaustive(&units, budget)
    }
}

impl StageCostProvider for OracleCostProvider<'_> {
    fn stage_times(&self, stage: usize, range: LayerRange) -> Option<StageTimes> {
        if let Some(cached) = self.cache.borrow().get(&(stage, range)) {
            return *cached;
        }
        let result = self
            .optimize_stage(stage, range)
            .ok()
            .map(|opt| StageTimes {
                f: opt.cost.time_f,
                b: opt.cost.time_b,
            });
        self.cache.borrow_mut().insert((stage, range), result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::f1b_iteration_time;
    use adapipe_hw::presets as hw;
    use adapipe_memory::OptimizerSpec;
    use adapipe_model::{presets, ModelSpec, ParallelConfig, TrainConfig};
    use adapipe_profiler::Profiler;
    use adapipe_units::MicroSecs;

    struct Fixture {
        seq: LayerSeq,
        table: ProfileTable,
        mem: MemoryModel,
    }

    fn fixture(model: ModelSpec, parallel: ParallelConfig, seq_len: usize) -> Fixture {
        let train = TrainConfig::new(1, seq_len, 16 * parallel.data()).unwrap();
        let table = Profiler::new(hw::cluster_a()).profile(&model, &parallel, &train);
        let seq = LayerSeq::for_model(&model);
        let mem = MemoryModel::new(model, parallel, OptimizerSpec::adam_fp32());
        Fixture { seq, table, mem }
    }

    #[test]
    fn iso_cache_changes_nothing_but_hit_counts() {
        let fx = fixture(
            presets::gpt2_small(),
            ParallelConfig::new(2, 4, 1).unwrap(),
            1024,
        );
        let cached = KnapsackCostProvider::new(&fx.seq, &fx.table, &fx.mem, Bytes::from_gib(80));
        let raw = KnapsackCostProvider::new(&fx.seq, &fx.table, &fx.mem, Bytes::from_gib(80))
            .with_isomorphism_cache(false);
        for stage in 0..4 {
            for first in [0usize, 1, 5, 10] {
                for last in [12usize, 20, 25] {
                    let r = LayerRange::new(first, last);
                    assert_eq!(cached.stage_times(stage, r), raw.stage_times(stage, r));
                    // Querying twice hits the cache.
                    let h0 = cached.cache_stats().hits;
                    let _ = cached.stage_times(stage, r);
                    let h1 = cached.cache_stats().hits;
                    assert_eq!(h1, h0 + 1);
                }
            }
        }
        assert!(cached.cache_stats().hits > 0);
        assert_eq!(raw.cache_stats().hits, 0);
    }

    #[test]
    fn isomorphic_windows_share_cost() {
        let fx = fixture(
            presets::gpt2_small(),
            ParallelConfig::new(2, 4, 1).unwrap(),
            1024,
        );
        let p = KnapsackCostProvider::new(&fx.seq, &fx.table, &fx.mem, Bytes::from_gib(80));
        // Layers 3..=6 and 5..=8 both start with an attention layer and
        // span four layers.
        let a = p.stage_times(1, LayerRange::new(3, 6));
        let b = p.stage_times(1, LayerRange::new(5, 8));
        assert_eq!(a, b);
    }

    #[test]
    fn earlier_stage_has_slower_backward() {
        // Same window, earlier stage -> tighter budget -> more
        // recomputation -> larger b; f never changes.
        let fx = fixture(
            presets::gpt3_175b(),
            ParallelConfig::new(8, 8, 1).unwrap(),
            16384,
        );
        let p = KnapsackCostProvider::new(&fx.seq, &fx.table, &fx.mem, Bytes::from_gib(80));
        let range = fx.seq.even_partition(8)[4];
        let s0 = p.stage_times(0, range).unwrap();
        let s7 = p.stage_times(7, range).unwrap();
        assert!((s0.f - s7.f).abs() < MicroSecs::new(1e-6));
        assert!(s0.b >= s7.b);
    }

    #[test]
    fn infeasible_window_is_none() {
        let fx = fixture(
            presets::gpt3_175b(),
            ParallelConfig::new(8, 8, 1).unwrap(),
            16384,
        );
        let p = KnapsackCostProvider::new(&fx.seq, &fx.table, &fx.mem, Bytes::from_gib(4));
        let whole = LayerRange::new(0, fx.seq.len() - 1);
        assert!(p.stage_times(0, whole).is_none());
    }

    #[test]
    fn oracle_provider_agrees_with_knapsack_provider() {
        // tiny_gpt windows are small enough to enumerate exhaustively;
        // the GCD-rescaled knapsack is exact, so the two providers must
        // report identical stage times for every feasible window.
        let fx = fixture(
            presets::tiny_gpt(),
            ParallelConfig::new(1, 2, 1).unwrap(),
            128,
        );
        let l = fx.seq.len();
        let dp = KnapsackCostProvider::new(&fx.seq, &fx.table, &fx.mem, Bytes::from_gib(2));
        let oracle = OracleCostProvider::new(&fx.seq, &fx.table, &fx.mem, Bytes::from_gib(2));
        let mut feasible = 0usize;
        for stage in 0..2 {
            for first in 0..l {
                for last in first..l {
                    let r = LayerRange::new(first, last);
                    let free = fx
                        .table
                        .units_in(r)
                        .iter()
                        .filter(|u| !u.is_pinned() && u.mem_saved > Bytes::ZERO)
                        .count();
                    if free > adapipe_recompute::exhaustive::MAX_ORACLE_FREE_UNITS {
                        continue;
                    }
                    let (a, b) = (dp.stage_times(stage, r), oracle.stage_times(stage, r));
                    match (a, b) {
                        (Some(a), Some(b)) => {
                            feasible += 1;
                            assert!(
                                (a.f - b.f).abs() < MicroSecs::new(1e-9)
                                    && (a.b - b.b).abs() < MicroSecs::new(1e-6),
                                "stage {stage} {r:?}: dp {a:?} vs oracle {b:?}"
                            );
                        }
                        (None, None) => {}
                        _ => panic!(
                            "feasibility disagreement at stage {stage} {r:?}: {a:?} vs {b:?}"
                        ),
                    }
                }
            }
        }
        assert!(feasible > 0, "fixture produced no feasible windows");
    }

    #[test]
    fn even_partition_end_to_end_cost_is_finite() {
        let fx = fixture(
            presets::gpt2_small(),
            ParallelConfig::new(2, 4, 1).unwrap(),
            1024,
        );
        let p = KnapsackCostProvider::new(&fx.seq, &fx.table, &fx.mem, Bytes::from_gib(80));
        let parts = fx.seq.even_partition(4);
        let times: Vec<StageTimes> = parts
            .iter()
            .enumerate()
            .map(|(s, r)| p.stage_times(s, *r).unwrap())
            .collect();
        let bd = f1b_iteration_time(&times, 16);
        assert!(!bd.total().is_invalid_cost() && bd.total() > MicroSecs::ZERO);
    }

    #[test]
    fn subproblem_cache_does_not_change_stage_times() {
        let fx = fixture(
            presets::gpt2_small(),
            ParallelConfig::new(2, 4, 1).unwrap(),
            1024,
        );
        let shared = SubproblemCache::new(1024);
        let plain = KnapsackCostProvider::new(&fx.seq, &fx.table, &fx.mem, Bytes::from_gib(80));
        let warm = KnapsackCostProvider::new(&fx.seq, &fx.table, &fx.mem, Bytes::from_gib(80))
            .with_subproblem_cache(&shared);
        // A *second* provider on the same cache answers from shared
        // leaves (the cross-request warm-start path).
        let reuse = KnapsackCostProvider::new(&fx.seq, &fx.table, &fx.mem, Bytes::from_gib(80))
            .with_subproblem_cache(&shared);
        for stage in 0..4 {
            for first in [0usize, 2, 9] {
                for last in [11usize, 19, 25] {
                    let r = LayerRange::new(first, last);
                    let expect = plain.stage_times(stage, r);
                    assert_eq!(warm.stage_times(stage, r), expect);
                    assert_eq!(reuse.stage_times(stage, r), expect);
                }
            }
        }
        let stats = shared.stats();
        assert!(stats.hits > 0, "second provider must hit shared leaves");
        assert!(stats.misses > 0);
    }

    #[test]
    fn subproblem_cache_round_trips_optimize_stage() {
        let fx = fixture(
            presets::gpt2_small(),
            ParallelConfig::new(2, 4, 1).unwrap(),
            1024,
        );
        let shared = SubproblemCache::new(256);
        let plain = KnapsackCostProvider::new(&fx.seq, &fx.table, &fx.mem, Bytes::from_gib(80));
        let warm = KnapsackCostProvider::new(&fx.seq, &fx.table, &fx.mem, Bytes::from_gib(80))
            .with_subproblem_cache(&shared);
        let r = LayerRange::new(3, 12);
        // First call fills the cache, second replays it; both must be
        // byte-identical to the uncached solve.
        let expect = plain.optimize_stage(1, r).unwrap();
        assert_eq!(warm.optimize_stage(1, r).unwrap(), expect);
        assert_eq!(warm.optimize_stage(1, r).unwrap(), expect);
        assert_eq!(shared.stats().hits, 1);
    }

    #[test]
    fn prefill_answers_every_solve_query_from_cache() {
        let fx = fixture(
            presets::gpt2_small(),
            ParallelConfig::new(2, 4, 1).unwrap(),
            1024,
        );
        let pool = ExecPool::new(4);
        let l = fx.seq.len();
        let (p, n) = (4usize, 16usize);
        let serial = KnapsackCostProvider::new(&fx.seq, &fx.table, &fx.mem, Bytes::from_gib(80));
        let pooled = KnapsackCostProvider::new(&fx.seq, &fx.table, &fx.mem, Bytes::from_gib(80));
        let windows = crate::algorithm1::reachable_windows(l, p);
        let computed = pooled.prefill(&pool, &windows).unwrap();
        assert!(computed > 0, "prefill must evaluate representatives");
        let a = crate::algorithm1::solve(&serial, l, p, n);
        let b = crate::algorithm1::solve(&pooled, l, p, n);
        assert_eq!(a, b, "prefilled solve must be identical");
        // Every query the DP made after prefill was a cache hit.
        let stats = pooled.cache_stats();
        assert_eq!(stats.misses, convert::usize_u64(computed));
        assert!(stats.hits > 0);
    }

    #[test]
    fn prefill_is_a_noop_on_single_worker_pools() {
        let fx = fixture(
            presets::gpt2_small(),
            ParallelConfig::new(2, 4, 1).unwrap(),
            1024,
        );
        let provider = KnapsackCostProvider::new(&fx.seq, &fx.table, &fx.mem, Bytes::from_gib(80));
        let windows = crate::algorithm1::reachable_windows(fx.seq.len(), 4);
        let computed = provider.prefill(&ExecPool::new(1), &windows).unwrap();
        assert_eq!(computed, 0);
        assert_eq!(provider.cache_stats(), CacheStats::ZERO);
    }
}
