//! # adapipe-check: static verification of AdaPipe plans and schedules
//!
//! AdaPipe's search engine promises *feasible* strategies: every stage
//! fits its memory budget under the chosen save/recompute set
//! (Eq. (1)-(2), §4.3), the partition is a contiguous cover of all `L`
//! layers (§5), the 1F1B task DAG is acyclic and executable without
//! per-device overlap, and the analytic iteration time
//! `T = W₀ + E₀ + (n − p)·M₀` (Eq. (3), §5.1) matches its recurrences.
//! Until now nothing checked a produced plan except running the
//! simulator end to end; this crate checks each invariant *statically*,
//! so a plan artifact can be audited without executing it.
//!
//! The crate is deliberately low-level: it checks slices of
//! [`LayerRange`](adapipe_model::LayerRange)s, per-stage costs against
//! unit profiles, memory breakdowns against expected breakdowns, stored
//! Eq. (3) results against the recurrences, and
//! [`TaskGraph`](adapipe_sim::TaskGraph)s for cycles and fixed-order
//! deadlocks. The `adapipe` crate's `verify` module assembles these into
//! a whole-plan verifier (`adapipe verify` on the CLI); the planner runs
//! the same checks behind `debug_assertions` at its materialize and
//! evaluate phase boundaries.
//!
//! Findings are [`Diagnostic`]s collected in a [`CheckReport`];
//! memory overflow can be reported at [`Severity::Warning`] because the
//! paper's evaluation keeps OOM baselines *reportable* (Table 3 shows
//! them as OOM bars) while adaptive plans must treat overflow as an
//! error — they searched under that very constraint.

#![forbid(unsafe_code)]

pub mod certificate;
pub mod diag;
pub mod graph;
pub mod invariants;

pub use certificate::{
    check_certificate, Certificate, CertificateParseError, CERTIFICATE_HEADER, DEFAULT_EPSILON,
};
pub use diag::{CheckCode, CheckReport, Diagnostic, Severity};
pub use graph::check_task_graph;
pub use invariants::{
    approx_eq, check_breakdown, check_capacity, check_memory_accounting, check_partition,
    check_stage_cost, check_strategy, DEFAULT_TOLERANCE,
};
