//! Flight recorder: a fixed-capacity, overwrite-oldest ring buffer of
//! structured events.
//!
//! Metrics answer "how often"; the flight recorder answers "what just
//! happened" — when a daemon returns 503, misses a deadline, or a chaos
//! run fails, the last N noteworthy events are dumped to an artifact so
//! the incident can be reconstructed after the fact. Like
//! [`crate::Recorder`], a disabled handle costs one branch per call and
//! the enabled path takes a single mutex; capacity is fixed at
//! construction, so memory is bounded no matter how long the daemon
//! runs (`dropped` counts what the ring overwrote).
//!
//! Events carry a monotonic timestamp relative to the recorder's epoch,
//! a `kind` (use the `flight.*` constants in [`crate::keys`]), a
//! free-form detail string, and an optional request trace id linking
//! the event to a `GET /v1/trace/{id}` timeline. Dumps serialize as the
//! `adapipe-flight/v1` JSON schema via [`flight_json`].

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::report::{escape_json, json_num};

/// Default ring capacity when none is configured.
pub const DEFAULT_CAPACITY: usize = 256;

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Microseconds since the recorder's construction.
    pub t_us: u64,
    /// Event kind — one of the `flight.*` constants in [`crate::keys`].
    pub kind: String,
    /// Human-readable detail (free-form, single line by convention).
    pub detail: String,
    /// Request trace id, when the event happened inside a traced request.
    pub trace_id: Option<String>,
}

/// A point-in-time copy of the ring.
#[derive(Debug, Clone)]
pub struct FlightSnapshot {
    /// Ring capacity (the maximum number of retained events).
    pub capacity: usize,
    /// Events overwritten because the ring was full.
    pub dropped: u64,
    /// Retained events, oldest first.
    pub events: Vec<FlightEvent>,
}

#[derive(Debug)]
struct Ring {
    dropped: u64,
    events: VecDeque<FlightEvent>,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    capacity: usize,
    ring: Mutex<Ring>,
}

/// Cheaply cloneable handle; clones share the same ring.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<Inner>>,
}

impl FlightRecorder {
    /// An enabled recorder retaining at most `capacity` events
    /// (`capacity` 0 is treated as 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                capacity,
                ring: Mutex::new(Ring {
                    dropped: 0,
                    events: VecDeque::with_capacity(capacity),
                }),
            })),
        }
    }

    /// A disabled recorder: every call is a single branch, records
    /// nothing, allocates nothing.
    #[must_use]
    pub fn disabled() -> Self {
        FlightRecorder { inner: None }
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records an event (no-op when disabled).
    pub fn note(&self, kind: &str, detail: impl Into<String>) {
        self.push(kind, detail.into(), None);
    }

    /// Records an event attributed to a request trace (no-op when
    /// disabled).
    // lint: allow(traced-pair): the extra param is a trace id, not a Recorder — `note` is the untraced twin
    pub fn note_traced(&self, kind: &str, detail: impl Into<String>, trace_id: &str) {
        self.push(kind, detail.into(), Some(trace_id.to_string()));
    }

    fn push(&self, kind: &str, detail: String, trace_id: Option<String>) {
        let Some(inner) = &self.inner else { return };
        let t_us = u64::try_from(
            Instant::now()
                .saturating_duration_since(inner.epoch)
                .as_micros(),
        )
        .unwrap_or(u64::MAX);
        let mut ring = inner.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.events.len() == inner.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(FlightEvent {
            t_us,
            kind: kind.to_string(),
            detail,
            trace_id,
        });
    }

    /// Copies the current ring contents, oldest event first. A disabled
    /// recorder snapshots as empty with capacity 0.
    #[must_use]
    pub fn snapshot(&self) -> FlightSnapshot {
        let Some(inner) = &self.inner else {
            return FlightSnapshot {
                capacity: 0,
                dropped: 0,
                events: Vec::new(),
            };
        };
        let ring = inner.ring.lock().unwrap_or_else(|e| e.into_inner());
        FlightSnapshot {
            capacity: inner.capacity,
            dropped: ring.dropped,
            events: ring.events.iter().cloned().collect(),
        }
    }
}

/// Renders a snapshot as the `adapipe-flight/v1` dump schema:
///
/// ```json
/// {
///   "schema": "adapipe-flight/v1",
///   "reason": "serve.backpressure",
///   "meta": {"component": "adapipe-serve"},
///   "capacity": 256,
///   "dropped": 0,
///   "events": [
///     {"t_us": 1234, "kind": "flight.request.rejected",
///      "detail": "queue full (depth 8)", "trace_id": "ab12..-7"}
///   ]
/// }
/// ```
///
/// `reason` names the trigger (one of the `flight.*` kind constants or
/// `manual` for `POST /admin/dump`).
#[must_use]
pub fn flight_json(snap: &FlightSnapshot, reason: &str, meta: &[(&str, &str)]) -> String {
    // lint: allow-file(swallowed-result): fmt::Write into a String cannot fail
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"adapipe-flight/v1\",");
    let _ = writeln!(out, "  \"reason\": \"{}\",", escape_json(reason));
    out.push_str("  \"meta\": {");
    for (i, (k, v)) in meta.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": \"{}\"", escape_json(k), escape_json(v));
    }
    out.push_str("},\n");
    let _ = writeln!(out, "  \"capacity\": {},", json_num(snap.capacity as f64));
    let _ = writeln!(out, "  \"dropped\": {},", snap.dropped);
    out.push_str("  \"events\": [\n");
    for (i, ev) in snap.events.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"t_us\": {}, \"kind\": \"{}\", \"detail\": \"{}\"",
            ev.t_us,
            escape_json(&ev.kind),
            escape_json(&ev.detail)
        );
        if let Some(id) = &ev.trace_id {
            let _ = write!(out, ", \"trace_id\": \"{}\"", escape_json(id));
        }
        let _ = writeln!(
            out,
            "}}{}",
            if i + 1 < snap.events.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let fr = FlightRecorder::new(3);
        for i in 0..5 {
            fr.note("flight.test", format!("event {i}"));
        }
        let snap = fr.snapshot();
        assert_eq!(snap.capacity, 3);
        assert_eq!(snap.dropped, 2);
        let details: Vec<&str> = snap.events.iter().map(|e| e.detail.as_str()).collect();
        assert_eq!(details, ["event 2", "event 3", "event 4"]);
        let mut last = 0;
        for e in &snap.events {
            assert!(e.t_us >= last, "timestamps monotone");
            last = e.t_us;
        }
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let fr = FlightRecorder::disabled();
        assert!(!fr.is_enabled());
        fr.note("flight.test", "ignored");
        fr.note_traced("flight.test", "ignored", "id");
        let snap = fr.snapshot();
        assert_eq!(snap.capacity, 0);
        assert!(snap.events.is_empty());
    }

    #[test]
    fn clones_share_the_ring() {
        let fr = FlightRecorder::new(8);
        let other = fr.clone();
        fr.note("flight.a", "one");
        other.note("flight.b", "two");
        assert_eq!(fr.snapshot().events.len(), 2);
    }

    #[test]
    fn dump_json_parses_and_round_trips_fields() {
        let fr = FlightRecorder::new(4);
        fr.note("flight.request.rejected", "queue full (depth 2)");
        fr.note_traced("flight.deadline.missed", "1500us over", "ab12-7");
        let text = flight_json(&fr.snapshot(), "manual", &[("component", "test")]);
        let v = parse(&text).expect("dump must parse");
        assert_eq!(
            v.get("schema").and_then(Value::as_str),
            Some("adapipe-flight/v1")
        );
        assert_eq!(v.get("reason").and_then(Value::as_str), Some("manual"));
        let Some(Value::Array(events)) = v.get("events") else {
            panic!("events array");
        };
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[1].get("trace_id").and_then(Value::as_str),
            Some("ab12-7")
        );
        assert!(events[0].get("trace_id").is_none());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let fr = FlightRecorder::new(0);
        fr.note("flight.test", "a");
        fr.note("flight.test", "b");
        let snap = fr.snapshot();
        assert_eq!(snap.capacity, 1);
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].detail, "b");
    }
}
