//! A compliant library crate root.
#![forbid(unsafe_code)]

pub fn f() {}
