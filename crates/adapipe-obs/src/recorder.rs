//! The metrics registry and span machinery.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One completed span: a named, timed section of work.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Dotted span name, e.g. `plan.partition`.
    pub name: String,
    /// Coarse category (by convention the emitting crate), e.g.
    /// `planner`.
    pub cat: String,
    /// Start offset from the recorder's creation, in microseconds.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Logical thread index (0 for the recorder's first thread).
    pub tid: usize,
    /// Key/value annotations attached via [`SpanGuard::with_arg`].
    pub args: Vec<(String, String)>,
}

/// Summary statistics of one timing/value histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Largest observation.
    pub max: f64,
}

/// An immutable view of everything a [`Recorder`] has collected.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write (or max-write) gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms, summarized.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Completed spans in completion order.
    pub spans: Vec<SpanEvent>,
}

#[derive(Debug, Default)]
struct State {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Vec<f64>>,
    spans: Vec<SpanEvent>,
    threads: Vec<std::thread::ThreadId>,
}

impl State {
    fn tid(&mut self) -> usize {
        let id = std::thread::current().id();
        match self.threads.iter().position(|t| *t == id) {
            Some(i) => i,
            None => {
                self.threads.push(id);
                self.threads.len() - 1
            }
        }
    }
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    state: Mutex<State>,
}

/// A cheap, clonable handle onto a metrics registry.
///
/// A `Recorder` is either *enabled* (backed by a shared registry) or
/// *disabled* (a `None`; every operation is a single branch and no
/// clock is read). Instrumented code takes `&Recorder` unconditionally;
/// callers that don't care pass [`Recorder::disabled`].
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// Creates an enabled recorder with an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Recorder {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// The no-op recorder: records nothing, costs one branch per call.
    #[must_use]
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with_state<R>(&self, f: impl FnOnce(&mut State) -> R) -> Option<R> {
        self.inner.as_ref().map(|inner| {
            // Recover from a panic in another holder: metrics must not
            // cascade failures into the instrumented code.
            let mut state = inner.state.lock().unwrap_or_else(|e| e.into_inner());
            f(&mut state)
        })
    }

    /// Adds `delta` to the counter `key`.
    pub fn add(&self, key: &str, delta: u64) {
        self.with_state(|s| *s.counters.entry(key.to_string()).or_insert(0) += delta);
    }

    /// Increments the counter `key` by one.
    pub fn incr(&self, key: &str) {
        self.add(key, 1);
    }

    /// Sets the gauge `key` to `value` (last write wins).
    pub fn gauge(&self, key: &str, value: f64) {
        self.with_state(|s| {
            s.gauges.insert(key.to_string(), value);
        });
    }

    /// Raises the gauge `key` to `value` if larger (high-water marks).
    pub fn gauge_max(&self, key: &str, value: f64) {
        self.with_state(|s| {
            let g = s.gauges.entry(key.to_string()).or_insert(f64::NEG_INFINITY);
            if value > *g {
                *g = value;
            }
        });
    }

    /// Records one observation into the histogram `key`.
    pub fn observe(&self, key: &str, value: f64) {
        self.with_state(|s| s.histograms.entry(key.to_string()).or_default().push(value));
    }

    /// Opens a span named `name` with category `adapipe`; it records
    /// itself when dropped. Attach annotations with
    /// [`SpanGuard::with_arg`] or use the [`crate::span!`] macro.
    #[must_use = "the span is recorded when the guard drops; binding it to `_` ends it immediately"]
    pub fn span(&self, name: &str) -> SpanGuard {
        self.span_cat(name, "adapipe")
    }

    /// Opens a span with an explicit category (by convention the
    /// emitting crate: `planner`, `partition`, `recompute`, `sim`).
    #[must_use = "the span is recorded when the guard drops; binding it to `_` ends it immediately"]
    pub fn span_cat(&self, name: &str, cat: &str) -> SpanGuard {
        SpanGuard {
            live: self.inner.as_ref().map(|inner| LiveSpan {
                inner: Arc::clone(inner),
                name: name.to_string(),
                cat: cat.to_string(),
                start: Instant::now(),
                args: Vec::new(),
            }),
        }
    }

    /// Times `f` under a span named `name`, returning its result.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let _guard = self.span(name);
        f()
    }

    /// Current value of the counter `key` (0 if never written or the
    /// recorder is disabled).
    #[must_use]
    pub fn counter(&self, key: &str) -> u64 {
        self.with_state(|s| s.counters.get(key).copied().unwrap_or(0))
            .unwrap_or(0)
    }

    /// Current value of the gauge `key`, if any.
    #[must_use]
    pub fn gauge_value(&self, key: &str) -> Option<f64> {
        self.with_state(|s| s.gauges.get(key).copied()).flatten()
    }

    /// Snapshots everything recorded so far. Histograms are summarized
    /// (count/sum/p50/p95/max); spans come out in completion order.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        self.with_state(|s| Snapshot {
            counters: s.counters.clone(),
            gauges: s.gauges.clone(),
            histograms: s
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), summarize(v)))
                .collect(),
            spans: s.spans.clone(),
        })
        .unwrap_or_default()
    }
}

fn summarize(values: &[f64]) -> HistogramSummary {
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pct = |p: f64| -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let rank = (p * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    };
    HistogramSummary {
        count: sorted.len() as u64,
        sum: sorted.iter().sum(),
        p50: pct(0.50),
        p95: pct(0.95),
        max: sorted.last().copied().unwrap_or(0.0),
    }
}

#[derive(Debug)]
struct LiveSpan {
    inner: Arc<Inner>,
    name: String,
    cat: String,
    start: Instant,
    args: Vec<(String, String)>,
}

/// RAII guard for an open span; records a [`SpanEvent`] on drop. For a
/// disabled recorder the guard is empty and dropping it is free.
#[derive(Debug)]
#[must_use = "a span records when this guard drops; binding it to `_` drops immediately"]
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

impl SpanGuard {
    /// Attaches a key/value annotation (rendered with `Display`).
    pub fn with_arg(mut self, key: &str, value: &dyn std::fmt::Display) -> Self {
        if let Some(live) = self.live.as_mut() {
            live.args.push((key.to_string(), value.to_string()));
        }
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let end = Instant::now();
        let start_us = live
            .start
            .saturating_duration_since(live.inner.epoch)
            .as_secs_f64()
            * 1e6;
        let dur_us = end.saturating_duration_since(live.start).as_secs_f64() * 1e6;
        let mut state = live.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let tid = state.tid();
        state.spans.push(SpanEvent {
            name: live.name,
            cat: live.cat,
            start_us,
            dur_us,
            tid,
            args: live.args,
        });
    }
}

/// Opens a span on a [`Recorder`] with optional `key = value`
/// annotations:
///
/// ```
/// use adapipe_obs::{span, Recorder};
/// let rec = Recorder::new();
/// let stage = 3;
/// let _g = span!(rec, "knapsack", stage = stage, layers = 24);
/// ```
#[macro_export]
macro_rules! span {
    ($rec:expr, $name:expr) => {
        $rec.span($name)
    };
    ($rec:expr, $name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $rec.span($name)$(.with_arg(stringify!($key), &$value))+
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let rec = Recorder::new();
        rec.add("c", 2);
        rec.incr("c");
        rec.gauge("g", 1.5);
        rec.gauge("g", 2.5);
        rec.gauge_max("peak", 3.0);
        rec.gauge_max("peak", 1.0);
        for v in [1.0, 2.0, 3.0, 4.0] {
            rec.observe("h", v);
        }
        let snap = rec.snapshot();
        assert_eq!(snap.counters["c"], 3);
        assert_eq!(rec.counter("c"), 3);
        assert_eq!(snap.gauges["g"], 2.5);
        assert_eq!(snap.gauges["peak"], 3.0);
        let h = snap.histograms["h"];
        assert_eq!(h.count, 4);
        assert_eq!(h.max, 4.0);
        assert!((h.sum - 10.0).abs() < 1e-12);
        assert!(h.p50 >= 1.0 && h.p50 <= 3.0);
        assert!(h.p95 >= h.p50);
    }

    #[test]
    fn spans_nest_and_record_on_drop() {
        let rec = Recorder::new();
        {
            let _outer = span!(rec, "outer", kind = "test");
            let _inner = rec.span_cat("inner", "unit");
        }
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 2);
        // Inner drops first.
        assert_eq!(snap.spans[0].name, "inner");
        assert_eq!(snap.spans[0].cat, "unit");
        assert_eq!(snap.spans[1].name, "outer");
        assert_eq!(snap.spans[1].args, vec![("kind".into(), "test".into())]);
        let (o, i) = (&snap.spans[1], &snap.spans[0]);
        assert!(o.start_us <= i.start_us);
        assert!(o.start_us + o.dur_us >= i.start_us + i.dur_us);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.add("c", 10);
        rec.gauge("g", 1.0);
        rec.observe("h", 1.0);
        let _g = span!(rec, "s", a = 1);
        drop(_g);
        assert_eq!(rec.counter("c"), 0);
        assert_eq!(rec.gauge_value("g"), None);
        let snap = rec.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn disabled_recorder_is_effectively_free() {
        // Guard against the no-op path acquiring locks or allocating:
        // ten million disabled ops must finish far faster than any
        // realistic lock-per-op implementation would (functional bound,
        // deliberately loose to stay robust on loaded CI machines).
        let rec = Recorder::disabled();
        let start = Instant::now();
        for i in 0..10_000_000u64 {
            rec.add("k", i);
        }
        assert!(
            start.elapsed().as_secs_f64() < 2.0,
            "no-op recorder too slow: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn clones_share_the_registry() {
        let rec = Recorder::new();
        let other = rec.clone();
        other.incr("shared");
        assert_eq!(rec.counter("shared"), 1);
    }

    #[test]
    fn time_wraps_and_returns() {
        let rec = Recorder::new();
        let out = rec.time("work", || 41 + 1);
        assert_eq!(out, 42);
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "work");
        assert!(snap.spans[0].dur_us >= 0.0);
    }

    #[test]
    fn threads_get_distinct_tids() {
        let rec = Recorder::new();
        rec.time("main-thread", || {});
        let r2 = rec.clone();
        std::thread::spawn(move || r2.time("worker", || {}))
            .join()
            .unwrap();
        let snap = rec.snapshot();
        let main_tid = snap.spans.iter().find(|s| s.name == "main-thread").unwrap();
        let worker = snap.spans.iter().find(|s| s.name == "worker").unwrap();
        assert_ne!(main_tid.tid, worker.tid);
    }
}
