//! Fixture: a justified waiver silences `unpooled-thread`.

pub fn fan_out(items: &[u64]) -> Vec<u64> {
    // lint: allow(unpooled-thread): long-lived watcher thread, not fork-join compute
    let handle = std::thread::spawn(move || items.iter().sum());
    handle.join().unwrap_or_default()
}
