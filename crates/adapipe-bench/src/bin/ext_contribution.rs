//! Extension: which optimization contributes when?
//!
//! §3 of the paper predicts: "When the number of micro-batches is small,
//! adaptive recomputation contributes more ... if more micro-batches are
//! presented, adaptive partitioning will show its effectiveness in the
//! steady phase." This driver sweeps the micro-batch count and splits
//! AdaPipe's total win over DAPPLE-Full into the two contributions:
//! DAPPLE-Full → Even Partitioning (adaptive recomputation alone) and
//! Even Partitioning → AdaPipe (adaptive partitioning on top).

use adapipe::{Method, Planner};
use adapipe_bench::print_table;
use adapipe_hw::presets as hw;
use adapipe_model::{presets, ParallelConfig, TrainConfig};

fn main() {
    let planner = Planner::new(presets::gpt3_175b(), hw::cluster_a());
    let parallel = ParallelConfig::new(8, 8, 1).expect("valid");

    let mut rows = Vec::new();
    for n in [8usize, 16, 32, 64, 128, 256] {
        let train = TrainConfig::new(1, 16384, n).expect("valid");
        let time = |m| {
            let plan = planner.plan(m, parallel, train).expect("feasible");
            planner.evaluate(&plan).iteration_time
        };
        let full = time(Method::DappleFull);
        let even = time(Method::EvenPartitioning);
        let ada = time(Method::AdaPipe);
        let recompute_gain = 100.0 * (full - even) / full;
        let partition_gain = 100.0 * (even - ada) / full;
        rows.push(vec![
            n.to_string(),
            format!("{full:.2}"),
            format!("{even:.2}"),
            format!("{ada:.2}"),
            format!("{recompute_gain:.1}%"),
            format!("{partition_gain:.1}%"),
            format!("{:.2}x", full / ada),
        ]);
    }
    print_table(
        "Extension: contribution split vs micro-batch count — GPT-3, seq 16384, (8,8,1)",
        &[
            "n",
            "DAPPLE-Full (s)",
            "Even (s)",
            "AdaPipe (s)",
            "recompute gain",
            "partition gain",
            "total",
        ],
        &rows,
    );
    println!(
        "\nExpected shape (§3): the recomputation gain dominates at small n (it \
         shortens warmup and ending, which are the whole iteration there); the \
         partitioning gain grows with n as the steady phase — whose bottleneck \
         partitioning flattens — comes to dominate."
    );
}
