//! Robustness and determinism: the search must be stable under
//! profiling jitter (real measurements are noisy) and byte-for-byte
//! reproducible across runs.

use adapipe::{plan_io, Method, Planner};
use adapipe_hw::presets as hw;
use adapipe_memory::{MemoryModel, OptimizerSpec};
use adapipe_model::{presets, LayerSeq, ParallelConfig, TrainConfig};
use adapipe_profiler::{NoiseConfig, Profiler};
use adapipe_recompute::optimize;
use adapipe_units::{Bytes, MicroSecs};

#[test]
fn knapsack_is_stable_under_measurement_noise() {
    // Profile the same stage with ±5 % jitter under several seeds: the
    // chosen strategy's backward time must stay within a few percent of
    // the noiseless optimum, and the budget must always be respected.
    let model = presets::gpt3_175b();
    let parallel = ParallelConfig::new(8, 8, 1).unwrap();
    let train = TrainConfig::new(1, 4096, 128).unwrap();
    let seq = LayerSeq::for_model(&model);
    let range = seq.even_partition(8)[2];

    let clean_table = Profiler::new(hw::cluster_a()).profile(&model, &parallel, &train);
    let clean_units = clean_table.units_in(range);
    let budget = clean_units.iter().map(|u| u.mem_saved).sum::<Bytes>() * 60 / 100;
    let clean = optimize(&clean_units, budget).unwrap();

    for seed in 0..8 {
        let noisy_table = Profiler::new(hw::cluster_a())
            .with_noise(NoiseConfig {
                amplitude: 0.05,
                seed,
            })
            .profile(&model, &parallel, &train);
        let noisy_units = noisy_table.units_in(range);
        let noisy = optimize(&noisy_units, budget).unwrap();
        assert!(noisy.cost.saved_bytes_per_mb <= budget, "seed {seed}");
        // Evaluate the noisy choice under the *clean* costs.
        let realized = adapipe_recompute::strategy::cost_of(&clean_units, &noisy.strategy);
        let rel = (realized.time_b - clean.cost.time_b).abs() / clean.cost.time_b;
        assert!(
            rel < 0.05,
            "seed {seed}: noisy strategy costs {rel:.3} more"
        );
    }
}

#[test]
fn planning_is_deterministic_across_planner_instances() {
    let parallel = ParallelConfig::new(8, 8, 1).unwrap();
    let train = TrainConfig::new(1, 4096, 128).unwrap();
    let run = || {
        let planner = Planner::new(presets::gpt3_175b(), hw::cluster_a());
        let plan = planner.plan(Method::AdaPipe, parallel, train).unwrap();
        let eval = planner.evaluate(&plan);
        (
            plan_io::to_text(&plan),
            eval.iteration_time,
            eval.peak_bytes_per_device,
        )
    };
    let (text_a, time_a, peaks_a) = run();
    let (text_b, time_b, peaks_b) = run();
    assert_eq!(text_a, text_b, "plan text differs across runs");
    assert_eq!(time_a, time_b, "simulated time differs across runs");
    assert_eq!(peaks_a, peaks_b, "peaks differ across runs");
}

#[test]
fn memory_budget_monotonicity_in_capacity() {
    // More usable memory never slows the adaptive plan down.
    let parallel = ParallelConfig::new(8, 8, 1).unwrap();
    let train = TrainConfig::new(1, 16384, 32).unwrap();
    let mut last = MicroSecs::new(f64::INFINITY);
    for headroom in [0.6f64, 0.7, 0.8, 0.9, 1.0] {
        let planner =
            Planner::new(presets::gpt3_175b(), hw::cluster_a()).with_search_headroom(headroom);
        let Ok(plan) = planner.plan(Method::AdaPipe, parallel, train) else {
            continue;
        };
        let t = planner.evaluate(&plan).iteration_time;
        assert!(t <= last * 1.001, "headroom {headroom}: {t} > {last}");
        last = t;
    }
    assert!(last.is_finite(), "no headroom produced a feasible plan");
}

#[test]
fn noisy_profiles_still_produce_feasible_plans() {
    // End to end: a planner fed jittered measurements must still emit
    // plans that fit when executed under the jitter-free simulator.
    let model = presets::gpt3_175b();
    let parallel = ParallelConfig::new(8, 8, 1).unwrap();
    let train = TrainConfig::new(1, 8192, 64).unwrap();
    let seq = LayerSeq::for_model(&model);
    let mem = MemoryModel::new(model.clone(), parallel, OptimizerSpec::adam_fp32());

    for seed in [1u64, 2, 3] {
        let table = Profiler::new(hw::cluster_a())
            .with_noise(NoiseConfig {
                amplitude: 0.05,
                seed,
            })
            .profile(&model, &parallel, &train);
        let capacity = Bytes::new((hw::a100_80gb().usable_bytes().as_f64() * 0.875) as u64);
        let provider = adapipe_partition::KnapsackCostProvider::new(&seq, &table, &mem, capacity);
        let plan = adapipe_partition::algorithm1::solve(&provider, seq.len(), 8, 64)
            .expect("noisy profile still feasible");
        assert_eq!(plan.ranges.len(), 8);
        assert!(plan.iteration_time().is_finite());
    }
}
