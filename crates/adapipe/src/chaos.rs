//! The chaos harness: plan → inject → detect → replan → verify on one
//! deterministic code path.
//!
//! A chaos run takes a healthy AdaPipe plan, executes it on the
//! simulator for a fixed horizon of training steps with a
//! [`FaultPlan`](adapipe_faults::FaultPlan) injected (stragglers slow
//! their device, link degradation stretches P2P, one-shot stalls
//! lengthen a single forward, memory pressure shrinks watchdog
//! budgets), lets the [`Watchdog`] diagnose the damage, runs the
//! [recovery ladder](crate::replan) and statically verifies whatever
//! plan comes out. The entire run — including the rendered report — is
//! a pure function of `(model, cluster, workload, fault plan)`: no
//! wall-clock time is read, so equal inputs give byte-identical
//! reports.

// lint: allow-file(swallowed-result): fmt::Write into a String cannot fail
use crate::error::PlanError;
use crate::method::Method;
use crate::plan::Plan;
use crate::planner::Planner;
use crate::replan::{ReplanConfig, ReplanOutcome};
use adapipe_check::CheckReport;
use adapipe_faults::{
    apply_stalls, degraded_stage_execs, DegradationEvent, DegradedCluster, Diagnosis, FaultClock,
    RetryPolicy, Watchdog,
};
use adapipe_model::{ParallelConfig, TrainConfig};
use adapipe_obs::keys;
use adapipe_sim::{schedule, try_simulate_traced, StageExec};
use adapipe_units::Bytes;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// First line of the chaos report format.
pub const REPORT_HEADER: &str = "adapipe-chaos v1";

/// Tuning for a chaos run.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Training steps to execute under injection before diagnosing.
    pub steps: usize,
    /// Detection thresholds.
    pub watchdog: Watchdog,
    /// Retry ladder for transient stalls.
    pub retry: RetryPolicy,
    /// Warm-start the replan with the §5.3 isomorphism cache.
    pub iso_cache: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            steps: 4,
            watchdog: Watchdog::default(),
            retry: RetryPolicy::default(),
            iso_cache: true,
        }
    }
}

/// Everything a chaos run produced, ready for reporting and exit-code
/// mapping.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// The healthy plan the run started from.
    pub stale: Plan,
    /// Watchdog events per executed step.
    pub events: Vec<Vec<DegradationEvent>>,
    /// The classified diagnosis over all steps.
    pub diagnosis: Diagnosis,
    /// What the recovery ladder did.
    pub replan: ReplanOutcome,
    /// Static verification of the replanned plan (`None` when the
    /// ladder stopped at retries).
    pub verify: Option<CheckReport>,
    /// The machine-readable chaos report (deterministic per input).
    pub report: String,
}

impl ChaosOutcome {
    /// Whether the run ended in an accepted state: either nothing
    /// needed replanning, or the replanned plan verified cleanly and
    /// beats the stale plan in the degraded world.
    #[must_use]
    pub fn accepted(&self) -> bool {
        match (&self.replan.plan, &self.verify) {
            (None, _) => true,
            (Some(_), Some(report)) => !report.has_errors() && self.replan.improved(),
            (Some(_), None) => false,
        }
    }
}

impl Planner {
    /// Runs the chaos harness: searches a healthy plan, executes it for
    /// `cfg.steps` simulated training steps under `degraded`'s fault
    /// plan, diagnoses the watchdog events and drives the recovery
    /// ladder.
    ///
    /// # Errors
    ///
    /// [`Planner::plan`] errors for the initial healthy search;
    /// [`PlanError::Unsupported`] if injection corrupts the task graph
    /// into a deadlock (cannot happen for the 1F1B generator).
    pub fn chaos_run(
        &self,
        parallel: ParallelConfig,
        train: TrainConfig,
        degraded: &DegradedCluster,
        cfg: &ChaosConfig,
    ) -> Result<ChaosOutcome, PlanError> {
        let _span = self.recorder().span_cat(keys::SPAN_CHAOS, "chaos");
        let stale = self.plan(Method::AdaPipe, parallel, train)?;
        let ctx = self.context(parallel, train);

        let planned: Vec<StageExec> = stale
            .stages
            .iter()
            .map(|s| StageExec {
                time_f: s.cost.time_f,
                time_b: s.cost.time_b,
                saved_bytes: s.cost.saved_bytes_per_mb,
                buffer_bytes: s.memory.buffer_bytes,
            })
            .collect();
        // Dynamic-memory budgets per device: the Eq. (1)-(2) search
        // budget, less any injected pressure, less the stage's static
        // residents.
        let budgets: Vec<Bytes> = stale
            .stages
            .iter()
            .enumerate()
            .map(|(s, st)| {
                degraded
                    .shrunk_capacity(self.search_capacity(), s)
                    .saturating_sub(st.memory.static_bytes)
            })
            .collect();
        let p2p = degraded.p2p_time(ctx.table.boundary_bytes());

        let mut clock = FaultClock::new(degraded.plan());
        let mut events = Vec::with_capacity(cfg.steps);
        for _ in 0..cfg.steps {
            let _span = self.recorder().span_cat(keys::SPAN_CHAOS_STEP, "chaos");
            let execs = degraded_stage_execs(&planned, &clock);
            let mut graph = schedule::one_f_one_b(&execs, ctx.n, p2p);
            apply_stalls(&mut graph, &mut clock, cfg.steps);
            let report = try_simulate_traced(&graph, self.recorder()).map_err(|e| {
                PlanError::Unsupported {
                    reason: format!("chaos injection broke the schedule: {e}"),
                }
            })?;
            events.push(cfg.watchdog.scan(&report, &planned, &budgets));
            clock.advance();
        }

        let flat: Vec<DegradationEvent> = events.iter().flatten().cloned().collect();
        let diagnosis = cfg.watchdog.diagnose(&flat);
        let replan_cfg = ReplanConfig {
            retry: cfg.retry,
            iso_cache: cfg.iso_cache,
            detected_at_step: cfg.steps.saturating_sub(1),
        };
        let replan = self.replan(&stale, degraded, &diagnosis, &replan_cfg)?;
        let verify = replan.plan.as_ref().map(|plan| self.verify(plan));

        let report = render_report(degraded, cfg, &events, &diagnosis, &replan, verify.as_ref());
        Ok(ChaosOutcome {
            stale,
            events,
            diagnosis,
            replan,
            verify,
            report,
        })
    }
}

/// Renders the machine-readable chaos report. Every value is a pure
/// function of the run inputs — floats are formatted with `{:?}` like
/// the plan artifact, and wall-clock time never appears — so equal
/// `(plan, faults, seed)` give byte-identical reports.
fn render_report(
    degraded: &DegradedCluster,
    cfg: &ChaosConfig,
    events: &[Vec<DegradationEvent>],
    diagnosis: &Diagnosis,
    replan: &ReplanOutcome,
    verify: Option<&CheckReport>,
) -> String {
    let mut out = String::new();
    let faults = degraded.plan();
    let _ = writeln!(out, "{REPORT_HEADER}");
    out.push_str("units.time = us\nunits.bytes = B\n");
    let _ = writeln!(out, "seed = {}", faults.seed());
    let _ = writeln!(out, "cluster = {}", degraded.base().name());
    let _ = writeln!(out, "steps = {}", cfg.steps);
    let _ = writeln!(out, "watchdog.alpha = {:?}", cfg.watchdog.alpha);
    let _ = writeln!(
        out,
        "watchdog.persistent-threshold = {}",
        cfg.watchdog.persistent_threshold
    );
    // The injected faults, in the fault-plan DSL (header and seed line
    // stripped — both are already above).
    for line in faults
        .to_text()
        .lines()
        .skip(2)
        .filter(|l| !l.trim().is_empty())
    {
        let _ = writeln!(out, "fault {line}");
    }

    // Watchdog events, aggregated per (step, kind, stage) to keep the
    // report bounded: a persistent straggler misses every op's deadline.
    for (step, step_events) in events.iter().enumerate() {
        // stage -> (count, worst observed/deadline ratio)
        let mut deadlines: BTreeMap<usize, (usize, f64)> = BTreeMap::new();
        let mut budgets: BTreeMap<usize, (Bytes, Bytes)> = BTreeMap::new();
        for e in step_events {
            match e {
                DegradationEvent::DeadlineMissed {
                    stage,
                    observed,
                    deadline,
                    ..
                } => {
                    let ratio = observed.as_micros() / deadline.as_micros();
                    let slot = deadlines.entry(*stage).or_insert((0, 0.0));
                    slot.0 += 1;
                    slot.1 = slot.1.max(ratio);
                }
                DegradationEvent::BudgetExceeded {
                    stage,
                    high_water,
                    budget,
                } => {
                    budgets.insert(*stage, (*high_water, *budget));
                }
                _ => {}
            }
        }
        for (stage, (count, worst)) in &deadlines {
            let _ = writeln!(
                out,
                "step {step} deadline stage={stage} count={count} worst-over={worst:?}"
            );
        }
        for (stage, (high_water, budget)) in &budgets {
            let _ = writeln!(
                out,
                "step {step} budget stage={stage} high-water-b={} budget-b={}",
                high_water.get(),
                budget.get()
            );
        }
    }

    let _ = writeln!(
        out,
        "diagnosis.transient = {}",
        diagnosis.transient_stalls.len()
    );
    let _ = writeln!(
        out,
        "diagnosis.persistent = {}",
        diagnosis.persistent_stragglers.len()
    );
    let _ = writeln!(
        out,
        "diagnosis.budget = {}",
        diagnosis.budget_exceeded.len()
    );

    for r in &replan.retries {
        let _ = writeln!(
            out,
            "retry stage={} micro-batch={} attempts={} backoff-us={:?} recovered={}",
            r.stage,
            r.micro_batch,
            r.attempts,
            r.backoff.as_micros(),
            r.recovered
        );
    }
    let action = if replan.plan.is_some() {
        "replan"
    } else if replan.retries.is_empty() {
        "none"
    } else {
        "retry"
    };
    let _ = writeln!(out, "action = {action}");
    if replan.plan.is_some() {
        if replan.fallback_stages.is_empty() {
            out.push_str("fallback-stages = none\n");
        } else {
            let stages: Vec<String> = replan
                .fallback_stages
                .iter()
                .map(ToString::to_string)
                .collect();
            let _ = writeln!(out, "fallback-stages = {}", stages.join(","));
        }
        let _ = writeln!(out, "iso-cache.hits = {}", replan.cache_hits);
        let _ = writeln!(out, "iso-cache.misses = {}", replan.cache_misses);
        let _ = writeln!(out, "stale-us = {:?}", replan.stale_time.as_micros());
        if let Some(t) = replan.replanned_time {
            let _ = writeln!(out, "replanned-us = {:?}", t.as_micros());
        }
        let _ = writeln!(out, "improved = {}", replan.improved());
    }
    match verify {
        Some(report) => {
            let _ = writeln!(out, "verify.errors = {}", report.error_count());
            let _ = writeln!(out, "verify.warnings = {}", report.warning_count());
        }
        None => out.push_str("verify = skipped\n"),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapipe_faults::{Fault, FaultPlan};
    use adapipe_hw::presets as hw;
    use adapipe_model::presets;
    use adapipe_units::MicroSecs;

    fn setup() -> (Planner, ParallelConfig, TrainConfig) {
        (
            Planner::new(presets::gpt2_small(), hw::cluster_a()),
            ParallelConfig::new(2, 4, 1).expect("valid parallelism"),
            TrainConfig::new(1, 1024, 32).expect("valid workload"),
        )
    }

    #[test]
    fn healthy_world_raises_nothing_and_keeps_the_plan() {
        let (planner, parallel, train) = setup();
        let degraded = DegradedCluster::new(hw::cluster_a(), FaultPlan::new(1));
        let out = planner
            .chaos_run(parallel, train, &degraded, &ChaosConfig::default())
            .expect("chaos runs");
        assert!(out.diagnosis.is_healthy(), "{:?}", out.diagnosis);
        assert!(out.replan.plan.is_none());
        assert!(out.accepted());
        assert!(out.report.contains("action = none"), "{}", out.report);
    }

    #[test]
    fn straggler_is_detected_and_replanned() {
        let (planner, parallel, train) = setup();
        let faults = FaultPlan::new(42).with(Fault::Straggler {
            device: 2,
            factor: 0.6,
            from_step: 0,
        });
        let degraded = DegradedCluster::new(hw::cluster_a(), faults);
        let out = planner
            .chaos_run(parallel, train, &degraded, &ChaosConfig::default())
            .expect("chaos runs");
        assert_eq!(out.diagnosis.persistent_stragglers, vec![2]);
        assert!(out.replan.plan.is_some());
        assert!(out.replan.improved());
        assert!(out.accepted(), "{}", out.report);
        assert!(!out.verify.expect("verified").has_errors());
    }

    #[test]
    fn one_shot_stall_recovers_by_retry_alone() {
        let (planner, parallel, train) = setup();
        // A stall long enough to blow any deadline, on one micro-batch.
        let faults = FaultPlan::new(9).with(Fault::TransientStall {
            device: 1,
            micro_batch: 3,
            delay: MicroSecs::new(1e6),
        });
        let degraded = DegradedCluster::new(hw::cluster_a(), faults);
        let out = planner
            .chaos_run(parallel, train, &degraded, &ChaosConfig::default())
            .expect("chaos runs");
        assert_eq!(out.diagnosis.transient_stalls, vec![(1, 3)]);
        assert!(out.replan.plan.is_none(), "retry must suffice");
        assert_eq!(out.replan.retries.len(), 1);
        assert!(out.replan.retries[0].recovered);
        assert!(out.accepted());
        assert!(out.report.contains("action = retry"), "{}", out.report);
    }

    #[test]
    fn chaos_report_is_deterministic() {
        let (planner, parallel, train) = setup();
        let faults = FaultPlan::new(42).with(Fault::Straggler {
            device: 2,
            factor: 0.6,
            from_step: 0,
        });
        let degraded = DegradedCluster::new(hw::cluster_a(), faults);
        let a = planner
            .chaos_run(parallel, train, &degraded, &ChaosConfig::default())
            .expect("chaos runs");
        let b = planner
            .chaos_run(parallel, train, &degraded, &ChaosConfig::default())
            .expect("chaos runs");
        assert_eq!(a.report, b.report);
        let (pa, pb) = (a.replan.plan.expect("plan"), b.replan.plan.expect("plan"));
        assert_eq!(crate::plan_io::to_text(&pa), crate::plan_io::to_text(&pb));
    }
}
