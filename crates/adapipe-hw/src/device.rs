use adapipe_units::{Bytes, BytesPerSec, Flops, FlopsPerSec, MicroSecs};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Throughput model of one accelerator (GPU or NPU).
///
/// Computation-unit times come from a two-regime roofline: matmul-dominated
/// units run at `peak_flops * matmul_efficiency`, bandwidth-dominated units
/// at `hbm_bandwidth * mem_efficiency`, and every kernel pays a fixed
/// launch overhead. These three knobs are what on-device profiling would
/// otherwise measure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    name: String,
    mem_bytes: Bytes,
    reserved_bytes: Bytes,
    peak_flops: FlopsPerSec,
    hbm_bandwidth: BytesPerSec,
    matmul_efficiency: f64,
    mem_efficiency: f64,
    kernel_overhead: MicroSecs,
}

impl DeviceSpec {
    /// Starts building a device description.
    #[must_use]
    pub fn builder(name: impl Into<String>) -> DeviceSpecBuilder {
        DeviceSpecBuilder::new(name)
    }

    /// Device name, e.g. `"a100-80gb"`.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Device memory capacity.
    #[must_use]
    pub fn mem_bytes(&self) -> Bytes {
        self.mem_bytes
    }

    /// Memory unavailable to the training job (driver context, collective
    /// communication buffers, allocator fragmentation).
    #[must_use]
    pub fn reserved_bytes(&self) -> Bytes {
        self.reserved_bytes
    }

    /// Memory the job may actually allocate: capacity minus reservation.
    #[must_use]
    pub fn usable_bytes(&self) -> Bytes {
        self.mem_bytes.saturating_sub(self.reserved_bytes)
    }

    /// Peak half-precision math rate.
    #[must_use]
    pub fn peak_flops(&self) -> FlopsPerSec {
        self.peak_flops
    }

    /// Device-memory bandwidth.
    #[must_use]
    pub fn hbm_bandwidth(&self) -> BytesPerSec {
        self.hbm_bandwidth
    }

    /// Fraction of peak FLOP/s achieved by large matrix multiplications.
    #[must_use]
    pub fn matmul_efficiency(&self) -> f64 {
        self.matmul_efficiency
    }

    /// Fraction of peak bandwidth achieved by elementwise kernels.
    #[must_use]
    pub fn mem_efficiency(&self) -> f64 {
        self.mem_efficiency
    }

    /// Fixed per-kernel launch overhead.
    #[must_use]
    pub fn kernel_overhead(&self) -> MicroSecs {
        self.kernel_overhead
    }

    /// Time for a matmul-bound kernel doing `flops` floating-point
    /// operations and moving `bytes` through memory: the roofline maximum
    /// of the math time and the memory time, plus launch overhead.
    #[must_use]
    pub fn matmul_time(&self, flops: Flops, bytes: Bytes) -> MicroSecs {
        let math = flops / (self.peak_flops * self.matmul_efficiency);
        let mem = bytes / (self.hbm_bandwidth * self.mem_efficiency);
        self.kernel_overhead + math.max(mem)
    }

    /// Time for a bandwidth-bound kernel moving `bytes` through memory.
    #[must_use]
    pub fn bandwidth_time(&self, bytes: Bytes) -> MicroSecs {
        self.kernel_overhead + bytes / (self.hbm_bandwidth * self.mem_efficiency)
    }
}

impl fmt::Display for DeviceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} GB, {:.0} TFLOPs, {:.0} GB/s)",
            self.name,
            self.mem_bytes.get() >> 30,
            self.peak_flops.get() / 1e12,
            self.hbm_bandwidth.get() / 1e9
        )
    }
}

/// Builder for [`DeviceSpec`].
#[derive(Debug, Clone)]
pub struct DeviceSpecBuilder {
    name: String,
    mem_bytes: Bytes,
    reserved_bytes: Bytes,
    peak_flops: FlopsPerSec,
    hbm_bandwidth: BytesPerSec,
    matmul_efficiency: f64,
    mem_efficiency: f64,
    kernel_overhead: MicroSecs,
}

impl DeviceSpecBuilder {
    fn new(name: impl Into<String>) -> Self {
        DeviceSpecBuilder {
            name: name.into(),
            mem_bytes: Bytes::ZERO,
            reserved_bytes: Bytes::ZERO,
            peak_flops: FlopsPerSec::new(0.0),
            hbm_bandwidth: BytesPerSec::new(0.0),
            matmul_efficiency: 0.5,
            mem_efficiency: 0.8,
            kernel_overhead: MicroSecs::new(6.0),
        }
    }

    /// Sets the memory capacity.
    #[must_use]
    pub fn mem_bytes(mut self, mem_bytes: Bytes) -> Self {
        self.mem_bytes = mem_bytes;
        self
    }

    /// Sets the reserved (non-allocatable) memory — driver context,
    /// collective buffers, fragmentation. Default 0.
    #[must_use]
    pub fn reserved_bytes(mut self, reserved_bytes: Bytes) -> Self {
        self.reserved_bytes = reserved_bytes;
        self
    }

    /// Sets the peak half-precision math rate.
    #[must_use]
    pub fn peak_flops(mut self, peak_flops: FlopsPerSec) -> Self {
        self.peak_flops = peak_flops;
        self
    }

    /// Sets the device-memory bandwidth.
    #[must_use]
    pub fn hbm_bandwidth(mut self, hbm_bandwidth: BytesPerSec) -> Self {
        self.hbm_bandwidth = hbm_bandwidth;
        self
    }

    /// Sets the matmul efficiency fraction (default 0.5).
    #[must_use]
    pub fn matmul_efficiency(mut self, eff: f64) -> Self {
        self.matmul_efficiency = eff;
        self
    }

    /// Sets the bandwidth efficiency fraction (default 0.8).
    #[must_use]
    pub fn mem_efficiency(mut self, eff: f64) -> Self {
        self.mem_efficiency = eff;
        self
    }

    /// Sets the per-kernel launch overhead (default 6 µs).
    #[must_use]
    pub fn kernel_overhead(mut self, overhead: MicroSecs) -> Self {
        self.kernel_overhead = overhead;
        self
    }

    /// Builds the [`DeviceSpec`].
    ///
    /// # Panics
    ///
    /// Panics if capacity, peak FLOP/s or bandwidth were left unset or an
    /// efficiency fraction is outside `(0, 1]`.
    #[must_use]
    pub fn build(self) -> DeviceSpec {
        assert!(
            self.mem_bytes > Bytes::ZERO,
            "device memory capacity must be set"
        );
        assert!(
            self.reserved_bytes < self.mem_bytes,
            "reservation must leave usable memory"
        );
        assert!(
            self.peak_flops.get() > 0.0,
            "device peak FLOP/s must be set"
        );
        assert!(
            self.hbm_bandwidth.get() > 0.0,
            "device memory bandwidth must be set"
        );
        assert!(
            self.matmul_efficiency > 0.0 && self.matmul_efficiency <= 1.0,
            "matmul efficiency must be in (0, 1]"
        );
        assert!(
            self.mem_efficiency > 0.0 && self.mem_efficiency <= 1.0,
            "memory efficiency must be in (0, 1]"
        );
        assert!(
            !self.kernel_overhead.is_invalid_cost(),
            "kernel overhead must be a finite non-negative time"
        );
        DeviceSpec {
            name: self.name,
            mem_bytes: self.mem_bytes,
            reserved_bytes: self.reserved_bytes,
            peak_flops: self.peak_flops,
            hbm_bandwidth: self.hbm_bandwidth,
            matmul_efficiency: self.matmul_efficiency,
            mem_efficiency: self.mem_efficiency,
            kernel_overhead: self.kernel_overhead,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn roofline_picks_the_binding_resource() {
        let dev = presets::a100_80gb();
        // Huge math, tiny data: math-bound.
        let math_bound = dev.matmul_time(Flops::new(1e15), Bytes::new(1));
        assert!(math_bound > (Flops::new(1e15) / dev.peak_flops()) * 0.5);
        // Tiny math, huge data: memory-bound.
        let mem_bound = dev.matmul_time(Flops::new(1.0), Bytes::new(1_000_000_000_000));
        assert!(mem_bound > (Bytes::new(1_000_000_000_000) / dev.hbm_bandwidth()) * 0.5);
    }

    #[test]
    fn overhead_dominates_empty_kernels() {
        let dev = presets::a100_80gb();
        let t = dev.matmul_time(Flops::ZERO, Bytes::ZERO);
        assert!((t - dev.kernel_overhead()).abs() < MicroSecs::new(1e-9));
    }

    #[test]
    #[should_panic(expected = "capacity must be set")]
    fn unset_capacity_panics() {
        let _ = DeviceSpec::builder("x")
            .peak_flops(FlopsPerSec::new(1.0))
            .hbm_bandwidth(BytesPerSec::new(1.0))
            .build();
    }

    #[test]
    fn display_mentions_capacity() {
        let s = presets::ascend910_32gb().to_string();
        assert!(s.contains("32 GB"), "{s}");
    }
}
