// lint: allow-file(expect, index): the saved-set, unit table, and cache
// vectors are sized by the constructor to exactly `units.len()`; every index
// here is in-range by construction and the expects name those invariants.
//! A pipeline stage: a run of layers executed with per-unit
//! save/recompute semantics.
//!
//! After the forward pass of a micro-batch, the stage retains only the
//! outputs of *saved* units (pinned layer outputs are always saved).
//! During backward it walks its layers in reverse; for each layer it
//! rematerializes the missing unit outputs from the layer's (pinned)
//! input — the one-layer recompute buffer of §4.2 — then backpropagates
//! unit by unit on short autograd tapes, accumulating parameter
//! gradients.
//!
//! Because rematerialization repeats bit-identical f32 kernels — and
//! dropout masks are counter-based, keyed by `(step, micro-batch, layer,
//! unit)` — the computed gradients are exactly those of a
//! no-recomputation run.

use crate::tape::Tape;
use crate::tensor::Tensor;
use crate::units::{Optimizer, UnitModule};
use adapipe_model::UnitKind;

/// Execution context identifying one forward/backward pass — the seed of
/// every counter-based random decision, so recomputation can replay it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecCtx {
    /// Training step (optimizer iteration).
    pub step: usize,
    /// Micro-batch index within the step.
    pub micro_batch: usize,
}

impl ExecCtx {
    /// The dropout key for unit `slot` of layer `layer` under this
    /// context: a stateless mix of all four coordinates.
    #[must_use]
    pub fn dropout_key(&self, layer: usize, slot: usize) -> u64 {
        let mut z = (self.step as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((self.micro_batch as u64) << 32)
            .wrapping_add((layer as u64) << 16)
            .wrapping_add(slot as u64);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^ (z >> 27)
    }
}

/// Saved activations of one micro-batch between forward and backward.
#[derive(Debug)]
pub struct ForwardCache {
    /// Per-unit outputs; `None` for units configured to recompute.
    outs: Vec<Option<Tensor>>,
    /// The stage input activation (absent for the first stage).
    input: Option<Tensor>,
    /// Token ids (present only when the stage starts with the embedding).
    ids: Option<Vec<usize>>,
    /// The context the forward ran under (replayed by recomputation).
    ctx: ExecCtx,
}

impl ForwardCache {
    /// Bytes of saved activations (4 bytes per f32) — lets tests assert
    /// that recomputation actually shrinks the cache.
    #[must_use]
    pub fn saved_bytes(&self) -> usize {
        self.outs
            .iter()
            .flatten()
            .map(|t| t.len() * 4)
            .sum::<usize>()
            + self.input.as_ref().map_or(0, |t| t.len() * 4)
    }
}

/// One pipeline stage of the miniature trainer.
#[derive(Debug)]
pub struct StageModule {
    units: Vec<UnitModule>,
    saved: Vec<bool>,
    heads: usize,
    kv_heads: usize,
    dropout: f32,
    /// `(first_unit, last_unit)` index ranges per layer, in order.
    layers: Vec<(usize, usize)>,
}

impl StageModule {
    /// Builds a stage from unit modules and per-unit saved flags.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ, a pinned unit is marked recomputed, or
    /// the head configuration is inconsistent.
    #[must_use]
    pub fn new(
        units: Vec<UnitModule>,
        saved: Vec<bool>,
        heads: usize,
        kv_heads: usize,
        dropout: f32,
    ) -> Self {
        assert_eq!(units.len(), saved.len(), "one flag per unit");
        assert!(
            heads > 0 && kv_heads > 0 && heads.is_multiple_of(kv_heads),
            "bad head configuration"
        );
        assert!((0.0..1.0).contains(&dropout), "dropout must be in [0, 1)");
        for (u, &s) in units.iter().zip(&saved) {
            assert!(
                s || !u.is_pinned(),
                "pinned unit {:?} cannot be recomputed",
                u.kind
            );
        }
        let mut layers: Vec<(usize, usize)> = Vec::new();
        for (i, u) in units.iter().enumerate() {
            match layers.last_mut() {
                Some((_, last)) if units[*last].layer == u.layer => *last = i,
                _ => layers.push((i, i)),
            }
        }
        StageModule {
            units,
            saved,
            heads,
            kv_heads,
            dropout,
            layers,
        }
    }

    /// Convenience constructor for classic attention without dropout.
    #[must_use]
    pub fn new_simple(units: Vec<UnitModule>, saved: Vec<bool>, heads: usize) -> Self {
        Self::new(units, saved, heads, heads, 0.0)
    }

    /// The stage's unit modules.
    #[must_use]
    pub fn units(&self) -> &[UnitModule] {
        &self.units
    }

    /// Zeroes all gradient accumulators.
    pub fn zero_grads(&mut self) {
        for u in &mut self.units {
            u.zero_grads();
        }
    }

    /// Optimizer update over all units (`t` is the 1-based step).
    pub fn optimizer_step(&mut self, opt: Optimizer, t: usize, scale: f32) {
        for u in &mut self.units {
            u.optimizer_step(opt, t, scale);
        }
    }

    /// SGD update over all units (kept for API compatibility).
    pub fn sgd_step(&mut self, lr: f32, scale: f32) {
        self.optimizer_step(Optimizer::Sgd { lr }, 1, scale);
    }

    /// The dropout key for unit index `i` (within the stage).
    fn key_of(&self, ctx: ExecCtx, i: usize, first: usize) -> Option<(f32, u64)> {
        if self.dropout > 0.0 && self.units[i].has_dropout() {
            Some((
                self.dropout,
                ctx.dropout_key(self.units[i].layer, i - first),
            ))
        } else {
            None
        }
    }

    /// Forward pass of one micro-batch. Exactly one of `input`
    /// (activation from the previous stage) or `ids` (tokens, first
    /// stage) must be provided. Returns the cache and the stage output.
    ///
    /// # Panics
    ///
    /// Panics if neither or both inputs are provided, or if the stage's
    /// first unit expects the other kind.
    #[must_use]
    pub fn forward(
        &self,
        input: Option<Tensor>,
        ids: Option<&[usize]>,
        ctx: ExecCtx,
    ) -> (ForwardCache, Tensor) {
        assert!(input.is_some() != ids.is_some(), "exactly one of input/ids");
        let mut outs: Vec<Option<Tensor>> = vec![None; self.units.len()];
        let mut layer_input = input.clone();
        for &(first, last) in &self.layers {
            let all = self.run_layer(first, last, layer_input.as_ref(), ids, ctx);
            for (k, out) in all.iter().enumerate() {
                if self.saved[first + k] {
                    outs[first + k] = Some(out.clone());
                }
            }
            layer_input = Some(all.last().expect("layer has units").clone());
        }
        let output = layer_input.expect("stage produced an output");
        (
            ForwardCache {
                outs,
                input,
                ids: ids.map(<[usize]>::to_vec),
                ctx,
            },
            output,
        )
    }

    /// Recomputes every unit output of the layer spanning `[first, last]`
    /// given the layer input, reusing saved outputs from `cache` where
    /// present. Returns all outputs in unit order.
    fn materialize_layer(
        &self,
        first: usize,
        last: usize,
        layer_input: Option<&Tensor>,
        cache: &ForwardCache,
    ) -> Vec<Tensor> {
        if (first..=last).all(|i| cache.outs[i].is_some()) {
            return (first..=last)
                .map(|i| cache.outs[i].clone().expect("checked"))
                .collect();
        }
        let fresh = self.run_layer(first, last, layer_input, cache.ids.as_deref(), cache.ctx);
        (first..=last)
            .zip(fresh)
            .map(|(i, f)| cache.outs[i].clone().unwrap_or(f))
            .collect()
    }

    /// Runs the units of one layer forward (no gradients kept), honoring
    /// the intra-layer wiring of Figure 4.
    fn run_layer(
        &self,
        first: usize,
        last: usize,
        layer_input: Option<&Tensor>,
        ids: Option<&[usize]>,
        ctx: ExecCtx,
    ) -> Vec<Tensor> {
        let mut outs: Vec<Tensor> = Vec::with_capacity(last - first + 1);
        for i in first..=last {
            let u = &self.units[i];
            let mut tape = Tape::new();
            let out = match u.kind {
                UnitKind::CoreAttention => {
                    // Q, K, V directly precede the core in unit order.
                    let q = tape.leaf(outs[i - first - 3].clone());
                    let k = tape.leaf(outs[i - first - 2].clone());
                    let v = tape.leaf(outs[i - first - 1].clone());
                    u.forward_attention(&mut tape, q, k, v, self.heads, self.kv_heads)
                }
                UnitKind::FfnActGated => {
                    let gate = tape.leaf(outs[i - first - 2].clone());
                    let up = tape.leaf(outs[i - first - 1].clone());
                    u.forward_gated(&mut tape, gate, up)
                }
                _ => {
                    let x = self
                        .unit_input(i, first, &outs, layer_input)
                        .map(|t| tape.leaf(t));
                    let resid = if u.has_residual() {
                        Some(tape.leaf(layer_input.expect("residual needs layer input").clone()))
                    } else {
                        None
                    };
                    u.forward(&mut tape, x, resid, ids, self.key_of(ctx, i, first))
                        .1
                }
            };
            outs.push(tape.value(out).clone());
        }
        outs
    }

    /// The primary input tensor of unit `i` (index within the stage),
    /// given the outputs of earlier units of the same layer.
    fn unit_input(
        &self,
        i: usize,
        first: usize,
        outs: &[Tensor],
        layer_input: Option<&Tensor>,
    ) -> Option<Tensor> {
        match self.units[i].kind {
            UnitKind::Embedding => None,
            // First unit of a layer reads the layer input.
            UnitKind::AttnNorm | UnitKind::FfnNorm | UnitKind::DecodingHead => {
                Some(layer_input.expect("layer input missing").clone())
            }
            // Q/K/V and Gate/Up all read the norm output (unit 0).
            UnitKind::QProj
            | UnitKind::KProj
            | UnitKind::VProj
            | UnitKind::FfnGate
            | UnitKind::FfnUp => Some(outs[0].clone()),
            // Everything else reads its predecessor.
            _ => Some(outs[i - first - 1].clone()),
        }
    }

    /// Backward pass of one micro-batch: consumes the forward cache and
    /// the gradient of the stage output; accumulates parameter gradients
    /// and returns the gradient of the stage input (or `None` for the
    /// embedding stage).
    ///
    /// # Panics
    ///
    /// Panics if the cache does not belong to this stage.
    pub fn backward(&mut self, cache: &ForwardCache, grad_out: Tensor) -> Option<Tensor> {
        assert_eq!(cache.outs.len(), self.units.len(), "cache/stage mismatch");
        let mut grad = grad_out;
        for li in (0..self.layers.len()).rev() {
            let (first, last) = self.layers[li];
            let layer_input: Option<Tensor> = if li == 0 {
                cache.input.clone()
            } else {
                let (_, prev_last) = self.layers[li - 1];
                Some(
                    cache.outs[prev_last]
                        .clone()
                        .expect("layer outputs are pinned saved"),
                )
            };
            let outs = self.materialize_layer(first, last, layer_input.as_ref(), cache);
            match self.backward_layer(first, last, layer_input.as_ref(), &outs, grad, cache) {
                Some(g) => grad = g,
                None => return None, // embedding layer: no input gradient
            }
        }
        Some(grad)
    }

    /// Backpropagates one unit with a single primary input; returns the
    /// input gradient after harvesting parameter gradients.
    fn backprop_simple(
        &mut self,
        i: usize,
        first: usize,
        x_val: &Tensor,
        grad_out: Tensor,
        ctx: ExecCtx,
    ) -> Tensor {
        let key = self.key_of(ctx, i, first);
        let u = &mut self.units[i];
        let mut tape = Tape::new();
        let x = tape.leaf(x_val.clone());
        let (pvars, out) = u.forward(&mut tape, Some(x), None, None, key);
        tape.backward(out, grad_out);
        u.harvest_grads(&tape, &pvars);
        tape.grad(x)
    }

    /// Backpropagates a residual output projection; returns the
    /// gradients of (primary input, residual).
    fn backprop_residual(
        &mut self,
        i: usize,
        first: usize,
        x_val: &Tensor,
        resid_val: &Tensor,
        grad_out: Tensor,
        ctx: ExecCtx,
    ) -> (Tensor, Tensor) {
        let key = self.key_of(ctx, i, first);
        let u = &mut self.units[i];
        let mut tape = Tape::new();
        let x = tape.leaf(x_val.clone());
        let r = tape.leaf(resid_val.clone());
        let (pvars, out) = u.forward(&mut tape, Some(x), Some(r), None, key);
        tape.backward(out, grad_out);
        u.harvest_grads(&tape, &pvars);
        (tape.grad(x), tape.grad(r))
    }

    /// Backpropagates through one layer; returns the gradient of the
    /// layer input (`None` for the embedding).
    fn backward_layer(
        &mut self,
        first: usize,
        _last: usize,
        layer_input: Option<&Tensor>,
        outs: &[Tensor],
        grad_out: Tensor,
        cache: &ForwardCache,
    ) -> Option<Tensor> {
        let ctx = cache.ctx;
        match self.units[first].kind {
            UnitKind::Embedding => {
                let u = &mut self.units[first];
                let mut tape = Tape::new();
                let ids = cache.ids.as_deref().expect("embedding stage keeps ids");
                let (pvars, out) = u.forward(&mut tape, None, None, Some(ids), None);
                tape.backward(out, grad_out);
                u.harvest_grads(&tape, &pvars);
                None
            }
            UnitKind::DecodingHead => Some(self.backprop_simple(
                first,
                first,
                layer_input.expect("head needs input"),
                grad_out,
                ctx,
            )),
            UnitKind::AttnNorm => {
                // Units: [norm, q, k, v, core, out_proj].
                let layer_in = layer_input.expect("attention needs layer input").clone();
                let (g_core, g_resid) =
                    self.backprop_residual(first + 5, first, &outs[4], &layer_in, grad_out, ctx);
                // Attention core.
                let (gq, gk, gv) = {
                    let u = &self.units[first + 4];
                    let mut tape = Tape::new();
                    let q = tape.leaf(outs[1].clone());
                    let k = tape.leaf(outs[2].clone());
                    let v = tape.leaf(outs[3].clone());
                    let out = u.forward_attention(&mut tape, q, k, v, self.heads, self.kv_heads);
                    tape.backward(out, g_core);
                    (tape.grad(q), tape.grad(k), tape.grad(v))
                };
                // Q/K/V projections, all reading the norm output.
                let mut g_norm = Tensor::zeros(outs[0].rows(), outs[0].cols());
                for (offset, g) in [(1usize, gq), (2, gk), (3, gv)] {
                    g_norm.add_assign(&self.backprop_simple(
                        first + offset,
                        first,
                        &outs[0].clone(),
                        g,
                        ctx,
                    ));
                }
                // Norm.
                let g_in = self.backprop_simple(first, first, &layer_in, g_norm, ctx);
                Some(g_in.add(&g_resid))
            }
            UnitKind::FfnNorm if self.units[first + 1].kind == UnitKind::FfnGate => {
                // SwiGLU: [norm, gate, up, act_gated, down].
                let layer_in = layer_input.expect("ffn needs layer input").clone();
                let (g_act, g_resid) =
                    self.backprop_residual(first + 4, first, &outs[3], &layer_in, grad_out, ctx);
                // Gated activation.
                let (g_gate, g_up) = {
                    let u = &self.units[first + 3];
                    let mut tape = Tape::new();
                    let gate = tape.leaf(outs[1].clone());
                    let up = tape.leaf(outs[2].clone());
                    let out = u.forward_gated(&mut tape, gate, up);
                    tape.backward(out, g_act);
                    (tape.grad(gate), tape.grad(up))
                };
                let mut g_norm =
                    self.backprop_simple(first + 1, first, &outs[0].clone(), g_gate, ctx);
                g_norm.add_assign(&self.backprop_simple(
                    first + 2,
                    first,
                    &outs[0].clone(),
                    g_up,
                    ctx,
                ));
                let g_in = self.backprop_simple(first, first, &layer_in, g_norm, ctx);
                Some(g_in.add(&g_resid))
            }
            UnitKind::FfnNorm => {
                // GeLU: [norm, fc1, act, fc2].
                let layer_in = layer_input.expect("ffn needs layer input").clone();
                let (g_act, g_resid) =
                    self.backprop_residual(first + 3, first, &outs[2], &layer_in, grad_out, ctx);
                let g_fc1 = self.backprop_simple(first + 2, first, &outs[1].clone(), g_act, ctx);
                let g_norm = self.backprop_simple(first + 1, first, &outs[0].clone(), g_fc1, ctx);
                let g_in = self.backprop_simple(first, first, &layer_in, g_norm, ctx);
                Some(g_in.add(&g_resid))
            }
            other => unreachable!("layer cannot start with {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{build_layer_units, init_rng, TinyDims};
    use adapipe_model::LayerKind;

    fn dims() -> TinyDims {
        TinyDims {
            hidden: 16,
            heads: 2,
            kv_heads: 2,
            ffn_hidden: 32,
            vocab: 24,
            max_seq: 6,
            swiglu: false,
            dropout: 0.0,
        }
    }

    fn llama_dims() -> TinyDims {
        TinyDims {
            kv_heads: 1,
            swiglu: true,
            ..dims()
        }
    }

    fn ctx() -> ExecCtx {
        ExecCtx {
            step: 0,
            micro_batch: 0,
        }
    }

    /// One decoder block (attention + ffn) as a stage.
    fn block_stage(d: TinyDims, saved_all: bool) -> StageModule {
        let mut rng = init_rng(42);
        let mut units = build_layer_units(d, LayerKind::Attention, 1, &mut rng);
        units.extend(build_layer_units(d, LayerKind::FeedForward, 2, &mut rng));
        let saved: Vec<bool> = units.iter().map(|u| saved_all || u.is_pinned()).collect();
        StageModule::new(units, saved, d.heads, d.kv_heads, d.dropout)
    }

    fn sample_input() -> Tensor {
        Tensor::from_vec(
            6,
            16,
            (0..96).map(|i| ((i % 13) as f32 - 6.0) / 10.0).collect(),
        )
    }

    #[test]
    fn forward_is_strategy_invariant() {
        for d in [dims(), llama_dims()] {
            let full = block_stage(d, false);
            let none = block_stage(d, true);
            let (_, y_full) = full.forward(Some(sample_input()), None, ctx());
            let (_, y_none) = none.forward(Some(sample_input()), None, ctx());
            assert_eq!(y_full, y_none);
        }
    }

    #[test]
    fn recompute_shrinks_the_cache() {
        let full = block_stage(dims(), false);
        let none = block_stage(dims(), true);
        let (c_full, _) = full.forward(Some(sample_input()), None, ctx());
        let (c_none, _) = none.forward(Some(sample_input()), None, ctx());
        assert!(c_full.saved_bytes() < c_none.saved_bytes());
    }

    #[test]
    fn gradients_are_bit_identical_across_strategies() {
        for d in [dims(), llama_dims()] {
            let mut full = block_stage(d, false);
            let mut none = block_stage(d, true);
            let (c_full, _) = full.forward(Some(sample_input()), None, ctx());
            let (c_none, _) = none.forward(Some(sample_input()), None, ctx());
            let seed = Tensor::from_vec(6, 16, vec![0.01; 96]);
            let g_full = full.backward(&c_full, seed.clone()).unwrap();
            let g_none = none.backward(&c_none, seed).unwrap();
            assert_eq!(g_full, g_none);
            for (uf, un) in full.units().iter().zip(none.units()) {
                assert_eq!(uf.grads, un.grads, "{:?}", uf.kind);
            }
        }
    }

    #[test]
    fn dropout_is_replayed_exactly_under_recomputation() {
        // With dropout active, a recomputing stage must regenerate the
        // same masks in backward as the forward used — counter-based RNG
        // makes the gradients bit-identical to the all-saved stage.
        let d = TinyDims {
            dropout: 0.25,
            ..dims()
        };
        let mut full = block_stage(d, false);
        let mut none = block_stage(d, true);
        let (c_full, y_full) = full.forward(Some(sample_input()), None, ctx());
        let (c_none, y_none) = none.forward(Some(sample_input()), None, ctx());
        assert_eq!(y_full, y_none);
        let seed = Tensor::from_vec(6, 16, vec![0.01; 96]);
        let g_full = full.backward(&c_full, seed.clone()).unwrap();
        let g_none = none.backward(&c_none, seed).unwrap();
        assert_eq!(g_full, g_none);
        for (uf, un) in full.units().iter().zip(none.units()) {
            assert_eq!(uf.grads, un.grads, "{:?}", uf.kind);
        }
    }

    #[test]
    fn dropout_masks_differ_across_microbatches() {
        let d = TinyDims {
            dropout: 0.25,
            ..dims()
        };
        let stage = block_stage(d, true);
        let (_, y0) = stage.forward(
            Some(sample_input()),
            None,
            ExecCtx {
                step: 0,
                micro_batch: 0,
            },
        );
        let (_, y1) = stage.forward(
            Some(sample_input()),
            None,
            ExecCtx {
                step: 0,
                micro_batch: 1,
            },
        );
        let (_, y2) = stage.forward(
            Some(sample_input()),
            None,
            ExecCtx {
                step: 1,
                micro_batch: 0,
            },
        );
        assert_ne!(y0, y1);
        assert_ne!(y0, y2);
    }

    #[test]
    fn stage_input_gradient_matches_finite_differences() {
        for d in [dims(), llama_dims()] {
            let mut stage = block_stage(d, false);
            let x0 = sample_input();
            let loss = |x: &Tensor, stage: &StageModule| {
                let (_, y) = stage.forward(Some(x.clone()), None, ctx());
                y.data().iter().sum::<f32>()
            };
            let fd = {
                let mut plus = x0.clone();
                plus.data_mut()[5] += 1e-2;
                let mut minus = x0.clone();
                minus.data_mut()[5] -= 1e-2;
                (loss(&plus, &stage) - loss(&minus, &stage)) / 2e-2
            };
            let (cache, y) = stage.forward(Some(x0), None, ctx());
            let seed = Tensor::from_vec(y.rows(), y.cols(), vec![1.0; y.len()]);
            let g = stage.backward(&cache, seed).unwrap();
            assert!(
                (g.data()[5] - fd).abs() < 2e-2 * (1.0 + fd.abs()),
                "autograd {} vs fd {fd} (swiglu={})",
                g.data()[5],
                d.swiglu
            );
        }
    }

    #[test]
    fn embedding_stage_returns_no_input_grad() {
        let mut rng = init_rng(1);
        let units = build_layer_units(dims(), LayerKind::Embedding, 0, &mut rng);
        let saved = vec![true; units.len()];
        let mut stage = StageModule::new_simple(units, saved, dims().heads);
        let ids = [1usize, 5, 3, 2];
        let (cache, y) = stage.forward(None, Some(&ids), ctx());
        assert_eq!(y.rows(), 4);
        let g = stage.backward(&cache, Tensor::zeros(4, 16));
        assert!(g.is_none());
    }

    #[test]
    #[should_panic(expected = "pinned unit")]
    fn pinned_units_cannot_be_dropped() {
        let mut rng = init_rng(1);
        let units = build_layer_units(dims(), LayerKind::Attention, 1, &mut rng);
        let saved = vec![false; units.len()];
        let _ = StageModule::new_simple(units, saved, dims().heads);
    }
}
