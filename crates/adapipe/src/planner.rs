use crate::error::PlanError;
use crate::evaluate::{Evaluation, Throughput};
use crate::method::Method;
use crate::plan::{Plan, StagePlan};
use adapipe_exec::ExecPool;
use adapipe_hw::ClusterSpec;
use adapipe_memory::{f1b_live_microbatches, MemoryModel, OptimizerSpec, StageMemory};
use adapipe_model::{LayerRange, LayerSeq, ModelSpec, ParallelConfig, TrainConfig};
use adapipe_obs::{keys, Recorder};
use adapipe_partition::{
    algorithm1, f1b_iteration_time, subcache, KnapsackCostProvider, StageTimes,
};
use adapipe_profiler::{ProfileTable, Profiler};
use adapipe_recompute::{strategy, KnapsackConfig, RecomputeStrategy};
use adapipe_sim::{schedule, simulate_traced, StageExec};
use adapipe_units::{convert, Bytes, Flops, FlopsPerSec};
use std::sync::Arc;

/// The AdaPipe search engine plus baseline planners and the evaluation
/// harness (§6: "AdaPipe consists of a search engine and an execution
/// engine" — here the execution engine is the discrete-event simulator).
#[derive(Debug, Clone)]
pub struct Planner {
    model: ModelSpec,
    cluster: ClusterSpec,
    optimizer: OptimizerSpec,
    /// Fraction of device memory the adaptive search may plan into. The
    /// paper runs its DP against a conservative 70 GB limit on 80 GB
    /// devices (§7.4); 0.875 reproduces that.
    search_headroom: f64,
    knapsack: KnapsackConfig,
    rec: Recorder,
    /// Work-stealing pool for parallel leaf prefill; `None` keeps the
    /// search fully serial (the default — plans are byte-identical
    /// either way, see docs/parallel.md).
    exec: Option<Arc<ExecPool>>,
    /// Whether adaptive searches consult the process-global
    /// content-addressed subproblem cache. Off by default so one-shot
    /// planners keep exact per-plan knapsack counters; the serving
    /// daemon turns it on to warm-start across requests.
    shared_subcache: bool,
}

pub(crate) struct Context {
    pub seq: LayerSeq,
    pub table: ProfileTable,
    pub mem: MemoryModel,
    pub n: usize,
}

impl Planner {
    /// Creates a planner for `model` on `cluster` with the paper's
    /// defaults (FP32 Adam + ZeRO-1, 87.5 % search headroom).
    #[must_use]
    pub fn new(model: ModelSpec, cluster: ClusterSpec) -> Self {
        Planner {
            model,
            cluster,
            optimizer: OptimizerSpec::adam_fp32(),
            search_headroom: 0.875,
            knapsack: KnapsackConfig::default(),
            rec: Recorder::disabled(),
            exec: None,
            shared_subcache: false,
        }
    }

    /// Attaches a work-stealing pool: `plan(AdaPipe, ..)` evaluates the
    /// isomorphism-class representative leaves in parallel over it
    /// before the serial Algorithm 1 sweep. The resulting plan is
    /// byte-identical to the serial one at any thread count; pools with
    /// a single worker are equivalent to `None`.
    #[must_use]
    pub fn with_exec_pool(mut self, pool: Arc<ExecPool>) -> Self {
        self.exec = Some(pool);
        self
    }

    /// Enables the process-global content-addressed subproblem cache
    /// ([`adapipe_partition::subcache::global`]): knapsack leaves are
    /// keyed by their layer-window *profile* and shared across plans and
    /// requests, so a cold plan for a similar model warm-starts from
    /// cached leaves. Replayed leaves are byte-identical to freshly
    /// solved ones; per-plan knapsack-effort counters shrink on hits,
    /// which is why this is opt-in.
    #[must_use]
    pub fn with_shared_subcache(mut self, enabled: bool) -> Self {
        self.shared_subcache = enabled;
        self
    }

    /// Attaches an observability recorder. Every phase of the search —
    /// profiling, the partition DP (and the recomputation knapsacks and
    /// isomorphism cache under it), plan materialization and the
    /// simulator — reports spans and counters to it; pass the same
    /// recorder to several planners to aggregate a sweep.
    #[must_use]
    pub fn with_recorder(mut self, rec: Recorder) -> Self {
        self.rec = rec;
        self
    }

    /// The recorder this planner reports to (disabled unless
    /// [`Planner::with_recorder`] was called).
    #[must_use]
    pub fn recorder(&self) -> &Recorder {
        &self.rec
    }

    /// Overrides the recomputation-knapsack tuning (coarser memory cells
    /// trade a sliver of plan quality for faster sweeps).
    #[must_use]
    pub fn with_knapsack_config(mut self, knapsack: KnapsackConfig) -> Self {
        self.knapsack = knapsack;
        self
    }

    /// Overrides the optimizer memory description.
    #[must_use]
    pub fn with_optimizer(mut self, optimizer: OptimizerSpec) -> Self {
        self.optimizer = optimizer;
        self
    }

    /// Overrides the fraction of device memory the adaptive search may
    /// fill (baselines are always checked against the full capacity).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < headroom <= 1`.
    #[must_use]
    pub fn with_search_headroom(mut self, headroom: f64) -> Self {
        assert!(
            headroom > 0.0 && headroom <= 1.0,
            "headroom must be in (0, 1]"
        );
        self.search_headroom = headroom;
        self
    }

    /// The model being planned for.
    #[must_use]
    pub fn model(&self) -> &ModelSpec {
        &self.model
    }

    /// The cluster being planned for.
    #[must_use]
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Usable device memory (capacity minus the device's
    /// driver/communication reservation).
    #[must_use]
    pub fn capacity(&self) -> Bytes {
        self.cluster.device().usable_bytes()
    }

    pub(crate) fn search_capacity(&self) -> Bytes {
        Bytes::new((self.capacity().as_f64() * self.search_headroom) as u64)
    }

    pub(crate) fn knapsack_config(&self) -> KnapsackConfig {
        self.knapsack
    }

    pub(crate) fn context(&self, parallel: ParallelConfig, train: TrainConfig) -> Context {
        let _span = self.rec.span_cat(keys::SPAN_PLAN_PROFILE, "planner");
        let table = Profiler::new(self.cluster.clone()).profile(&self.model, &parallel, &train);
        Context {
            seq: LayerSeq::for_model(&self.model),
            table,
            mem: MemoryModel::new(self.model.clone(), parallel, self.optimizer),
            n: train.micro_batches(&parallel),
        }
    }

    /// Produces a plan with `method` for the given 3D parallelism and
    /// workload.
    ///
    /// Baseline plans (`Dapple*`, `Chimera*`, `Gpipe*`) are produced even
    /// when they exceed device memory — the paper reports those bars as
    /// OOM, which [`Planner::evaluate`] flags via
    /// [`Evaluation::fits`]. The adaptive methods (`AdaPipe`,
    /// `EvenPartitioning`) search under the memory constraint and return
    /// [`PlanError::OutOfMemory`] when no feasible strategy exists.
    ///
    /// # Errors
    ///
    /// [`PlanError::Config`] for invalid workload/parallelism
    /// combinations, [`PlanError::Unsupported`] for method-specific
    /// constraints (Chimera needs even `p` and `n` divisible by `p`),
    /// [`PlanError::OutOfMemory`] as described above.
    pub fn plan(
        &self,
        method: Method,
        parallel: ParallelConfig,
        train: TrainConfig,
    ) -> Result<Plan, PlanError> {
        let _span = self
            .rec
            .span_cat(keys::SPAN_PLAN, "planner")
            .with_arg("method", &method);
        train.validate_for(&parallel)?;
        if parallel.tensor() > self.cluster.devices_per_node() {
            return Err(PlanError::Unsupported {
                reason: format!(
                    "tensor parallelism {} exceeds the {} accelerators of one node                      (cross-node TP is prohibitively slow; the paper caps t at 8)",
                    parallel.tensor(),
                    self.cluster.devices_per_node()
                ),
            });
        }
        let ctx = self.context(parallel, train);
        let p = parallel.pipeline();

        if method.is_chimera() {
            if !p.is_multiple_of(2) {
                return Err(PlanError::Unsupported {
                    reason: format!("chimera needs an even pipeline size, got {p}"),
                });
            }
            if !ctx.n.is_multiple_of(p) {
                return Err(PlanError::Unsupported {
                    reason: format!("chimera needs n divisible by p ({} vs {p})", ctx.n),
                });
            }
        }

        let stages = match method {
            Method::AdaPipe => self.plan_adapipe(&ctx, parallel)?,
            Method::EvenPartitioning => self.plan_even_adaptive(&ctx, parallel)?,
            _ => self.plan_fixed(&ctx, parallel, method),
        };

        let predicted = match method {
            Method::GpipeFull | Method::GpipeNone => None,
            Method::InterleavedFull | Method::InterleavedNone => None,
            m if m.is_chimera() => None,
            _ => {
                let times: Vec<StageTimes> = stages
                    .iter()
                    .map(|s| StageTimes {
                        f: s.cost.time_f,
                        b: s.cost.time_b,
                    })
                    .collect();
                Some(f1b_iteration_time(&times, ctx.n))
            }
        };

        let plan = Plan {
            method,
            parallel,
            train,
            n_microbatches: ctx.n,
            stages,
            predicted,
        };
        // Search-engine self-check: in debug builds every emitted plan
        // must pass the full static invariant catalog (memory overflow
        // stays a warning for baselines — the paper reports those as OOM
        // bars rather than refusing to plan them).
        #[cfg(debug_assertions)]
        {
            let report = self.verify_with(&plan, crate::verify::VerifyOptions::quick());
            debug_assert!(
                !report.has_errors(),
                "planner emitted an invalid {method} plan:\n{report}"
            );
            // Soundness half of the optimality certificate: the analytic
            // lower bound may never exceed the plan's own predicted cost.
            // (The ε-band half is a property of the *search*, checked by
            // `verify --optimality`, not of every emitted plan.)
            if let Some(cert) = self.certificate(&plan) {
                debug_assert!(
                    cert.lower_bound <= cert.plan_cost * (1.0 + 1e-9),
                    "plan certificate claims an unsound lower bound: {cert}"
                );
            }
        }
        Ok(plan)
    }

    /// Builds the adaptive-search cost provider, attaching the global
    /// subproblem cache when [`Planner::with_shared_subcache`] opted in.
    fn adaptive_provider<'a>(&self, ctx: &'a Context) -> KnapsackCostProvider<'a> {
        let provider =
            KnapsackCostProvider::new(&ctx.seq, &ctx.table, &ctx.mem, self.search_capacity())
                .with_knapsack_config(self.knapsack)
                .with_recorder(self.rec.clone());
        if self.shared_subcache {
            provider.with_subproblem_cache(subcache::global())
        } else {
            provider
        }
    }

    /// AdaPipe proper: Algorithm 1 over knapsack-optimized windows. With
    /// an attached [`ExecPool`], the isomorphism-class representatives
    /// of every window the DP can query are knapsack-optimized in
    /// parallel first; the serial sweep then runs against the warm cache
    /// and produces the same bytes it would have produced alone.
    fn plan_adapipe(
        &self,
        ctx: &Context,
        parallel: ParallelConfig,
    ) -> Result<Vec<StagePlan>, PlanError> {
        let provider = self.adaptive_provider(ctx);
        if let Some(pool) = &self.exec {
            let _span = self.rec.span_cat(keys::SPAN_PLAN_PREFILL, "planner");
            let windows = algorithm1::reachable_windows(ctx.seq.len(), parallel.pipeline());
            let computed = provider.prefill(pool, &windows)?;
            let stats = pool.stats();
            self.rec
                .gauge(keys::EXEC_POOL_WORKERS, convert::count_f64(pool.threads()));
            self.rec
                .gauge(keys::EXEC_POOL_BATCHES, convert::u64_f64(stats.batches));
            self.rec
                .gauge(keys::EXEC_POOL_TASKS, convert::u64_f64(stats.tasks));
            self.rec
                .gauge(keys::EXEC_POOL_STEALS, convert::u64_f64(stats.steals));
            self.rec.gauge(
                keys::EXEC_POOL_QUEUE_DEPTH_MAX,
                convert::u64_f64(stats.max_queue_depth),
            );
            self.rec
                .add(keys::PREFILL_LEAVES, convert::usize_u64(computed));
        }
        let plan = {
            let _span = self.rec.span_cat(keys::SPAN_PLAN_PARTITION, "planner");
            algorithm1::solve_traced(
                &provider,
                ctx.seq.len(),
                parallel.pipeline(),
                ctx.n,
                &self.rec,
            )
        }
        .ok_or(PlanError::OutOfMemory {
            context: "adaptive partitioning DP",
        })?;
        self.materialize_adaptive(ctx, parallel, &provider, &plan.ranges)
    }

    /// Even Partitioning ablation: baseline boundaries, adaptive
    /// recomputation per stage.
    fn plan_even_adaptive(
        &self,
        ctx: &Context,
        parallel: ParallelConfig,
    ) -> Result<Vec<StagePlan>, PlanError> {
        // Only p windows are queried here; prefill overhead would exceed
        // the work, so the even ablation gets the subcache but no pool.
        let provider = self.adaptive_provider(ctx);
        let ranges = ctx.seq.even_partition(parallel.pipeline());
        self.materialize_adaptive(ctx, parallel, &provider, &ranges)
    }

    fn materialize_adaptive(
        &self,
        ctx: &Context,
        parallel: ParallelConfig,
        provider: &KnapsackCostProvider<'_>,
        ranges: &[LayerRange],
    ) -> Result<Vec<StagePlan>, PlanError> {
        let _span = self.rec.span_cat(keys::SPAN_PLAN_MATERIALIZE, "planner");
        // Materialize-boundary self-check: Algorithm 1 (and the even
        // ablation) must hand over a contiguous, monotone cover of the
        // layer sequence before any stage is committed.
        #[cfg(debug_assertions)]
        {
            let diags = adapipe_check::check_partition(ranges, ctx.seq.len());
            debug_assert!(
                diags.is_empty(),
                "partitioning produced an invalid layer cover: {diags:?}"
            );
        }
        let mut stages = Vec::with_capacity(ranges.len());
        for (s, &range) in ranges.iter().enumerate() {
            let opt = provider.optimize_stage(s, range)?;
            let units = ctx.table.units_in(range);
            let buffer = strategy::buffer_bytes_of(&units, &opt.strategy);
            let live = f1b_live_microbatches(parallel.pipeline(), s) as u64;
            stages.push(StagePlan {
                range,
                memory: StageMemory {
                    static_bytes: ctx.mem.static_bytes(&ctx.seq, range),
                    buffer_bytes: buffer,
                    intermediate_bytes: live * opt.cost.saved_bytes_per_mb,
                },
                strategy: opt.strategy,
                cost: opt.cost,
            });
        }
        Ok(stages)
    }

    /// Non-adaptive baselines: even partition + full/no recomputation.
    /// Interleaved methods partition into `p · v` virtual-stage chunks;
    /// chunk `vs` runs on device `vs % p`.
    fn plan_fixed(
        &self,
        ctx: &Context,
        parallel: ParallelConfig,
        method: Method,
    ) -> Vec<StagePlan> {
        let p = parallel.pipeline();
        let vp = p * method.virtual_chunks();
        let ranges = ctx.seq.even_partition(vp);
        ranges
            .iter()
            .enumerate()
            .map(|(s, &range)| {
                let units = ctx.table.units_in(range);
                let strat: RecomputeStrategy = if method.saves_everything() {
                    strategy::none(&units)
                } else if method == Method::DappleSelective {
                    strategy::selective(&units)
                } else {
                    strategy::full(&units)
                };
                let cost = strategy::cost_of(&units, &strat);
                let buffer = strategy::buffer_bytes_of(&units, &strat);
                // Live micro-batch counts: p − s for 1F1B; all n for
                // GPipe; Chimera holds both directions' activations with
                // a direction-dependent profile — we charge the analytic
                // worst case here and let the simulator refine it.
                let live = method.live_microbatches(p, s, ctx.n) as u64;
                StagePlan {
                    range,
                    memory: StageMemory {
                        static_bytes: expected_static_bytes(ctx, method, &ranges, s),
                        buffer_bytes: buffer,
                        intermediate_bytes: live * cost.saved_bytes_per_mb,
                    },
                    strategy: strat,
                    cost,
                }
            })
            .collect()
    }

    /// Derives throughput metrics (tokens/s, MFU) from an evaluation.
    ///
    /// MFU counts only *useful* math (the standard `6 · params · tokens`
    /// forward+backward estimate), so recomputation-heavy plans report
    /// lower utilization even when their devices are equally busy —
    /// which is exactly the waste AdaPipe removes.
    #[must_use]
    pub fn throughput(&self, plan: &Plan, eval: &Evaluation) -> Throughput {
        let tokens = plan.train.tokens_per_iteration() as f64;
        let devices = plan.parallel.devices() as f64;
        let useful_flops = Flops::new(6.0 * self.model.total_params() as f64 * tokens);
        let peak: FlopsPerSec = self.cluster.device().peak_flops() * devices;
        Throughput {
            tokens_per_second: tokens / eval.iteration_time.as_secs(),
            mfu: useful_flops / (eval.iteration_time * peak),
        }
    }

    /// Builds the task graph `plan` would execute — the same graph
    /// [`Planner::evaluate`] simulates and the verifier checks
    /// statically, on one code path so they cannot drift.
    ///
    /// # Panics
    ///
    /// Panics if the plan violates its schedule's preconditions (fewer
    /// micro-batches than stages for 1F1B, odd pipelines for Chimera);
    /// [`Planner::verify`](crate::Planner::verify) reports those as
    /// diagnostics instead.
    pub(crate) fn build_schedule(&self, plan: &Plan, ctx: &Context) -> adapipe_sim::TaskGraph {
        let p = plan.parallel.pipeline();
        let execs: Vec<StageExec> = plan
            .stages
            .iter()
            .map(|s| StageExec {
                time_f: s.cost.time_f,
                time_b: s.cost.time_b,
                saved_bytes: s.cost.saved_bytes_per_mb,
                buffer_bytes: s.memory.buffer_bytes,
            })
            .collect();
        let p2p = self.cluster.p2p_time(ctx.table.boundary_bytes());
        match plan.method {
            Method::GpipeFull | Method::GpipeNone => schedule::gpipe(&execs, ctx.n, p2p),
            Method::ChimeraFull | Method::ChimeraNone => {
                schedule::chimera(&execs, ctx.n, p2p, false)
            }
            Method::ChimeraDFull | Method::ChimeraDNone => {
                schedule::chimera(&execs, ctx.n, p2p, true)
            }
            Method::InterleavedFull | Method::InterleavedNone => {
                schedule::interleaved(&execs, p, ctx.n, p2p)
            }
            _ => schedule::one_f_one_b(&execs, ctx.n, p2p),
        }
    }

    /// Executes `plan` on the discrete-event simulator and reports what
    /// the paper measures: iteration time, per-device peak memory and
    /// whether the plan fits the devices.
    ///
    /// # Panics
    ///
    /// Panics if the plan's stage count does not match its parallel
    /// configuration (corrupted plan).
    #[must_use]
    pub fn evaluate(&self, plan: &Plan) -> Evaluation {
        let _span = self
            .rec
            .span_cat(keys::SPAN_EVALUATE, "planner")
            .with_arg("method", &plan.method);
        let ctx = self.context(plan.parallel, plan.train);
        let p = plan.parallel.pipeline();
        let vp = p * plan.method.virtual_chunks();
        assert_eq!(plan.stages.len(), vp, "plan stage count mismatch");

        let graph = self.build_schedule(plan, &ctx);
        // Evaluate-boundary self-check: the generated task graph must be
        // statically executable (acyclic, fixed-order-feasible) before
        // the engine runs it — the engine's own deadlock panic fires too
        // late to say *why*.
        #[cfg(debug_assertions)]
        {
            let diags = adapipe_check::check_task_graph(&graph);
            debug_assert!(
                diags.is_empty(),
                "schedule generator emitted an invalid task graph: {diags:?}"
            );
        }
        let mut report = {
            let _span = self.rec.span_cat(keys::SPAN_EVALUATE_SIMULATE, "planner");
            simulate_traced(&graph, &self.rec)
        };

        // End-of-iteration gradient all-reduce across the data-parallel
        // group (the heaviest stage's gradients bound the synchronization).
        if plan.parallel.data() > 1 {
            let grad_bytes = plan
                .stages
                .iter()
                .map(|st| {
                    Bytes::new(
                        self.model.range_params(&ctx.seq, st.range)
                            * self.model.dtype_bytes() as u64
                            / plan.parallel.tensor() as u64,
                    )
                })
                .max()
                .unwrap_or(Bytes::ZERO);
            report.makespan += self
                .cluster
                .grad_allreduce_time(grad_bytes, plan.parallel.data());
        }

        let capacity = self.capacity();
        let peaks: Vec<Bytes> = report
            .devices
            .iter()
            .enumerate()
            .map(|(dev, d)| {
                // A device's static memory sums over every chunk it
                // hosts (one for plain pipelines, v for interleaved;
                // Chimera's replica pair is already folded into each
                // stage's static_bytes).
                let static_bytes: Bytes = plan
                    .stages
                    .iter()
                    .enumerate()
                    .filter(|(vs, _)| vs % p == dev)
                    .map(|(_, st)| st.memory.static_bytes)
                    .sum();
                static_bytes.saturating_add(d.peak_dynamic_bytes)
            })
            .collect();
        let fits = peaks.iter().all(|&b| b.fits(capacity));
        Evaluation {
            iteration_time: report.makespan,
            peak_bytes_per_device: peaks,
            capacity,
            fits,
            report,
        }
    }
}

/// Static bytes hosted for stage `s` of a `method` plan over `ranges`.
/// For Chimera each device hosts two stages — stage `s` of the down
/// pipeline and stage `p − 1 − s` of the up pipeline. Parameters and
/// gradients are replicated, but the two replicas form a data-parallel
/// pair, so ZeRO shards the optimizer states across them.
///
/// Shared between plan materialization and the verifier so the
/// memory-accounting check is exact by construction.
pub(crate) fn expected_static_bytes(
    ctx: &Context,
    method: Method,
    ranges: &[LayerRange],
    s: usize,
) -> Bytes {
    let range = ranges[s];
    if method.is_chimera() {
        let p = ranges.len();
        let (pg_a, opt_a) = ctx.mem.static_bytes_split(&ctx.seq, range);
        let (pg_b, opt_b) = ctx.mem.static_bytes_split(&ctx.seq, ranges[p - 1 - s]);
        pg_a.saturating_add(pg_b)
            .saturating_add(opt_a.saturating_add(opt_b) / 2)
    } else {
        ctx.mem.static_bytes(&ctx.seq, range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapipe_hw::presets as hw;
    use adapipe_model::presets;
    use adapipe_units::MicroSecs;

    fn small() -> Result<(Planner, ParallelConfig, TrainConfig), PlanError> {
        Ok((
            Planner::new(presets::gpt2_small(), hw::cluster_a()),
            ParallelConfig::new(2, 4, 1)?,
            TrainConfig::new(1, 1024, 32)?,
        ))
    }

    #[test]
    fn adapipe_beats_or_ties_every_feasible_baseline() -> Result<(), PlanError> {
        let (planner, parallel, train) = small()?;
        let ada = planner.plan(Method::AdaPipe, parallel, train)?;
        let ada_t = planner.evaluate(&ada).iteration_time;
        for m in [Method::DappleFull, Method::EvenPartitioning] {
            let base = planner.plan(m, parallel, train)?;
            let t = planner.evaluate(&base).iteration_time;
            assert!(ada_t <= t * 1.0001, "{m}: adapipe {ada_t} vs {t}");
        }
        Ok(())
    }

    #[test]
    fn plans_have_valid_partitions() -> Result<(), PlanError> {
        let (planner, parallel, train) = small()?;
        for m in Method::all() {
            let Ok(plan) = planner.plan(m, parallel, train) else {
                continue;
            };
            let seq = LayerSeq::for_model(planner.model());
            assert!(seq.is_valid_partition(&plan.ranges()), "{m}");
        }
        Ok(())
    }

    #[test]
    fn dapple_full_and_none_bracket_adaptive_backward_time() -> Result<(), PlanError> {
        let (planner, parallel, train) = small()?;
        let full = planner.plan(Method::DappleFull, parallel, train)?;
        let none = planner.plan(Method::DappleNone, parallel, train)?;
        let even = planner.plan(Method::EvenPartitioning, parallel, train)?;
        for s in 0..4 {
            let b = even.stages[s].cost.time_b;
            assert!(b <= full.stages[s].cost.time_b + MicroSecs::new(1e-6));
            assert!(b >= none.stages[s].cost.time_b - MicroSecs::new(1e-6));
        }
        Ok(())
    }

    #[test]
    fn saved_units_grow_along_the_pipeline() -> Result<(), PlanError> {
        // Table 4's monotone pattern under its own setting: GPT-3,
        // sequence 16384, (t, p, d) = (8, 8, 1). Later stages hold fewer
        // in-flight micro-batches and save more units.
        let planner = Planner::new(presets::gpt3_175b(), hw::cluster_a());
        let parallel = ParallelConfig::new(8, 8, 1)?;
        let train = TrainConfig::new(1, 16384, 32)?;
        let even = planner.plan(Method::EvenPartitioning, parallel, train)?;
        let saved = even.saved_units_per_stage();
        // Interior stages are structurally identical (the first/last also
        // carry embedding/head), so compare stages 1..=6.
        for w in saved[1..7].windows(2) {
            assert!(w[0] <= w[1], "saved units {saved:?}");
        }
        // And the first stage saves strictly less than the last interior
        // stage — the imbalance AdaPipe exploits.
        assert!(saved[1] < saved[6], "saved units {saved:?}");
        Ok(())
    }

    #[test]
    fn cross_node_tensor_parallelism_is_rejected() -> Result<(), PlanError> {
        let planner = Planner::new(presets::gpt2_small(), hw::cluster_a());
        let parallel = ParallelConfig::new(16, 2, 1)?;
        let train = TrainConfig::new(1, 1024, 32)?;
        assert!(matches!(
            planner.plan(Method::DappleFull, parallel, train),
            Err(PlanError::Unsupported { .. })
        ));
        Ok(())
    }

    #[test]
    fn data_parallel_sync_adds_iteration_time() -> Result<(), PlanError> {
        // Same per-replica work (n held fixed), but d=2 pays a gradient
        // all-reduce at the end of the iteration.
        let planner = Planner::new(presets::gpt2_small(), hw::cluster_a());
        let t1 = {
            let parallel = ParallelConfig::new(2, 4, 1)?;
            let train = TrainConfig::new(1, 1024, 32)?;
            let plan = planner.plan(Method::DappleFull, parallel, train)?;
            planner.evaluate(&plan).iteration_time
        };
        let t2 = {
            let parallel = ParallelConfig::new(2, 4, 2)?;
            let train = TrainConfig::new(1, 1024, 64)?; // same n = 32
            let plan = planner.plan(Method::DappleFull, parallel, train)?;
            planner.evaluate(&plan).iteration_time
        };
        assert!(t2 > t1, "d=2 {t2} should exceed d=1 {t1}");
        Ok(())
    }

    #[test]
    fn chimera_requires_even_pipeline() -> Result<(), PlanError> {
        let planner = Planner::new(presets::gpt2_small(), hw::cluster_a());
        let parallel = ParallelConfig::new(2, 3, 1)?;
        let train = TrainConfig::new(1, 1024, 30)?;
        assert!(matches!(
            planner.plan(Method::ChimeraFull, parallel, train),
            Err(PlanError::Unsupported { .. })
        ));
        Ok(())
    }

    #[test]
    fn chimera_static_memory_is_doubled() -> Result<(), PlanError> {
        let (planner, parallel, train) = small()?;
        let dapple = planner.plan(Method::DappleFull, parallel, train)?;
        let chimera = planner.plan(Method::ChimeraFull, parallel, train)?;
        for s in 0..4 {
            assert!(chimera.stages[s].memory.static_bytes > dapple.stages[s].memory.static_bytes);
        }
        Ok(())
    }

    #[test]
    fn invalid_train_config_is_rejected() -> Result<(), PlanError> {
        let (planner, parallel, _) = small()?;
        let train = TrainConfig::new(1, 1024, 3)?; // n < p
        assert!(matches!(
            planner.plan(Method::AdaPipe, parallel, train),
            Err(PlanError::Config(_))
        ));
        Ok(())
    }

    #[test]
    fn throughput_metrics_are_sane_and_favor_less_recomputation() -> Result<(), PlanError> {
        let (planner, parallel, train) = small()?;
        let full = planner.plan(Method::DappleFull, parallel, train)?;
        let none = planner.plan(Method::DappleNone, parallel, train)?;
        let tf = planner.throughput(&full, &planner.evaluate(&full));
        let tn = planner.throughput(&none, &planner.evaluate(&none));
        for t in [tf, tn] {
            assert!(t.tokens_per_second > 0.0);
            assert!(t.mfu > 0.0 && t.mfu < 1.0, "mfu {}", t.mfu);
        }
        // Same useful math, shorter iteration: no-recompute wins MFU.
        assert!(tn.mfu > tf.mfu);
        assert!(tn.tokens_per_second > tf.tokens_per_second);
        Ok(())
    }

    #[test]
    fn evaluation_matches_analytic_model_for_1f1b() -> Result<(), PlanError> {
        // The discrete-event simulator and the Equation (3) cost model
        // must agree (up to P2P delays, which the analytic model folds
        // away at zero).
        let (planner, parallel, train) = small()?;
        let plan = planner.plan(Method::DappleFull, parallel, train)?;
        let eval = planner.evaluate(&plan);
        let analytic = plan.predicted_time().ok_or(PlanError::Unsupported {
            reason: "plan has no analytic prediction".to_string(),
        })?;
        let rel = (eval.iteration_time - analytic).abs() / analytic;
        assert!(
            rel < 0.05,
            "sim {} vs analytic {analytic}",
            eval.iteration_time
        );
        Ok(())
    }
}
