//! Fixture: a bare thread spawn in library code must fire
//! `unpooled-thread`.

pub fn fan_out(items: &[u64]) -> Vec<u64> {
    let handle = std::thread::spawn(move || items.iter().sum());
    let short = thread::spawn(|| 42);
    drop(short);
    handle.join().unwrap_or_default()
}

pub fn pooled_is_fine(pool: &ExecPool, items: &[u64]) -> Vec<u64> {
    // Fork-join through the deterministic pool does not match.
    pool.map(items, |&i| i * 2).unwrap_or_default()
}

pub fn scoped_is_fine(items: &[u64]) {
    // `scope.spawn` / `s.spawn` is the pool's own building block and
    // does not match the bare-spawn pattern.
    std::thread::scope(|s| {
        s.spawn(|| items.len());
    });
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_threads_are_exempt() {
        let h = std::thread::spawn(|| 1);
        assert_eq!(h.join().unwrap(), 1);
    }
}
