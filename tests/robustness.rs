//! Robustness and determinism: the search must be stable under
//! profiling jitter (real measurements are noisy), byte-for-byte
//! reproducible across runs, and the fault-injection ladder must
//! degrade gracefully — typed events and verified replans, never
//! deadlocks or panics — for *any* seeded fault scenario.

use adapipe::{plan_io, ChaosConfig, Method, Planner};
use adapipe_faults::{DegradedCluster, Fault, FaultPlan};
use adapipe_hw::presets as hw;
use adapipe_memory::{MemoryModel, OptimizerSpec};
use adapipe_model::{presets, LayerSeq, ParallelConfig, TrainConfig};
use adapipe_profiler::{NoiseConfig, Profiler};
use adapipe_recompute::optimize;
use adapipe_units::{Bytes, MicroSecs};
use proptest::prelude::*;
use std::path::Path;

#[test]
fn knapsack_is_stable_under_measurement_noise() {
    // Profile the same stage with ±5 % jitter under several seeds: the
    // chosen strategy's backward time must stay within a few percent of
    // the noiseless optimum, and the budget must always be respected.
    let model = presets::gpt3_175b();
    let parallel = ParallelConfig::new(8, 8, 1).unwrap();
    let train = TrainConfig::new(1, 4096, 128).unwrap();
    let seq = LayerSeq::for_model(&model);
    let range = seq.even_partition(8)[2];

    let clean_table = Profiler::new(hw::cluster_a()).profile(&model, &parallel, &train);
    let clean_units = clean_table.units_in(range);
    let budget = clean_units.iter().map(|u| u.mem_saved).sum::<Bytes>() * 60 / 100;
    let clean = optimize(&clean_units, budget).unwrap();

    for seed in 0..8 {
        let noisy_table = Profiler::new(hw::cluster_a())
            .with_noise(NoiseConfig {
                amplitude: 0.05,
                seed,
            })
            .profile(&model, &parallel, &train);
        let noisy_units = noisy_table.units_in(range);
        let noisy = optimize(&noisy_units, budget).unwrap();
        assert!(noisy.cost.saved_bytes_per_mb <= budget, "seed {seed}");
        // Evaluate the noisy choice under the *clean* costs.
        let realized = adapipe_recompute::strategy::cost_of(&clean_units, &noisy.strategy);
        let rel = (realized.time_b - clean.cost.time_b).abs() / clean.cost.time_b;
        assert!(
            rel < 0.05,
            "seed {seed}: noisy strategy costs {rel:.3} more"
        );
    }
}

#[test]
fn planning_is_deterministic_across_planner_instances() {
    let parallel = ParallelConfig::new(8, 8, 1).unwrap();
    let train = TrainConfig::new(1, 4096, 128).unwrap();
    let run = || {
        let planner = Planner::new(presets::gpt3_175b(), hw::cluster_a());
        let plan = planner.plan(Method::AdaPipe, parallel, train).unwrap();
        let eval = planner.evaluate(&plan);
        (
            plan_io::to_text(&plan),
            eval.iteration_time,
            eval.peak_bytes_per_device,
        )
    };
    let (text_a, time_a, peaks_a) = run();
    let (text_b, time_b, peaks_b) = run();
    assert_eq!(text_a, text_b, "plan text differs across runs");
    assert_eq!(time_a, time_b, "simulated time differs across runs");
    assert_eq!(peaks_a, peaks_b, "peaks differ across runs");
}

#[test]
fn memory_budget_monotonicity_in_capacity() {
    // More usable memory never slows the adaptive plan down.
    let parallel = ParallelConfig::new(8, 8, 1).unwrap();
    let train = TrainConfig::new(1, 16384, 32).unwrap();
    let mut last = MicroSecs::new(f64::INFINITY);
    for headroom in [0.6f64, 0.7, 0.8, 0.9, 1.0] {
        let planner =
            Planner::new(presets::gpt3_175b(), hw::cluster_a()).with_search_headroom(headroom);
        let Ok(plan) = planner.plan(Method::AdaPipe, parallel, train) else {
            continue;
        };
        let t = planner.evaluate(&plan).iteration_time;
        assert!(t <= last * 1.001, "headroom {headroom}: {t} > {last}");
        last = t;
    }
    assert!(last.is_finite(), "no headroom produced a feasible plan");
}

#[test]
fn noisy_profiles_still_produce_feasible_plans() {
    // End to end: a planner fed jittered measurements must still emit
    // plans that fit when executed under the jitter-free simulator.
    let model = presets::gpt3_175b();
    let parallel = ParallelConfig::new(8, 8, 1).unwrap();
    let train = TrainConfig::new(1, 8192, 64).unwrap();
    let seq = LayerSeq::for_model(&model);
    let mem = MemoryModel::new(model.clone(), parallel, OptimizerSpec::adam_fp32());

    for seed in [1u64, 2, 3] {
        let table = Profiler::new(hw::cluster_a())
            .with_noise(NoiseConfig {
                amplitude: 0.05,
                seed,
            })
            .profile(&model, &parallel, &train);
        let capacity = Bytes::new((hw::a100_80gb().usable_bytes().as_f64() * 0.875) as u64);
        let provider = adapipe_partition::KnapsackCostProvider::new(&seq, &table, &mem, capacity);
        let plan = adapipe_partition::algorithm1::solve(&provider, seq.len(), 8, 64)
            .expect("noisy profile still feasible");
        assert_eq!(plan.ranges.len(), 8);
        assert!(plan.iteration_time().is_finite());
    }
}

/// A small world the chaos property tests share: gpt2 on one node of
/// cluster A at (t=2, p=4).
fn chaos_world() -> (Planner, ParallelConfig, TrainConfig) {
    let planner = Planner::new(presets::gpt2_small(), hw::cluster_a_with_nodes(1));
    let parallel = ParallelConfig::new(2, 4, 1).unwrap();
    let train = TrainConfig::new(1, 512, 16).unwrap();
    (planner, parallel, train)
}

fn read_golden(rel: &str) -> String {
    // CARGO_MANIFEST_DIR is crates/adapipe; the shared fixtures live at
    // the workspace root.
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

proptest! {
    // Each case is a full plan → inject → detect → replan cycle;
    // 16 cases keeps the suite under a few seconds.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any seeded fault scenario terminates with typed events — the
    /// chaos run never deadlocks or panics — and whenever the ladder
    /// escalates to a replan, the replanned artifact passes the static
    /// verifier with zero error-severity diagnostics.
    #[test]
    fn arbitrary_fault_plans_degrade_gracefully(
        seed in 0u64..1_000_000,
        straggler_device in 0usize..8,
        factor in 0.4f64..1.0,
        shrink_mib in 0u64..48,
        stall_device in 0usize..8,
        stall_micro_batch in 0usize..16,
        delay_us in 0.0f64..20_000.0,
    ) {
        let (planner, parallel, train) = chaos_world();
        let faults = FaultPlan::new(seed)
            .with(Fault::Straggler {
                device: straggler_device,
                factor,
                from_step: 0,
            })
            .with(Fault::MemoryPressure {
                stage: straggler_device % 4,
                shrink: Bytes::from_mib(shrink_mib),
            })
            .with(Fault::TransientStall {
                device: stall_device,
                micro_batch: stall_micro_batch,
                delay: MicroSecs::new(delay_us),
            });
        let degraded = DegradedCluster::new(hw::cluster_a_with_nodes(1), faults);
        // Typed result, not a panic or a hang: injection may slow and
        // stall tasks but must never corrupt the 1F1B DAG.
        let outcome = planner
            .chaos_run(parallel, train, &degraded, &ChaosConfig::default())
            .expect("chaos run must terminate with typed events");
        if let Some(plan) = &outcome.replan.plan {
            let report = planner.verify(plan);
            prop_assert_eq!(
                report.error_count(), 0,
                "replanned plan failed verification:\n{}", report
            );
        }
        if let Some(report) = &outcome.verify {
            prop_assert_eq!(report.error_count(), 0, "chaos verify: {}", report);
        }
    }
}

/// The checked-in chaos scenario (stage-2 straggler at 0.6× compute) is
/// pinned byte-for-byte: same fault file, same report, same replanned
/// plan. Any drift in the watchdog, the ladder, or the report format is
/// a reviewable diff, not a silent behaviour change. Regenerate with:
/// `cargo run -p adapipe-cli -- chaos --faults tests/golden/chaos/straggler_stage2.faults
///    --out ... --replan-out ... --model gpt2 --cluster a --nodes 1
///    --tensor 2 --pipeline 4 --seq 512 --global-batch 16`
#[test]
fn golden_chaos_scenario_is_pinned_byte_for_byte() {
    let faults =
        FaultPlan::from_text(&read_golden("tests/golden/chaos/straggler_stage2.faults")).unwrap();
    let (planner, parallel, train) = chaos_world();
    let degraded = DegradedCluster::new(hw::cluster_a_with_nodes(1), faults);
    let outcome = planner
        .chaos_run(parallel, train, &degraded, &ChaosConfig::default())
        .unwrap();

    let report = read_golden("tests/golden/chaos/straggler_stage2.report");
    assert_eq!(outcome.report, report, "chaos report drifted");
    assert!(report.contains("action = replan"), "{report}");
    assert!(report.contains("improved = true"), "{report}");

    let replanned = outcome
        .replan
        .plan
        .expect("straggler escalates to a replan");
    let golden = read_golden("tests/golden/chaos/straggler_stage2.replan");
    assert_eq!(
        plan_io::to_text(&replanned),
        golden,
        "replanned plan drifted"
    );
    assert!(
        golden.starts_with("adapipe-plan v2"),
        "replanned golden must carry the v2 units header"
    );
}
