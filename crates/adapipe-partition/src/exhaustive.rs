//! Exhaustive partition search: the brute-force reference Algorithm 1 is
//! checked against. Exponential in the stage count — usable only for
//! small instances, which is exactly what tests and the DP-quality
//! benchmark need.

use crate::algorithm1::{evaluate_partition, PartitionPlan};
use crate::provider::StageCostProvider;
use adapipe_model::LayerRange;

/// Enumerates every partition of `num_layers` layers into `p` contiguous
/// stages, evaluates each with the full 1F1B cost model, and returns the
/// best feasible plan (or `None` if all choices are infeasible).
///
/// Complexity: `C(num_layers − 1, p − 1)` evaluations. Use for
/// `num_layers ≲ 25` only; Algorithm 1 covers the real sizes.
///
/// # Panics
///
/// Panics under the same conditions as
/// [`algorithm1::solve`](crate::algorithm1::solve).
#[must_use]
pub fn solve(
    provider: &impl StageCostProvider,
    num_layers: usize,
    p: usize,
    n: usize,
) -> Option<PartitionPlan> {
    assert!(p > 0, "pipeline size must be positive");
    assert!(
        p <= num_layers,
        "more stages ({p}) than layers ({num_layers})"
    );
    assert!(n >= p, "1F1B needs n >= p (n={n}, p={p})");

    let mut best: Option<PartitionPlan> = None;
    let mut ranges: Vec<LayerRange> = Vec::with_capacity(p);
    recurse(provider, num_layers, p, n, 0, 0, &mut ranges, &mut best);
    best
}

#[allow(clippy::too_many_arguments)] // recursion carries the full search state
fn recurse(
    provider: &impl StageCostProvider,
    l: usize,
    p: usize,
    n: usize,
    stage: usize,
    first: usize,
    ranges: &mut Vec<LayerRange>,
    best: &mut Option<PartitionPlan>,
) {
    if stage == p - 1 {
        ranges.push(LayerRange::new(first, l - 1));
        if let Some(plan) = evaluate_partition(provider, ranges, n) {
            if best
                .as_ref()
                .is_none_or(|b| plan.iteration_time() < b.iteration_time())
            {
                *best = Some(plan);
            }
        }
        ranges.pop();
        return;
    }
    // Stage takes [first..=j]; leave at least one layer per later stage.
    for j in first..=(l - (p - stage)) {
        ranges.push(LayerRange::new(first, j));
        recurse(provider, l, p, n, stage + 1, j + 1, ranges, best);
        ranges.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm1;
    use crate::cost::StageTimes;
    use adapipe_units::MicroSecs;

    struct Synthetic {
        weights: Vec<f64>,
    }

    impl StageCostProvider for Synthetic {
        fn stage_times(&self, _stage: usize, range: LayerRange) -> Option<StageTimes> {
            let f: f64 = self.weights[range.first..=range.last].iter().sum();
            Some(StageTimes {
                f: MicroSecs::new(f),
                b: MicroSecs::new(2.0 * f),
            })
        }
    }

    #[test]
    fn dp_never_loses_to_exhaustive() {
        for (l, p, n) in [(6usize, 2usize, 8usize), (8, 3, 8), (10, 4, 12), (9, 5, 10)] {
            let weights: Vec<f64> = (0..l)
                .map(|k| 1.0 + ((k * 7 + 3) % 5) as f64 * 0.31)
                .collect();
            let provider = Synthetic { weights };
            let dp = algorithm1::solve(&provider, l, p, n).unwrap();
            let brute = solve(&provider, l, p, n).unwrap();
            assert!(
                dp.iteration_time() <= brute.iteration_time() + MicroSecs::new(1e-9),
                "l={l} p={p} n={n}: dp {} vs brute {}",
                dp.iteration_time(),
                brute.iteration_time()
            );
        }
    }

    #[test]
    fn single_stage_takes_everything() {
        let provider = Synthetic {
            weights: vec![1.0; 5],
        };
        let plan = solve(&provider, 5, 1, 4).unwrap();
        assert_eq!(plan.ranges, vec![LayerRange::new(0, 4)]);
    }

    /// Provider where long windows are infeasible.
    struct Capped;

    impl StageCostProvider for Capped {
        fn stage_times(&self, _stage: usize, range: LayerRange) -> Option<StageTimes> {
            (range.len() <= 2).then_some(StageTimes {
                f: MicroSecs::new(1.0),
                b: MicroSecs::new(2.0),
            })
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]
        #[test]
        fn dp_matches_exhaustive_on_random_instances(
            weights in proptest::collection::vec(0.2f64..3.0, 4..11),
            p in 2usize..5,
            extra in 0usize..16,
        ) {
            proptest::prop_assume!(p <= weights.len());
            let l = weights.len();
            let n = p + extra;
            let provider = Synthetic { weights };
            let dp = algorithm1::solve(&provider, l, p, n).unwrap();
            let brute = solve(&provider, l, p, n).unwrap();
            // The printed Algorithm 1 is "near-optimal", not exact: its
            // per-stage objective weighs the bottleneck by (n − p + s),
            // which misjudges split points most when the pipeline is
            // barely filled (observed gaps: ~6 % at n = p, ~2 % slightly
            // above, none once the steady phase dominates). Hold it to
            // an empirically calibrated band — and never *better* than
            // brute force, which would indicate a cost-model bug.
            proptest::prop_assert!(
                dp.iteration_time() >= brute.iteration_time() - MicroSecs::new(1e-9),
                "dp beat exhaustive: {} vs {}", dp.iteration_time(), brute.iteration_time()
            );
            let band = if n < 2 * p { 1.10 } else { 1.05 };
            proptest::prop_assert!(
                dp.iteration_time() <= brute.iteration_time() * band + MicroSecs::new(1e-9),
                "dp {} vs brute {} (n={}, p={})", dp.iteration_time(), brute.iteration_time(), n, p
            );
        }
    }

    #[test]
    fn infeasible_everywhere_returns_none() {
        // 7 layers over 3 stages with max window 2 = at most 6 layers.
        assert!(solve(&Capped, 7, 3, 8).is_none());
        // 6 layers over 3 stages fits exactly.
        let plan = solve(&Capped, 6, 3, 8).unwrap();
        assert!(plan.ranges.iter().all(|r| r.len() == 2));
    }
}
