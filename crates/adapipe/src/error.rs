use adapipe_model::ConfigError;
use adapipe_recompute::StrategyError;
use std::error::Error;
use std::fmt;

/// Error returned by [`Planner::plan`](crate::Planner::plan).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlanError {
    /// The configuration itself is invalid (batch does not divide, fewer
    /// micro-batches than stages, ...).
    Config(ConfigError),
    /// No feasible recomputation/partitioning exists under the memory
    /// capacity: some stage cannot fit even with full recomputation.
    OutOfMemory {
        /// Which search step hit the wall.
        context: &'static str,
    },
    /// The method cannot run under this configuration (e.g. Chimera with
    /// an odd number of stages or `n` not a multiple of `p`).
    Unsupported {
        /// Human-readable reason.
        reason: String,
    },
    /// The parallel execution engine failed (a pooled leaf evaluation
    /// panicked). The serial path would have panicked outright; the pool
    /// contains it into this typed error instead.
    Exec {
        /// The contained [`adapipe_exec::ExecError`], rendered.
        detail: String,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Config(e) => write!(f, "invalid configuration: {e}"),
            PlanError::OutOfMemory { context } => {
                write!(f, "no memory-feasible plan exists ({context})")
            }
            PlanError::Unsupported { reason } => write!(f, "unsupported configuration: {reason}"),
            PlanError::Exec { detail } => write!(f, "parallel search engine failed: {detail}"),
        }
    }
}

impl Error for PlanError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlanError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for PlanError {
    fn from(e: ConfigError) -> Self {
        PlanError::Config(e)
    }
}

impl From<adapipe_exec::ExecError> for PlanError {
    fn from(e: adapipe_exec::ExecError) -> Self {
        PlanError::Exec {
            detail: e.to_string(),
        }
    }
}

impl From<StrategyError> for PlanError {
    fn from(_: StrategyError) -> Self {
        PlanError::OutOfMemory {
            context: "recomputation knapsack",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_chains_config_errors() {
        let e = PlanError::from(ConfigError::ZeroField { field: "x" });
        assert!(e.source().is_some());
        assert!(e.to_string().contains("invalid configuration"));
    }

    #[test]
    fn strategy_error_maps_to_oom() {
        let e = PlanError::from(StrategyError::OutOfMemory {
            required: adapipe_units::Bytes::new(2),
            budget: adapipe_units::Bytes::new(1),
        });
        assert!(matches!(e, PlanError::OutOfMemory { .. }));
    }
}
