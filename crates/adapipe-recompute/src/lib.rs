//! Adaptive recomputation (§4 of the paper).
//!
//! Given the computation units of one pipeline stage and that stage's
//! activation-memory budget, find the subset of units to *save* that
//! minimizes backward time — equivalently, maximize the forward time of
//! saved units, since each recomputed unit re-pays its forward cost in the
//! backward pass:
//!
//! ```text
//! Time_b(R) = Σ_U Time_b(U) + Σ_{U ∈ R} Time_f(U)
//! Mem(R)    = Const + (p − s) · Σ_{U ∉ R} Mem(U)
//! ```
//!
//! This is a 0/1 knapsack (Equations (1)–(2)), solved exactly by dynamic
//! programming over a GCD-rescaled memory axis (§5.3: activation sizes are
//! powers-of-two multiples of a common divisor, so dividing weights and
//! budget by their GCD shrinks the DP by orders of magnitude).
//!
//! The crate also provides the paper's baseline strategies — full
//! recomputation, no recomputation, Megatron-style selective
//! recomputation — and the exact cost/footprint accounting shared by all
//! of them.
//!
//! # Example
//!
//! ```
//! use adapipe_hw::presets as hw;
//! use adapipe_model::{presets, LayerRange, ParallelConfig, TrainConfig};
//! use adapipe_profiler::Profiler;
//! use adapipe_recompute::{optimize, strategy};
//! use adapipe_units::Bytes;
//!
//! let model = presets::gpt2_small();
//! let parallel = ParallelConfig::new(2, 4, 1)?;
//! let train = TrainConfig::new(1, 1024, 16)?;
//! let table = Profiler::new(hw::cluster_a()).profile(&model, &parallel, &train);
//! let units = table.units_in(LayerRange::new(1, 6));
//!
//! let full = strategy::full(&units);
//! let generous = optimize(&units, Bytes::new(u64::MAX)).expect("unbounded budget is feasible");
//! // With unlimited memory the optimizer saves everything...
//! assert_eq!(generous.strategy.saved_count(), units.len());
//! // ...and its backward time beats full recomputation.
//! assert!(generous.cost.time_b < strategy::cost_of(&units, &full).time_b);
//! # Ok::<(), adapipe_model::ConfigError>(())
//! ```

#![forbid(unsafe_code)]

mod error;
pub mod exhaustive;
mod knapsack;
pub mod offload;
pub mod strategy;

pub use error::StrategyError;
pub use exhaustive::optimize_exhaustive;
pub use knapsack::{optimize, optimize_traced, optimize_with, KnapsackConfig, OptimizedStage};
pub use offload::{optimize_hybrid, HybridStage, OffloadLink, UnitDecision};
pub use strategy::{RecomputeStrategy, StageCost};
