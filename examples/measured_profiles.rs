//! Running the search on *measured* profiles instead of the analytical
//! model — the path a user with real hardware takes (§4.2: AdaPipe
//! profiles 5–10 iterations and feeds the timestamps to the DP).
//!
//! Here the "measurements" are the analytical numbers perturbed the way
//! a real profiler would observe them (jitter, coarse timer
//! granularity), rebuilt into a `ProfileTable` through the public
//! measurement-import API, and pushed through the same knapsack +
//! Algorithm 1 pipeline.
//!
//! ```bash
//! cargo run --release --example measured_profiles
//! ```

use adapipe_hw::presets as hw;
use adapipe_memory::{MemoryModel, OptimizerSpec};
use adapipe_model::{presets, LayerSeq, ParallelConfig, TrainConfig};
use adapipe_partition::{algorithm1, KnapsackCostProvider};
use adapipe_profiler::{ProfileTable, Profiler, UnitProfile};
use adapipe_units::{Bytes, MicroSecs};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = presets::gpt3_175b();
    let parallel = ParallelConfig::new(8, 8, 1)?;
    let train = TrainConfig::new(1, 16384, 32)?;
    let seq = LayerSeq::for_model(&model);

    // Pretend these came from timestamping a real run: quantize to 10 µs
    // timer ticks and add a deterministic per-unit bias.
    let analytic = Profiler::new(hw::cluster_a()).profile(&model, &parallel, &train);
    let quantize = |t: MicroSecs, salt: usize| {
        let jitter = 1.0 + 0.01 * ((salt % 7) as f64 - 3.0) / 3.0;
        MicroSecs::new(((t * jitter).as_micros() / 10.0).round() * 10.0)
    };
    let per_layer: Vec<Vec<UnitProfile>> = (0..analytic.num_layers())
        .map(|l| {
            analytic
                .layer_units(l)
                .iter()
                .enumerate()
                .map(|(i, u)| UnitProfile {
                    time_f: quantize(u.time_f, l + i),
                    time_b: quantize(u.time_b, l + i + 1),
                    ..*u
                })
                .collect()
        })
        .collect();
    let measured = ProfileTable::from_measurements(per_layer, analytic.boundary_bytes())?;

    // The identical downstream pipeline, fed measurements.
    let mem = MemoryModel::new(model.clone(), parallel, OptimizerSpec::adam_fp32());
    let capacity = Bytes::new((hw::a100_80gb().usable_bytes().as_f64() * 0.875) as u64);
    let provider = KnapsackCostProvider::new(&seq, &measured, &mem, capacity);
    let plan = algorithm1::solve(&provider, seq.len(), parallel.pipeline(), 32)
        .ok_or("no feasible plan")?;

    println!("plan from measured profiles (GPT-3, seq 16384, (8,8,1)):");
    for (s, (range, times)) in plan.ranges.iter().zip(&plan.stage_times).enumerate() {
        println!(
            "  stage {s}: layers {range} — F {:.0} ms, B {:.0} ms",
            times.f * 1e3,
            times.b * 1e3
        );
    }
    println!("predicted iteration: {}", plan.breakdown);

    // Sanity: the measured-profile plan should be close to the
    // analytic-profile plan (the jitter is ~1 %).
    let reference = KnapsackCostProvider::new(&seq, &analytic, &mem, capacity);
    let ref_plan = algorithm1::solve(&reference, seq.len(), parallel.pipeline(), 32)
        .ok_or("no reference plan")?;
    let rel = (plan.iteration_time() - ref_plan.iteration_time()).abs() / ref_plan.iteration_time();
    println!(
        "vs analytic-profile plan: {:.3}s ({:+.2}%)",
        ref_plan.iteration_time(),
        100.0 * rel
    );
    assert!(rel < 0.05, "measured-profile plan drifted {rel}");
    Ok(())
}
