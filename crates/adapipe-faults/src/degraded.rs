//! [`DegradedCluster`]: the persistent faults of a plan presented as a
//! hardware view, so the profiler, simulator and replanner all see the
//! same perturbed world.

use crate::plan::FaultPlan;
use adapipe_hw::{ClusterSpec, LinkSpec};
use adapipe_units::{Bytes, BytesPerSec, MicroSecs};

/// A [`ClusterSpec`] seen through a [`FaultPlan`]: link bandwidth is
/// scaled by the combined degradation factor, per-stage activation
/// budgets shrink under memory pressure, and per-device compute factors
/// answer "how slow is device `d` at step `k`".
///
/// Straggler slowdown is deliberately *not* folded into the effective
/// [`ClusterSpec`] — a cluster spec describes one device model for all
/// ranks, while stragglers are per-device. Callers scale stage times
/// via [`DegradedCluster::compute_factor_at`] (or
/// [`crate::inject::degraded_stage_execs`]) instead.
#[derive(Debug, Clone)]
pub struct DegradedCluster {
    base: ClusterSpec,
    plan: FaultPlan,
}

impl DegradedCluster {
    /// Views `base` through `plan`.
    #[must_use]
    pub fn new(base: ClusterSpec, plan: FaultPlan) -> Self {
        DegradedCluster { base, plan }
    }

    /// The healthy cluster.
    #[must_use]
    pub fn base(&self) -> &ClusterSpec {
        &self.base
    }

    /// The fault plan behind this view.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The cluster with every link's bandwidth scaled by the plan's
    /// combined degradation factor (latency is unchanged — degradation
    /// models congestion, not distance).
    #[must_use]
    pub fn effective(&self) -> ClusterSpec {
        let factor = self.plan.bandwidth_factor();
        let scale = |l: LinkSpec| {
            LinkSpec::new(BytesPerSec::new(l.bandwidth().get() * factor), l.latency())
        };
        ClusterSpec::new(
            format!("{}+faults", self.base.name()),
            self.base.device().clone(),
            self.base.devices_per_node(),
            self.base.nodes(),
            scale(self.base.intra_link()),
            scale(self.base.inter_link()),
        )
    }

    /// Stage-boundary transfer time under the degraded links.
    #[must_use]
    pub fn p2p_time(&self, bytes: Bytes) -> MicroSecs {
        self.effective().p2p_time(bytes)
    }

    /// `capacity` minus the memory pressure charged to `stage`
    /// (saturating at zero).
    #[must_use]
    pub fn shrunk_capacity(&self, capacity: Bytes, stage: usize) -> Bytes {
        capacity.saturating_sub(self.plan.budget_shrink(stage))
    }

    /// Compute-speed factor of `device` at step `step` (see
    /// [`FaultPlan::compute_factor_at`]).
    #[must_use]
    pub fn compute_factor_at(&self, device: usize, step: usize) -> f64 {
        self.plan.compute_factor_at(device, step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Fault;
    use adapipe_hw::presets;

    fn degraded() -> DegradedCluster {
        let plan = FaultPlan::new(3)
            .with(Fault::LinkDegradation {
                bandwidth_factor: 0.5,
            })
            .with(Fault::MemoryPressure {
                stage: 2,
                shrink: Bytes::from_gib(8),
            })
            .with(Fault::Straggler {
                device: 1,
                factor: 0.6,
                from_step: 0,
            });
        DegradedCluster::new(presets::cluster_a(), plan)
    }

    #[test]
    fn link_degradation_slows_p2p_but_not_latency() {
        let view = degraded();
        let healthy = view.base().p2p_time(Bytes::from_mib(64));
        let degraded = view.p2p_time(Bytes::from_mib(64));
        assert!(degraded > healthy, "{degraded} !> {healthy}");
        // Latency preserved: a zero-byte transfer costs the same.
        let eff = view.effective();
        assert_eq!(
            eff.inter_link().latency(),
            view.base().inter_link().latency()
        );
        // Bandwidth exactly halved.
        assert!(
            (eff.inter_link().bandwidth().get() - view.base().inter_link().bandwidth().get() * 0.5)
                .abs()
                < 1.0
        );
    }

    #[test]
    fn empty_plan_is_identity_on_links() {
        let view = DegradedCluster::new(presets::cluster_a(), FaultPlan::new(0));
        let eff = view.effective();
        assert!(
            (eff.inter_link().bandwidth().get() - view.base().inter_link().bandwidth().get()).abs()
                < 1e-6
        );
    }

    #[test]
    fn memory_pressure_shrinks_only_its_stage() {
        let view = degraded();
        let cap = Bytes::from_gib(70);
        assert_eq!(view.shrunk_capacity(cap, 2), Bytes::from_gib(62));
        assert_eq!(view.shrunk_capacity(cap, 0), cap);
        // Saturates instead of underflowing.
        assert_eq!(view.shrunk_capacity(Bytes::from_gib(1), 2), Bytes::ZERO);
    }

    #[test]
    fn compute_factor_is_per_device() {
        let view = degraded();
        assert!((view.compute_factor_at(1, 0) - 0.6).abs() < 1e-12);
        assert!((view.compute_factor_at(0, 0) - 1.0).abs() < 1e-12);
    }
}
