//! Diagnostics: what a failed invariant looks like to a caller.

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The plan is still *reportable* (the paper reports OOM baselines as
    /// bars too) but should not be executed as-is.
    Warning,
    /// The plan violates a structural invariant and is not a valid
    /// AdaPipe artifact.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The invariant catalog. Each code maps to one statically checkable
/// property of a plan or task graph; `docs/static-analysis.md` gives the
/// paper reference for every entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CheckCode {
    /// Stage count disagrees with `p · virtual_chunks`.
    StageCount,
    /// Micro-batch count inconsistent with the workload, or too small
    /// for the schedule (`n < p` for 1F1B).
    MicrobatchCount,
    /// Adjacent stage ranges leave a gap or overlap.
    PartitionGap,
    /// The partition does not start at layer 0 / end at layer `L − 1`.
    PartitionCoverage,
    /// A strategy's flag count differs from the stage's unit count.
    StrategyArity,
    /// A pinned unit (layer output, §4.2) is marked recomputed.
    PinnedUnitRecomputed,
    /// Stored `StageCost` disagrees with the cost recomputed from the
    /// unit profiles (Eq. (1)-(2) leaf cost; catches stale iso-cache
    /// entries serialized into a plan).
    CostDrift,
    /// Stored `StageMemory` breakdown disagrees with the memory model.
    MemoryAccounting,
    /// A stage's total memory exceeds device capacity (Eq. (2) budget).
    BudgetOverflow,
    /// Stored `F1bBreakdown` disagrees with the Eq. (3) recurrences.
    BreakdownDrift,
    /// The task dependency graph has a cycle.
    CycleDetected,
    /// Dependencies are acyclic but a fixed-order device queue still
    /// deadlocks (queue order contradicts dependency order).
    DeviceOrderDeadlock,
    /// A task has a negative duration.
    TaskDuration,
    /// Cached isomorphism-class cost differs from the recomputed leaf
    /// cost (§5.3 soundness spot-check).
    IsoCacheDivergence,
    /// Plan units metadata contradicts this build's conventions
    /// (time in microseconds, memory in bytes); accepting such a plan
    /// would silently rescale every Eq. (1)–(3) quantity.
    UnitMismatch,
    /// The plan's predicted cost exceeds `(1 + ε)` times its optimality
    /// certificate's lower bound, or the planner's DP disagrees with the
    /// brute-force oracle on an instance small enough to enumerate.
    OptimalityGap,
    /// An `adapipe-certificate v1` artifact is internally inconsistent:
    /// malformed terms, a non-finite bound, or a lower bound that
    /// exceeds the plan cost it claims to certify.
    CertificateInvalid,
}

impl CheckCode {
    /// Stable kebab-case name, used in CLI output and test assertions.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CheckCode::StageCount => "stage-count",
            CheckCode::MicrobatchCount => "microbatch-count",
            CheckCode::PartitionGap => "partition-gap",
            CheckCode::PartitionCoverage => "partition-coverage",
            CheckCode::StrategyArity => "strategy-arity",
            CheckCode::PinnedUnitRecomputed => "pinned-unit-recomputed",
            CheckCode::CostDrift => "cost-drift",
            CheckCode::MemoryAccounting => "memory-accounting",
            CheckCode::BudgetOverflow => "budget-overflow",
            CheckCode::BreakdownDrift => "breakdown-drift",
            CheckCode::CycleDetected => "cycle-detected",
            CheckCode::DeviceOrderDeadlock => "device-order-deadlock",
            CheckCode::TaskDuration => "task-duration",
            CheckCode::IsoCacheDivergence => "iso-cache-divergence",
            CheckCode::UnitMismatch => "unit-mismatch",
            CheckCode::OptimalityGap => "optimality-gap",
            CheckCode::CertificateInvalid => "certificate-invalid",
        }
    }
}

impl fmt::Display for CheckCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding: which invariant failed, where and why.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which invariant failed.
    pub code: CheckCode,
    /// Error or warning.
    pub severity: Severity,
    /// Pipeline stage the finding is about, if stage-local.
    pub stage: Option<usize>,
    /// Human-readable explanation with the offending numbers.
    pub message: String,
}

impl Diagnostic {
    /// An [`Severity::Error`] finding.
    #[must_use]
    pub fn error(code: CheckCode, stage: Option<usize>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            stage,
            message: message.into(),
        }
    }

    /// A [`Severity::Warning`] finding.
    #[must_use]
    pub fn warning(code: CheckCode, stage: Option<usize>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            stage,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        if let Some(s) = self.stage {
            write!(f, " stage {s}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// The outcome of a verification pass: every finding, in check order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckReport {
    diagnostics: Vec<Diagnostic>,
}

impl CheckReport {
    /// An empty (passing) report.
    #[must_use]
    pub fn new() -> Self {
        CheckReport::default()
    }

    /// Records one finding.
    pub fn push(&mut self, diag: Diagnostic) {
        self.diagnostics.push(diag);
    }

    /// Records a batch of findings.
    pub fn extend(&mut self, diags: impl IntoIterator<Item = Diagnostic>) {
        self.diagnostics.extend(diags);
    }

    /// All findings, in check order.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of error-severity findings.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Whether any error-severity finding was recorded.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Whether the report is completely clean (no errors, no warnings).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether the report contains a finding with `code` at any severity.
    #[must_use]
    pub fn has_code(&self, code: CheckCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return writeln!(f, "ok: all invariants hold");
        }
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        writeln!(
            f,
            "{} error(s), {} warning(s)",
            self.error_count(),
            self.warning_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_by_severity() {
        let mut r = CheckReport::new();
        assert!(r.is_clean() && !r.has_errors());
        r.push(Diagnostic::warning(CheckCode::BudgetOverflow, Some(0), "w"));
        assert!(!r.has_errors() && !r.is_clean());
        r.push(Diagnostic::error(CheckCode::PartitionGap, None, "e"));
        assert!(r.has_errors());
        assert_eq!((r.error_count(), r.warning_count()), (1, 1));
        assert!(r.has_code(CheckCode::PartitionGap));
        assert!(!r.has_code(CheckCode::CycleDetected));
    }

    #[test]
    fn display_is_line_oriented() {
        let mut r = CheckReport::new();
        r.push(Diagnostic::error(CheckCode::CostDrift, Some(3), "boom"));
        let text = r.to_string();
        assert!(text.contains("error[cost-drift] stage 3: boom"), "{text}");
        assert!(text.contains("1 error(s), 0 warning(s)"), "{text}");
        assert!(CheckReport::new().to_string().contains("ok"));
    }
}
