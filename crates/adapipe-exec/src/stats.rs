//! Cache accounting shared by every content-addressed cache in the
//! workspace (the per-plan isomorphism cache, the global subproblem
//! cache, the daemon plan cache).

use std::fmt;
use std::ops::{Add, AddAssign};

/// Hit/miss counters for one cache, with the derived rate.
///
/// Replaces the bare `(u64, u64)` tuples the provider APIs used to
/// return: a named struct cannot be destructured in the wrong order,
/// and the rate math lives in one place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (and usually then insert).
    pub misses: u64,
}

impl CacheStats {
    /// A zeroed counter pair.
    pub const ZERO: CacheStats = CacheStats { hits: 0, misses: 0 };

    /// Counters from explicit values.
    #[must_use]
    pub const fn new(hits: u64, misses: u64) -> Self {
        CacheStats { hits, misses }
    }

    /// Total lookups observed.
    #[must_use]
    pub const fn lookups(&self) -> u64 {
        self.hits.saturating_add(self.misses)
    }

    /// `hits / (hits + misses)`, or `0.0` before any lookup.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            return 0.0;
        }
        // u64 → f64 may round above 2^53 lookups; the rate is a
        // diagnostic, not a plan input.
        #[allow(clippy::cast_precision_loss)]
        {
            self.hits as f64 / total as f64
        }
    }
}

impl Add for CacheStats {
    type Output = CacheStats;

    fn add(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_add(rhs.hits),
            misses: self.misses.saturating_add(rhs.misses),
        }
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        *self = *self + rhs;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}% hit rate)",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_is_zero_before_any_lookup() {
        assert_eq!(CacheStats::ZERO.hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_matches_counters() {
        let s = CacheStats::new(3, 1);
        assert_eq!(s.lookups(), 4);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn add_sums_fieldwise_and_saturates() {
        let a = CacheStats::new(1, 2) + CacheStats::new(3, 4);
        assert_eq!(a, CacheStats::new(4, 6));
        let b = CacheStats::new(u64::MAX, 0) + CacheStats::new(1, 1);
        assert_eq!(b.hits, u64::MAX);
    }

    #[test]
    fn display_is_human_readable() {
        let s = CacheStats::new(9, 1);
        let text = s.to_string();
        assert!(text.contains("9 hits") && text.contains("90.0%"), "{text}");
    }
}
