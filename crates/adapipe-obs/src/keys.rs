//! Canonical metric-key names shared across the workspace.
//!
//! Every consumer of a cross-crate metric (the CLI's `--metrics-out`
//! report, the `adapipe-serve` `/metrics` endpoint, tests and CI jq
//! probes) must agree on the key strings. Defining them once here keeps
//! the producers (`adapipe-partition`, `adapipe-serve`) and the
//! consumers from drifting apart; a renamed key becomes a compile
//! error instead of a silently-empty dashboard.

use crate::Recorder;

/// §5.3 isomorphism-cache lookup hits (counter, `adapipe-partition`).
pub const ISO_CACHE_HITS: &str = "partition.iso_cache.hits";

/// §5.3 isomorphism-cache lookup misses (counter, `adapipe-partition`).
pub const ISO_CACHE_MISSES: &str = "partition.iso_cache.misses";

/// §5.3 isomorphism-cache hit rate in `[0, 1]` (gauge, derived from the
/// two counters by [`publish_iso_cache_hit_rate`]).
pub const ISO_CACHE_HIT_RATE: &str = "partition.iso_cache.hit_rate";

/// Total HTTP requests accepted by `adapipe-serve` (counter).
pub const SERVE_REQUESTS: &str = "serve.requests";

/// Plan-cache hits in `adapipe-serve` (counter).
pub const SERVE_CACHE_HITS: &str = "serve.cache.hits";

/// Plan-cache misses (cold plans) in `adapipe-serve` (counter).
pub const SERVE_CACHE_MISSES: &str = "serve.cache.misses";

/// Plan-cache hit rate in `[0, 1]` (gauge, derived like the iso-cache
/// rate by [`publish_serve_cache_hit_rate`]).
pub const SERVE_CACHE_HIT_RATE: &str = "serve.cache.hit_rate";

/// Plan-cache entries evicted by the LRU bound (counter).
pub const SERVE_CACHE_EVICTIONS: &str = "serve.cache.evictions";

/// Requests rejected with 503 because the worker queue was full
/// (counter).
pub const SERVE_REJECTED_BACKPRESSURE: &str = "serve.rejected.backpressure";

/// Requests rejected with 503 because their deadline expired while
/// queued (counter).
pub const SERVE_REJECTED_DEADLINE: &str = "serve.rejected.deadline";

/// Requests answered after their deadline had already passed (counter;
/// the response still ships, the miss is diagnosed by the watchdog).
pub const SERVE_DEADLINE_MISSED: &str = "serve.deadline.missed";

/// Workers the `adapipe-faults` watchdog currently classifies as
/// persistent deadline-missers (gauge).
pub const SERVE_DEADLINE_PERSISTENT: &str = "serve.deadline.persistent_workers";

/// Plans rejected by the `adapipe::verify` gate before leaving the
/// server (counter; nonzero means a planner bug).
pub const SERVE_VERIFY_REJECTED: &str = "serve.verify.rejected";

/// End-to-end request handling time in microseconds (histogram).
pub const SERVE_REQUEST_US: &str = "serve.request.us";

/// Cold-plan (cache-miss) solve time in microseconds (histogram).
pub const SERVE_PLAN_US: &str = "serve.plan.us";

/// High-water worker-queue depth (gauge, max-tracked).
pub const SERVE_QUEUE_DEPTH: &str = "serve.queue.depth";

/// Derives a hit rate from a hit and a miss counter and publishes it
/// under `rate_key`. Returns `(hits, misses, rate)`, or `None` when no
/// lookup was recorded (the gauge is left unset so reports distinguish
/// "no traffic" from "0% hits").
fn publish_hit_rate(
    rec: &Recorder,
    hits_key: &str,
    misses_key: &str,
    rate_key: &str,
) -> Option<(u64, u64, f64)> {
    let hits = rec.counter(hits_key);
    let misses = rec.counter(misses_key);
    let total = hits + misses;
    if total == 0 {
        return None;
    }
    let rate = hits as f64 / total as f64;
    rec.gauge(rate_key, rate);
    Some((hits, misses, rate))
}

/// Publishes the §5.3 iso-cache hit rate ([`ISO_CACHE_HIT_RATE`]) from
/// its counters so `/metrics` and `--metrics-out` report it uniformly.
/// Returns `(hits, misses, rate)` when any lookup was recorded.
pub fn publish_iso_cache_hit_rate(rec: &Recorder) -> Option<(u64, u64, f64)> {
    publish_hit_rate(rec, ISO_CACHE_HITS, ISO_CACHE_MISSES, ISO_CACHE_HIT_RATE)
}

/// Publishes the serve plan-cache hit rate ([`SERVE_CACHE_HIT_RATE`])
/// from its counters. Returns `(hits, misses, rate)` when any request
/// was served.
pub fn publish_serve_cache_hit_rate(rec: &Recorder) -> Option<(u64, u64, f64)> {
    publish_hit_rate(
        rec,
        SERVE_CACHE_HITS,
        SERVE_CACHE_MISSES,
        SERVE_CACHE_HIT_RATE,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_lookups_publishes_nothing() {
        let rec = Recorder::new();
        assert_eq!(publish_iso_cache_hit_rate(&rec), None);
        assert_eq!(rec.gauge_value(ISO_CACHE_HIT_RATE), None);
    }

    #[test]
    fn hit_rate_is_derived_and_published() {
        let rec = Recorder::new();
        rec.add(ISO_CACHE_HITS, 3);
        rec.add(ISO_CACHE_MISSES, 1);
        let (hits, misses, rate) = publish_iso_cache_hit_rate(&rec).unwrap();
        assert_eq!((hits, misses), (3, 1));
        assert!((rate - 0.75).abs() < 1e-12);
        let gauge = rec.gauge_value(ISO_CACHE_HIT_RATE).unwrap();
        assert!((gauge - 0.75).abs() < 1e-12);
    }

    #[test]
    fn serve_cache_rate_uses_its_own_keys() {
        let rec = Recorder::new();
        rec.add(SERVE_CACHE_HITS, 9);
        rec.add(SERVE_CACHE_MISSES, 1);
        let (_, _, rate) = publish_serve_cache_hit_rate(&rec).unwrap();
        assert!((rate - 0.9).abs() < 1e-12);
        assert!(rec.gauge_value(SERVE_CACHE_HIT_RATE).is_some());
        assert_eq!(rec.gauge_value(ISO_CACHE_HIT_RATE), None);
    }

    #[test]
    fn misses_only_still_publishes_a_zero_rate() {
        let rec = Recorder::new();
        rec.add(ISO_CACHE_MISSES, 4);
        let (hits, misses, rate) = publish_iso_cache_hit_rate(&rec).unwrap();
        assert_eq!((hits, misses), (0, 4));
        assert!(rate.abs() < 1e-12);
        let gauge = rec.gauge_value(ISO_CACHE_HIT_RATE).unwrap();
        assert!(gauge.abs() < 1e-12);
    }
}
