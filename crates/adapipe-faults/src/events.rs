//! Typed degradation events: what the watchdogs raise instead of
//! panicking, and what the replanner consumes.

use adapipe_units::{Bytes, MicroSecs};
use std::fmt;

/// One detected violation of the plan's promises.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DegradationEvent {
    /// A pipeline op overran its deadline (α × the planned time).
    DeadlineMissed {
        /// Pipeline stage of the late op.
        stage: usize,
        /// Micro-batch of the late op.
        micro_batch: usize,
        /// Observed duration.
        observed: MicroSecs,
        /// The deadline it missed.
        deadline: MicroSecs,
    },
    /// A device's activation high-water mark overran the Eq. 1–2
    /// budget the plan was solved under.
    BudgetExceeded {
        /// Pipeline stage (= device) that overran.
        stage: usize,
        /// Observed dynamic-memory high-water mark.
        high_water: Bytes,
        /// The budget it overran.
        budget: Bytes,
    },
}

impl DegradationEvent {
    /// The pipeline stage the event happened on.
    #[must_use]
    pub fn stage(&self) -> usize {
        match self {
            DegradationEvent::DeadlineMissed { stage, .. }
            | DegradationEvent::BudgetExceeded { stage, .. } => *stage,
        }
    }
}

impl fmt::Display for DegradationEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradationEvent::DeadlineMissed {
                stage,
                micro_batch,
                observed,
                deadline,
            } => write!(
                f,
                "deadline missed: stage {stage} micro-batch {micro_batch} took {observed} (deadline {deadline})"
            ),
            DegradationEvent::BudgetExceeded {
                stage,
                high_water,
                budget,
            } => write!(
                f,
                "budget exceeded: stage {stage} high-water {high_water} over budget {budget}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_their_stage() {
        let e = DegradationEvent::DeadlineMissed {
            stage: 2,
            micro_batch: 5,
            observed: MicroSecs::new(30.0),
            deadline: MicroSecs::new(15.0),
        };
        assert_eq!(e.stage(), 2);
        assert!(e.to_string().contains("stage 2"));
        let b = DegradationEvent::BudgetExceeded {
            stage: 1,
            high_water: Bytes::new(10),
            budget: Bytes::new(5),
        };
        assert_eq!(b.stage(), 1);
        assert!(b.to_string().contains("budget"));
    }
}
