//! Reverse-mode autograd over [`Tensor`]s.
//!
//! A [`Tape`] records every operation; [`Tape::backward`] walks the
//! records in reverse, accumulating gradients. Each computation-unit
//! module in [`units`](crate::units) runs on its own short tape, which is
//! what makes per-unit recomputation natural: dropping a unit's
//! intermediates is simply dropping its tape.

// Kernel loops below keep explicit (row, column, head) indices — the
// math reads like the equations it implements.
#![allow(clippy::needless_range_loop)]

use crate::tensor::Tensor;

/// Handle to a value on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug)]
enum Record {
    Leaf,
    /// `a @ b`.
    MatMul(Var, Var),
    /// `x + bias` (row-broadcast).
    AddBias(Var, Var),
    /// Elementwise `a + b`.
    Add(Var, Var),
    /// GeLU(x), tanh approximation.
    Gelu(Var),
    /// `silu(gate) ⊙ up` — the fused SwiGLU activation.
    SiluMul(Var, Var),
    /// Inverted dropout with a counter-based mask, replayable under
    /// recomputation (same `key` → same mask, with no RNG state).
    Dropout {
        x: Var,
        rate: f32,
        key: u64,
    },
    /// Row layer-norm with affine parameters.
    LayerNorm {
        x: Var,
        gain: Var,
        bias: Var,
    },
    /// Fused causal multi-head attention with optional grouped-query
    /// layout (`kv_heads` divides `heads`); saves per-head probabilities.
    CausalAttention {
        q: Var,
        k: Var,
        v: Var,
        heads: usize,
        kv_heads: usize,
        probs: Vec<Tensor>,
    },
    /// Token + position embedding lookup.
    Embedding {
        table: Var,
        pos: Var,
        ids: Vec<usize>,
    },
    /// Mean token cross-entropy; saves the softmax probabilities.
    CrossEntropy {
        logits: Var,
        targets: Vec<usize>,
        probs: Tensor,
    },
}

#[derive(Debug)]
struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    op: Record,
}

/// An autograd tape.
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

const LN_EPS: f32 = 1e-5;

impl Tape {
    /// Creates an empty tape.
    #[must_use]
    pub fn new() -> Self {
        Tape { nodes: Vec::new() }
    }

    fn push(&mut self, value: Tensor, op: Record) -> Var {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
        });
        Var(self.nodes.len() - 1)
    }

    /// Registers an input (leaf) tensor.
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push(value, Record::Leaf)
    }

    /// The value of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not from this tape.
    #[must_use]
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The accumulated gradient of `v` after [`Tape::backward`], or a
    /// zero tensor if none flowed.
    #[must_use]
    pub fn grad(&self, v: Var) -> Tensor {
        let node = &self.nodes[v.0];
        node.grad
            .clone()
            .unwrap_or_else(|| Tensor::zeros(node.value.rows(), node.value.cols()))
    }

    /// `a @ b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul(self.value(b));
        self.push(value, Record::MatMul(a, b))
    }

    /// `x` plus a `[1, cols]` bias broadcast over rows.
    pub fn add_bias(&mut self, x: Var, bias: Var) -> Var {
        let value = self.value(x).add_bias(self.value(bias));
        self.push(value, Record::AddBias(x, bias))
    }

    /// Elementwise `a + b` (residual connections).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).add(self.value(b));
        self.push(value, Record::Add(a, b))
    }

    /// GeLU activation (tanh approximation).
    pub fn gelu(&mut self, x: Var) -> Var {
        let mut value = self.value(x).clone();
        for v in value.data_mut() {
            *v = gelu(*v);
        }
        self.push(value, Record::Gelu(x))
    }

    /// Fused SwiGLU activation: `silu(gate) ⊙ up`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn silu_mul(&mut self, gate: Var, up: Var) -> Var {
        let g = self.value(gate);
        let u = self.value(up);
        assert_eq!(
            (g.rows(), g.cols()),
            (u.rows(), u.cols()),
            "silu_mul shape mismatch"
        );
        let data = g
            .data()
            .iter()
            .zip(u.data())
            .map(|(&gv, &uv)| silu(gv) * uv)
            .collect();
        let value = Tensor::from_vec(g.rows(), g.cols(), data);
        self.push(value, Record::SiluMul(gate, up))
    }

    /// Inverted dropout. The mask is a pure function of `(key, element
    /// index)`, so recomputing the unit replays the identical mask — the
    /// property a real execution engine needs for recomputation to be
    /// loss-exact in the presence of randomness.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= rate < 1`.
    pub fn dropout(&mut self, x: Var, rate: f32, key: u64) -> Var {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0, 1)");
        let mut value = self.value(x).clone();
        if rate > 0.0 {
            let scale = 1.0 / (1.0 - rate);
            for (i, v) in value.data_mut().iter_mut().enumerate() {
                if dropout_kept(key, i as u64, rate) {
                    *v *= scale;
                } else {
                    *v = 0.0;
                }
            }
        }
        self.push(value, Record::Dropout { x, rate, key })
    }

    /// Row-wise layer norm with learned `gain` and `bias` (`[1, cols]`).
    pub fn layer_norm(&mut self, x: Var, gain: Var, bias: Var) -> Var {
        let xt = self.value(x);
        let (rows, cols) = (xt.rows(), xt.cols());
        let mut out = Tensor::zeros(rows, cols);
        for r in 0..rows {
            let (mean, rstd) = row_stats(xt.row(r));
            for c in 0..cols {
                let xhat = (xt.at(r, c) - mean) * rstd;
                *out.at_mut(r, c) = xhat * self.value(gain).at(0, c) + self.value(bias).at(0, c);
            }
        }
        self.push(out, Record::LayerNorm { x, gain, bias })
    }

    /// Fused causal multi-head self-attention over `[seq, hidden]`
    /// inputs; `hidden` must divide evenly into `heads`.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn causal_attention(&mut self, q: Var, k: Var, v: Var, heads: usize) -> Var {
        self.causal_attention_gqa(q, k, v, heads, heads)
    }

    /// Grouped-query causal attention: `q` has `heads` heads, `k`/`v`
    /// have `kv_heads` (each shared by `heads / kv_heads` query heads).
    ///
    /// # Panics
    ///
    /// Panics if shapes or head counts are inconsistent.
    pub fn causal_attention_gqa(
        &mut self,
        q: Var,
        k: Var,
        v: Var,
        heads: usize,
        kv_heads: usize,
    ) -> Var {
        let (s, h) = (self.value(q).rows(), self.value(q).cols());
        assert_eq!(self.value(k).rows(), s);
        assert_eq!(self.value(v).rows(), s);
        assert_eq!(h % heads, 0, "hidden {h} not divisible by {heads} heads");
        assert!(
            kv_heads > 0 && heads.is_multiple_of(kv_heads),
            "{heads} heads not divisible by {kv_heads}"
        );
        let dh = h / heads;
        assert_eq!(self.value(k).cols(), kv_heads * dh, "kv width mismatch");
        assert_eq!(self.value(v).cols(), kv_heads * dh, "kv width mismatch");
        let group = heads / kv_heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut out = Tensor::zeros(s, h);
        let mut probs = Vec::with_capacity(heads);
        for t in 0..heads {
            let off = t * dh;
            let kv_off = (t / group) * dh;
            // Scores with causal mask, row-wise softmax.
            let mut p = Tensor::zeros(s, s);
            for i in 0..s {
                let mut max = f32::NEG_INFINITY;
                for j in 0..=i {
                    let mut dot = 0.0;
                    for c in 0..dh {
                        dot += self.value(q).at(i, off + c) * self.value(k).at(j, kv_off + c);
                    }
                    let sc = dot * scale;
                    *p.at_mut(i, j) = sc;
                    max = max.max(sc);
                }
                let mut denom = 0.0;
                for j in 0..=i {
                    let e = (p.at(i, j) - max).exp();
                    *p.at_mut(i, j) = e;
                    denom += e;
                }
                for j in 0..=i {
                    *p.at_mut(i, j) /= denom;
                }
            }
            // out = P @ V_head.
            for i in 0..s {
                for j in 0..=i {
                    let w = p.at(i, j);
                    for c in 0..dh {
                        *out.at_mut(i, off + c) += w * self.value(v).at(j, kv_off + c);
                    }
                }
            }
            probs.push(p);
        }
        self.push(
            out,
            Record::CausalAttention {
                q,
                k,
                v,
                heads,
                kv_heads,
                probs,
            },
        )
    }

    /// Token embedding lookup plus learned positions:
    /// `out[i] = table[ids[i]] + pos[i]`.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of vocabulary or the sequence exceeds the
    /// position table.
    pub fn embedding(&mut self, table: Var, pos: Var, ids: &[usize]) -> Var {
        let h = self.value(table).cols();
        assert!(
            ids.len() <= self.value(pos).rows(),
            "sequence longer than position table"
        );
        let mut out = Tensor::zeros(ids.len(), h);
        for (i, &id) in ids.iter().enumerate() {
            assert!(
                id < self.value(table).rows(),
                "token id {id} out of vocabulary"
            );
            for c in 0..h {
                *out.at_mut(i, c) = self.value(table).at(id, c) + self.value(pos).at(i, c);
            }
        }
        self.push(
            out,
            Record::Embedding {
                table,
                pos,
                ids: ids.to_vec(),
            },
        )
    }

    /// Mean cross-entropy of `logits` against `targets`; returns a
    /// `[1, 1]` scalar.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the number of logit rows.
    pub fn cross_entropy(&mut self, logits: Var, targets: &[usize]) -> Var {
        let lt = self.value(logits);
        let (s, vocab) = (lt.rows(), lt.cols());
        assert_eq!(targets.len(), s, "one target per row");
        let mut probs = Tensor::zeros(s, vocab);
        let mut loss = 0.0f32;
        for i in 0..s {
            let row = lt.row(i);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0;
            for c in 0..vocab {
                let e = (row[c] - max).exp();
                *probs.at_mut(i, c) = e;
                denom += e;
            }
            for c in 0..vocab {
                *probs.at_mut(i, c) /= denom;
            }
            loss -= probs.at(i, targets[i]).max(1e-30).ln();
        }
        loss /= s as f32;
        self.push(
            Tensor::from_vec(1, 1, vec![loss]),
            Record::CrossEntropy {
                logits,
                targets: targets.to_vec(),
                probs,
            },
        )
    }

    fn accumulate(&mut self, v: Var, g: Tensor) {
        let node = &mut self.nodes[v.0];
        match &mut node.grad {
            Some(cur) => cur.add_assign(&g),
            None => node.grad = Some(g),
        }
    }

    /// Runs reverse-mode differentiation from `root`, seeding its
    /// gradient with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `seed`'s shape differs from `root`'s value.
    pub fn backward(&mut self, root: Var, seed: Tensor) {
        assert_eq!(
            (seed.rows(), seed.cols()),
            (self.value(root).rows(), self.value(root).cols()),
            "seed gradient shape mismatch"
        );
        self.accumulate(root, seed);
        for idx in (0..=root.0).rev() {
            let Some(dy) = self.nodes[idx].grad.clone() else {
                continue;
            };
            // Temporarily take the op out of the node so gradient
            // accumulation can borrow the tape mutably.
            let op = std::mem::replace(&mut self.nodes[idx].op, Record::Leaf);
            match &op {
                Record::Leaf => {}
                Record::MatMul(a, b) => {
                    let (a, b) = (*a, *b);
                    let da = dy.matmul_t(self.value(b));
                    let db = self.value(a).t_matmul(&dy);
                    self.accumulate(a, da);
                    self.accumulate(b, db);
                }
                Record::AddBias(x, bias) => {
                    let (x, bias) = (*x, *bias);
                    let db = dy.col_sum();
                    self.accumulate(x, dy);
                    self.accumulate(bias, db);
                }
                Record::Add(a, b) => {
                    let (a, b) = (*a, *b);
                    self.accumulate(a, dy.clone());
                    self.accumulate(b, dy);
                }
                Record::Gelu(x) => {
                    let x = *x;
                    let mut dx = dy;
                    for (g, &xv) in dx.data_mut().iter_mut().zip(self.nodes[x.0].value.data()) {
                        *g *= gelu_grad(xv);
                    }
                    self.accumulate(x, dx);
                }
                Record::SiluMul(gate, up) => {
                    let (gate, up) = (*gate, *up);
                    let gv = self.nodes[gate.0].value.clone();
                    let uv = self.nodes[up.0].value.clone();
                    let mut dgate = dy.clone();
                    let mut dup = dy;
                    for i in 0..gv.len() {
                        let g = gv.data()[i];
                        let u = uv.data()[i];
                        dgate.data_mut()[i] *= u * silu_grad(g);
                        dup.data_mut()[i] *= silu(g);
                    }
                    self.accumulate(gate, dgate);
                    self.accumulate(up, dup);
                }
                Record::Dropout { x, rate, key } => {
                    let (x, rate, key) = (*x, *rate, *key);
                    let mut dx = dy;
                    if rate > 0.0 {
                        let scale = 1.0 / (1.0 - rate);
                        for (i, g) in dx.data_mut().iter_mut().enumerate() {
                            if dropout_kept(key, i as u64, rate) {
                                *g *= scale;
                            } else {
                                *g = 0.0;
                            }
                        }
                    }
                    self.accumulate(x, dx);
                }
                Record::LayerNorm { x, gain, bias } => {
                    let (x, gain, bias) = (*x, *gain, *bias);
                    let (dx, dgain, dbias) =
                        layer_norm_backward(&self.nodes[x.0].value, &self.nodes[gain.0].value, &dy);
                    self.accumulate(x, dx);
                    self.accumulate(gain, dgain);
                    self.accumulate(bias, dbias);
                }
                Record::CausalAttention {
                    q,
                    k,
                    v,
                    heads,
                    kv_heads,
                    probs,
                } => {
                    let (q, k, v, heads, kv_heads) = (*q, *k, *v, *heads, *kv_heads);
                    let (dq, dk, dv) = attention_backward(
                        &self.nodes[q.0].value,
                        &self.nodes[k.0].value,
                        &self.nodes[v.0].value,
                        heads,
                        kv_heads,
                        probs,
                        &dy,
                    );
                    self.accumulate(q, dq);
                    self.accumulate(k, dk);
                    self.accumulate(v, dv);
                }
                Record::Embedding { table, pos, ids } => {
                    let (table, pos) = (*table, *pos);
                    let ids = ids.clone();
                    let tval = &self.nodes[table.0].value;
                    let pval = &self.nodes[pos.0].value;
                    let mut dt = Tensor::zeros(tval.rows(), tval.cols());
                    let mut dp = Tensor::zeros(pval.rows(), pval.cols());
                    for (i, &id) in ids.iter().enumerate() {
                        for c in 0..dt.cols() {
                            *dt.at_mut(id, c) += dy.at(i, c);
                            *dp.at_mut(i, c) += dy.at(i, c);
                        }
                    }
                    self.accumulate(table, dt);
                    self.accumulate(pos, dp);
                }
                Record::CrossEntropy {
                    logits,
                    targets,
                    probs,
                } => {
                    let logits = *logits;
                    let scale = dy.at(0, 0) / targets.len() as f32;
                    let mut dl = probs.clone();
                    for (i, &t) in targets.iter().enumerate() {
                        *dl.at_mut(i, t) -= 1.0;
                    }
                    dl.scale_assign(scale);
                    self.accumulate(logits, dl);
                }
            }
            self.nodes[idx].op = op;
        }
    }
}

fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
}

fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

fn silu_grad(x: f32) -> f32 {
    let sig = 1.0 / (1.0 + (-x).exp());
    sig * (1.0 + x * (1.0 - sig))
}

/// Counter-based keep/drop decision: a stateless splitmix64-style hash
/// of `(key, index)` compared against the drop threshold.
fn dropout_kept(key: u64, index: u64, rate: f32) -> bool {
    let mut z = key ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // Top 24 bits → uniform in [0, 1).
    let u = (z >> 40) as f32 / (1u64 << 24) as f32;
    u >= rate
}

fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let u = C * (x + 0.044_715 * x * x * x);
    let t = u.tanh();
    let du = C * (1.0 + 3.0 * 0.044_715 * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

fn row_stats(row: &[f32]) -> (f32, f32) {
    let n = row.len() as f32;
    let mean = row.iter().sum::<f32>() / n;
    let var = row.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n;
    (mean, 1.0 / (var + LN_EPS).sqrt())
}

fn layer_norm_backward(x: &Tensor, gain: &Tensor, dy: &Tensor) -> (Tensor, Tensor, Tensor) {
    let (rows, cols) = (x.rows(), x.cols());
    let mut dx = Tensor::zeros(rows, cols);
    let mut dgain = Tensor::zeros(1, cols);
    let mut dbias = Tensor::zeros(1, cols);
    for r in 0..rows {
        let (mean, rstd) = row_stats(x.row(r));
        let mut sum_g = 0.0f32;
        let mut sum_gx = 0.0f32;
        let mut xhat = vec![0.0f32; cols];
        let mut g = vec![0.0f32; cols];
        for c in 0..cols {
            xhat[c] = (x.at(r, c) - mean) * rstd;
            g[c] = dy.at(r, c) * gain.at(0, c);
            sum_g += g[c];
            sum_gx += g[c] * xhat[c];
            *dgain.at_mut(0, c) += dy.at(r, c) * xhat[c];
            *dbias.at_mut(0, c) += dy.at(r, c);
        }
        let n = cols as f32;
        for c in 0..cols {
            *dx.at_mut(r, c) = (g[c] - sum_g / n - xhat[c] * sum_gx / n) * rstd;
        }
    }
    (dx, dgain, dbias)
}

fn attention_backward(
    q: &Tensor,
    k: &Tensor,
    v: &Tensor,
    heads: usize,
    kv_heads: usize,
    probs: &[Tensor],
    dy: &Tensor,
) -> (Tensor, Tensor, Tensor) {
    let (s, h) = (q.rows(), q.cols());
    let dh = h / heads;
    let group = heads / kv_heads;
    let scale = 1.0 / (dh as f32).sqrt();
    let mut dq = Tensor::zeros(s, h);
    let mut dk = Tensor::zeros(s, kv_heads * dh);
    let mut dv = Tensor::zeros(s, kv_heads * dh);
    for t in 0..heads {
        let off = t * dh;
        let kv_off = (t / group) * dh;
        let p = &probs[t];
        // dV_head = Pᵀ dO_head; dP = dO_head V_headᵀ.
        let mut dp = Tensor::zeros(s, s);
        for i in 0..s {
            for j in 0..=i {
                let w = p.at(i, j);
                let mut acc = 0.0;
                for c in 0..dh {
                    *dv.at_mut(j, kv_off + c) += w * dy.at(i, off + c);
                    acc += dy.at(i, off + c) * v.at(j, kv_off + c);
                }
                *dp.at_mut(i, j) = acc;
            }
        }
        // Softmax jacobian per row: dS = P ⊙ (dP − Σ_j dP⊙P).
        for i in 0..s {
            let mut dot = 0.0;
            for j in 0..=i {
                dot += dp.at(i, j) * p.at(i, j);
            }
            for j in 0..=i {
                let ds = p.at(i, j) * (dp.at(i, j) - dot) * scale;
                for c in 0..dh {
                    *dq.at_mut(i, off + c) += ds * k.at(j, kv_off + c);
                    *dk.at_mut(j, kv_off + c) += ds * q.at(i, off + c);
                }
            }
        }
    }
    (dq, dk, dv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    /// Central finite differences of a scalar-valued tape computation
    /// with respect to one leaf.
    fn finite_diff<F>(build: F, input: &Tensor, eps: f32) -> Tensor
    where
        F: Fn(&Tensor) -> f32,
    {
        let mut grad = Tensor::zeros(input.rows(), input.cols());
        for i in 0..input.len() {
            let mut plus = input.clone();
            plus.data_mut()[i] += eps;
            let mut minus = input.clone();
            minus.data_mut()[i] -= eps;
            grad.data_mut()[i] = (build(&plus) - build(&minus)) / (2.0 * eps);
        }
        grad
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
        for (x, y) in a.data().iter().zip(b.data()) {
            let denom = 1.0f32.max(x.abs()).max(y.abs());
            assert!(
                (x - y).abs() / denom < tol,
                "gradient mismatch: {x} vs {y} (tol {tol})\n{a:?}\n{b:?}"
            );
        }
    }

    fn seeded(rows: usize, cols: usize, seed: u32) -> Tensor {
        // Tiny deterministic LCG; magnitudes ~U(-0.5, 0.5).
        let mut s = seed.wrapping_mul(2_654_435_761).max(1);
        let data = (0..rows * cols)
            .map(|_| {
                s = s.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (s >> 8) as f32 / (1u32 << 24) as f32 - 0.5
            })
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    #[test]
    fn matmul_gradcheck() {
        let a0 = seeded(3, 4, 1);
        let b0 = seeded(4, 2, 2);
        let loss = |a: &Tensor, b: &Tensor| {
            let mut t = Tape::new();
            let (va, vb) = (t.leaf(a.clone()), t.leaf(b.clone()));
            let c = t.matmul(va, vb);
            t.value(c).data().iter().sum::<f32>()
        };
        let mut t = Tape::new();
        let (va, vb) = (t.leaf(a0.clone()), t.leaf(b0.clone()));
        let c = t.matmul(va, vb);
        let ones = Tensor::from_vec(3, 2, vec![1.0; 6]);
        t.backward(c, ones);
        assert_close(&t.grad(va), &finite_diff(|a| loss(a, &b0), &a0, 1e-3), 2e-2);
        assert_close(&t.grad(vb), &finite_diff(|b| loss(&a0, b), &b0, 1e-3), 2e-2);
    }

    #[test]
    fn layer_norm_gradcheck() {
        let x0 = seeded(2, 6, 3);
        let g0 = seeded(1, 6, 4);
        let b0 = seeded(1, 6, 5);
        let loss = |x: &Tensor, g: &Tensor, b: &Tensor| {
            let mut t = Tape::new();
            let (vx, vg, vb) = (t.leaf(x.clone()), t.leaf(g.clone()), t.leaf(b.clone()));
            let y = t.layer_norm(vx, vg, vb);
            t.value(y)
                .data()
                .iter()
                .enumerate()
                .map(|(i, v)| v * (i as f32 + 1.0))
                .sum::<f32>()
        };
        let mut t = Tape::new();
        let (vx, vg, vb) = (t.leaf(x0.clone()), t.leaf(g0.clone()), t.leaf(b0.clone()));
        let y = t.layer_norm(vx, vg, vb);
        let seed = Tensor::from_vec(2, 6, (0..12).map(|i| i as f32 + 1.0).collect());
        t.backward(y, seed);
        assert_close(
            &t.grad(vx),
            &finite_diff(|x| loss(x, &g0, &b0), &x0, 1e-3),
            3e-2,
        );
        assert_close(
            &t.grad(vg),
            &finite_diff(|g| loss(&x0, g, &b0), &g0, 1e-3),
            3e-2,
        );
        assert_close(
            &t.grad(vb),
            &finite_diff(|b| loss(&x0, &g0, b), &b0, 1e-3),
            3e-2,
        );
    }

    #[test]
    fn attention_gradcheck() {
        let (s, h, heads) = (4, 6, 2);
        let q0 = seeded(s, h, 7);
        let k0 = seeded(s, h, 8);
        let v0 = seeded(s, h, 9);
        let weight: Vec<f32> = (0..s * h).map(|i| ((i % 5) as f32 - 2.0) / 3.0).collect();
        let loss = |q: &Tensor, k: &Tensor, v: &Tensor| {
            let mut t = Tape::new();
            let (vq, vk, vv) = (t.leaf(q.clone()), t.leaf(k.clone()), t.leaf(v.clone()));
            let o = t.causal_attention(vq, vk, vv, heads);
            t.value(o)
                .data()
                .iter()
                .zip(&weight)
                .map(|(a, w)| a * w)
                .sum::<f32>()
        };
        let mut t = Tape::new();
        let (vq, vk, vv) = (t.leaf(q0.clone()), t.leaf(k0.clone()), t.leaf(v0.clone()));
        let o = t.causal_attention(vq, vk, vv, heads);
        t.backward(o, Tensor::from_vec(s, h, weight.clone()));
        assert_close(
            &t.grad(vq),
            &finite_diff(|q| loss(q, &k0, &v0), &q0, 1e-3),
            4e-2,
        );
        assert_close(
            &t.grad(vk),
            &finite_diff(|k| loss(&q0, k, &v0), &k0, 1e-3),
            4e-2,
        );
        assert_close(
            &t.grad(vv),
            &finite_diff(|v| loss(&q0, &k0, v), &v0, 1e-3),
            4e-2,
        );
    }

    #[test]
    fn gelu_and_bias_gradcheck() {
        let x0 = seeded(2, 5, 11);
        let b0 = seeded(1, 5, 12);
        let loss = |x: &Tensor, b: &Tensor| {
            let mut t = Tape::new();
            let (vx, vb) = (t.leaf(x.clone()), t.leaf(b.clone()));
            let y = t.add_bias(vx, vb);
            let z = t.gelu(y);
            t.value(z).data().iter().sum::<f32>()
        };
        let mut t = Tape::new();
        let (vx, vb) = (t.leaf(x0.clone()), t.leaf(b0.clone()));
        let y = t.add_bias(vx, vb);
        let z = t.gelu(y);
        t.backward(z, Tensor::from_vec(2, 5, vec![1.0; 10]));
        assert_close(&t.grad(vx), &finite_diff(|x| loss(x, &b0), &x0, 1e-3), 2e-2);
        assert_close(&t.grad(vb), &finite_diff(|b| loss(&x0, b), &b0, 1e-3), 2e-2);
    }

    #[test]
    fn cross_entropy_gradcheck() {
        let l0 = seeded(3, 5, 13);
        let targets = vec![1usize, 4, 0];
        let loss = |l: &Tensor| {
            let mut t = Tape::new();
            let vl = t.leaf(l.clone());
            let c = t.cross_entropy(vl, &targets);
            t.value(c).at(0, 0)
        };
        let mut t = Tape::new();
        let vl = t.leaf(l0.clone());
        let c = t.cross_entropy(vl, &targets);
        t.backward(c, Tensor::from_vec(1, 1, vec![1.0]));
        assert_close(&t.grad(vl), &finite_diff(loss, &l0, 1e-3), 2e-2);
    }

    #[test]
    fn embedding_scatters_gradients() {
        let table = seeded(10, 4, 14);
        let pos = seeded(3, 4, 15);
        let mut t = Tape::new();
        let (vt, vp) = (t.leaf(table), t.leaf(pos));
        let e = t.embedding(vt, vp, &[2, 2, 7]);
        let seed = Tensor::from_vec(3, 4, vec![1.0; 12]);
        t.backward(e, seed);
        let dt = t.grad(vt);
        // Token 2 appears twice, token 7 once, others never.
        assert_eq!(dt.at(2, 0), 2.0);
        assert_eq!(dt.at(7, 0), 1.0);
        assert_eq!(dt.at(0, 0), 0.0);
        assert_eq!(t.grad(vp).at(1, 3), 1.0);
    }

    #[test]
    fn silu_mul_gradcheck() {
        let g0 = seeded(2, 5, 21);
        let u0 = seeded(2, 5, 22);
        let loss = |g: &Tensor, u: &Tensor| {
            let mut t = Tape::new();
            let (vg, vu) = (t.leaf(g.clone()), t.leaf(u.clone()));
            let y = t.silu_mul(vg, vu);
            t.value(y).data().iter().sum::<f32>()
        };
        let mut t = Tape::new();
        let (vg, vu) = (t.leaf(g0.clone()), t.leaf(u0.clone()));
        let y = t.silu_mul(vg, vu);
        t.backward(y, Tensor::from_vec(2, 5, vec![1.0; 10]));
        assert_close(&t.grad(vg), &finite_diff(|g| loss(g, &u0), &g0, 1e-3), 2e-2);
        assert_close(&t.grad(vu), &finite_diff(|u| loss(&g0, u), &u0, 1e-3), 2e-2);
    }

    #[test]
    fn gqa_attention_gradcheck() {
        let (s, heads, kv_heads, dh) = (4usize, 4usize, 2usize, 3usize);
        let q0 = seeded(s, heads * dh, 31);
        let k0 = seeded(s, kv_heads * dh, 32);
        let v0 = seeded(s, kv_heads * dh, 33);
        let loss = |q: &Tensor, k: &Tensor, v: &Tensor| {
            let mut t = Tape::new();
            let (vq, vk, vv) = (t.leaf(q.clone()), t.leaf(k.clone()), t.leaf(v.clone()));
            let o = t.causal_attention_gqa(vq, vk, vv, heads, kv_heads);
            t.value(o).data().iter().sum::<f32>()
        };
        let mut t = Tape::new();
        let (vq, vk, vv) = (t.leaf(q0.clone()), t.leaf(k0.clone()), t.leaf(v0.clone()));
        let o = t.causal_attention_gqa(vq, vk, vv, heads, kv_heads);
        let ones = Tensor::from_vec(s, heads * dh, vec![1.0; s * heads * dh]);
        t.backward(o, ones);
        assert_close(
            &t.grad(vq),
            &finite_diff(|q| loss(q, &k0, &v0), &q0, 1e-3),
            4e-2,
        );
        assert_close(
            &t.grad(vk),
            &finite_diff(|k| loss(&q0, k, &v0), &k0, 1e-3),
            4e-2,
        );
        assert_close(
            &t.grad(vv),
            &finite_diff(|v| loss(&q0, &k0, v), &v0, 1e-3),
            4e-2,
        );
    }

    #[test]
    fn gqa_reduces_to_mha_when_heads_match() {
        let (s, h) = (4usize, 6usize);
        let q = seeded(s, h, 41);
        let k = seeded(s, h, 42);
        let v = seeded(s, h, 43);
        let mut t1 = Tape::new();
        let (a, b, c) = (t1.leaf(q.clone()), t1.leaf(k.clone()), t1.leaf(v.clone()));
        let o1 = t1.causal_attention(a, b, c, 2);
        let mut t2 = Tape::new();
        let (a, b, c) = (t2.leaf(q), t2.leaf(k), t2.leaf(v));
        let o2 = t2.causal_attention_gqa(a, b, c, 2, 2);
        assert_eq!(t1.value(o1), t2.value(o2));
    }

    #[test]
    fn dropout_mask_is_replayable_and_scales() {
        let x0 = seeded(4, 8, 51);
        let run = |key: u64| {
            let mut t = Tape::new();
            let vx = t.leaf(x0.clone());
            let y = t.dropout(vx, 0.5, key);
            t.value(y).clone()
        };
        // Same key → identical mask (the recomputation-replay property).
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
        // Kept elements are scaled by 1 / (1 - rate).
        let y = run(7);
        for (a, b) in x0.data().iter().zip(y.data()) {
            assert!(*b == 0.0 || (b - a * 2.0).abs() < 1e-6);
        }
        // Drop fraction is near the rate.
        let zeros = y.data().iter().filter(|v| **v == 0.0).count();
        assert!((4..=28).contains(&zeros), "{zeros} zeros of 32");
    }

    #[test]
    fn dropout_gradient_matches_mask() {
        let x0 = seeded(3, 6, 61);
        let mut t = Tape::new();
        let vx = t.leaf(x0.clone());
        let y = t.dropout(vx, 0.3, 99);
        let kept: Vec<bool> = t.value(y).data().iter().map(|v| *v != 0.0).collect();
        t.backward(y, Tensor::from_vec(3, 6, vec![1.0; 18]));
        let g = t.grad(vx);
        for (i, &k) in kept.iter().enumerate() {
            if k {
                assert!((g.data()[i] - 1.0 / 0.7).abs() < 1e-5);
            } else {
                assert_eq!(g.data()[i], 0.0);
            }
        }
    }

    #[test]
    fn zero_rate_dropout_is_identity() {
        let x0 = seeded(2, 4, 71);
        let mut t = Tape::new();
        let vx = t.leaf(x0.clone());
        let y = t.dropout(vx, 0.0, 1);
        assert_eq!(t.value(y), &x0);
    }

    #[test]
    fn residual_add_gradcheck() {
        let a0 = seeded(2, 3, 16);
        let mut t = Tape::new();
        let va = t.leaf(a0.clone());
        let vb = t.leaf(a0.clone());
        let y = t.add(va, vb);
        t.backward(y, Tensor::from_vec(2, 3, vec![2.0; 6]));
        assert_eq!(t.grad(va).data(), &[2.0; 6]);
        assert_eq!(t.grad(vb).data(), &[2.0; 6]);
    }
}
