//! End-to-end planning latency: the paper's claim that "for typical
//! models like GPT-3 and Llama 2, the entire search process takes only
//! seconds" (§5.3).

use adapipe::{Method, Planner};
use adapipe_hw::presets as hw;
use adapipe_model::{presets, ParallelConfig, TrainConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner");
    group.sample_size(10);

    let cases = [
        (
            "gpt3_8x8",
            Planner::new(presets::gpt3_175b(), hw::cluster_a()),
            8usize,
            8usize,
            1usize,
            4096usize,
            128usize,
        ),
        (
            "llama2_4x8",
            Planner::new(presets::llama2_70b(), hw::cluster_a_with_nodes(4)),
            4,
            8,
            1,
            4096,
            128,
        ),
        (
            "gpt3_16k",
            Planner::new(presets::gpt3_175b(), hw::cluster_a()),
            8,
            8,
            1,
            16384,
            32,
        ),
    ];
    for (name, planner, t, p, d, seq, gbs) in cases {
        let parallel = ParallelConfig::new(t, p, d).unwrap();
        let train = TrainConfig::new(1, seq, gbs).unwrap();
        group.bench_function(BenchmarkId::new("adapipe_search", name), |b| {
            b.iter(|| {
                planner
                    .plan(black_box(Method::AdaPipe), parallel, train)
                    .unwrap()
            });
        });
        let plan = planner.plan(Method::AdaPipe, parallel, train).unwrap();
        group.bench_function(BenchmarkId::new("evaluate", name), |b| {
            b.iter(|| planner.evaluate(black_box(&plan)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_planner);
criterion_main!(benches);
