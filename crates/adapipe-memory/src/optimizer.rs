use serde::{Deserialize, Serialize};
use std::fmt;

/// Optimizer memory description: the `k` of §4.2.
///
/// With ZeRO stage 1 the optimizer states are sharded over the
/// data-parallel group, so a stage holding `N/t` parameters per device
/// spends `state_bytes_per_param · N / (t·d)` on them. Gradient precision
/// is tracked separately because some frameworks accumulate gradients in
/// fp32 (also noted in §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OptimizerSpec {
    /// Bytes of optimizer state per parameter, ZeRO-sharded.
    /// FP32 Adam keeps two states: `2 × 4 = 8`.
    pub state_bytes_per_param: u64,
    /// Bytes of the master parameter copy per parameter, ZeRO-sharded.
    /// 4 when parameters are updated in fp32, 0 when updated in-place.
    pub master_bytes_per_param: u64,
    /// Bytes per gradient element, replicated (not ZeRO-sharded):
    /// 2 for fp16 gradients, 4 for fp32 accumulation.
    pub grad_bytes_per_param: u64,
}

impl OptimizerSpec {
    /// FP32 Adam with an fp32 master copy and fp16 gradients — the
    /// configuration of the paper's evaluation (`k = 2 × 4` states plus
    /// fp32 parameter updates).
    #[must_use]
    pub fn adam_fp32() -> Self {
        OptimizerSpec {
            state_bytes_per_param: 8,
            master_bytes_per_param: 4,
            grad_bytes_per_param: 2,
        }
    }

    /// FP32 Adam with fp32 gradient accumulation.
    #[must_use]
    pub fn adam_fp32_grad_accum() -> Self {
        OptimizerSpec {
            grad_bytes_per_param: 4,
            ..Self::adam_fp32()
        }
    }

    /// Plain SGD in half precision (used by the miniature trainer).
    #[must_use]
    pub fn sgd() -> Self {
        OptimizerSpec {
            state_bytes_per_param: 0,
            master_bytes_per_param: 0,
            grad_bytes_per_param: 2,
        }
    }
}

impl Default for OptimizerSpec {
    fn default() -> Self {
        Self::adam_fp32()
    }
}

impl fmt::Display for OptimizerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "optimizer(state={}B/param, master={}B/param, grad={}B/param)",
            self.state_bytes_per_param, self.master_bytes_per_param, self.grad_bytes_per_param
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_matches_paper_k() {
        let o = OptimizerSpec::adam_fp32();
        // k = 2 × 4 for the two FP32 Adam states.
        assert_eq!(o.state_bytes_per_param, 8);
    }

    #[test]
    fn default_is_adam() {
        assert_eq!(OptimizerSpec::default(), OptimizerSpec::adam_fp32());
    }

    #[test]
    fn grad_accum_variant_doubles_grad_bytes() {
        assert_eq!(
            OptimizerSpec::adam_fp32_grad_accum().grad_bytes_per_param,
            2 * OptimizerSpec::adam_fp32().grad_bytes_per_param
        );
    }
}
