//! `xtask` library surface: the source-level lint pass.
//!
//! Exposed as a library so the fixture-based self-tests in `tests/`
//! can drive individual rules against deliberately-violating source
//! files (see `tests/fixtures/`); the `xtask` binary in `main.rs` is a
//! thin CLI over [`lint::run`].

#![forbid(unsafe_code)]

pub mod lint;
pub mod source;
