pub fn shift(layer_idx: LayerIdx) -> LayerIdx {
    LayerIdx(layer_idx.0 + 1)
}
