//! Quickstart: plan a pipeline-parallel training job with AdaPipe and
//! compare it against the DAPPLE baselines.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use adapipe::{Method, Planner};
use adapipe_hw::presets as hw;
use adapipe_model::{presets, ParallelConfig, TrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A GPT-2-scale model on one 8-GPU cluster-A node: tensor-parallel 2,
    // pipeline 4, sequence length 1024, 32 sequences per batch.
    let planner = Planner::new(presets::gpt2_small(), hw::cluster_a_with_nodes(1));
    let parallel = ParallelConfig::new(2, 4, 1)?;
    let train = TrainConfig::new(1, 1024, 32)?;

    println!("planning {} on {}\n", planner.model(), planner.cluster());

    let mut results = Vec::new();
    for method in [
        Method::DappleFull,
        Method::DappleNone,
        Method::EvenPartitioning,
        Method::AdaPipe,
    ] {
        let plan = planner.plan(method, parallel, train)?;
        let eval = planner.evaluate(&plan);
        println!("{method:<20} {eval}");
        results.push((method, plan, eval));
    }

    // The AdaPipe plan in full: per-stage layer ranges, saved-unit
    // counts, predicted times and memory.
    let (_, ada_plan, ada_eval) = results.last().expect("adapipe ran");
    println!("\n{ada_plan}");

    let (_, _, baseline) = &results[0];
    println!(
        "AdaPipe speedup over DAPPLE-Full: {:.2}x",
        ada_eval.speedup_over(baseline)
    );
    Ok(())
}
