//! Static-verification suite: every plan the planner emits must pass
//! `Planner::verify`, and corrupted plans must be rejected with the
//! right diagnostic (mutation testing of the verifier itself).
//!
//! The corruption classes mirror `docs/static-analysis.md`:
//!   1. gapped/overlapping partition   → `partition-gap`
//!   2. stale per-stage cost           → `cost-drift`
//!   3. activation memory over budget  → `budget-overflow`
//!   4. cyclic task dependencies       → `cycle-detected`
//!   5. wrong stage count              → `stage-count`
//!   6. tampered analytic breakdown    → `breakdown-drift`

use adapipe::{CheckCode, Method, Plan, Planner, VerifyOptions};
use adapipe_check::check_task_graph;
use adapipe_hw::presets as hw;
use adapipe_model::{presets, LayerRange, ParallelConfig, TrainConfig};
use adapipe_sim::{Discipline, OpKind, TaskGraph, TaskMeta};
use adapipe_units::{Bytes, MicroSecs};
use proptest::prelude::*;

type TestResult = Result<(), Box<dyn std::error::Error>>;

fn planner() -> Planner {
    Planner::new(presets::gpt2_small(), hw::cluster_a())
}

fn valid_plan(method: Method) -> Result<(Planner, Plan), Box<dyn std::error::Error>> {
    let planner = planner();
    let parallel = ParallelConfig::new(2, 4, 1)?;
    let train = TrainConfig::new(1, 1024, 32)?;
    let plan = planner.plan(method, parallel, train)?;
    Ok((planner, plan))
}

// ---------------------------------------------------------------------
// Acceptance: every plan from every method verifies clean, including
// the iso-cache spot check for the adaptive methods.

#[test]
fn every_method_produces_a_plan_that_verifies_clean() -> TestResult {
    let planner = planner();
    let parallel = ParallelConfig::new(2, 4, 1)?;
    let train = TrainConfig::new(1, 1024, 32)?;
    for method in Method::all() {
        let Ok(plan) = planner.plan(method, parallel, train) else {
            continue; // infeasible under this config — nothing to verify
        };
        let report = planner.verify(&plan);
        assert!(!report.has_errors(), "{method}: {report}");
    }
    Ok(())
}

#[test]
fn llama_preset_plans_verify_clean() -> TestResult {
    let planner = Planner::new(presets::llama2_70b(), hw::cluster_a_with_nodes(8));
    let parallel = ParallelConfig::new(8, 8, 1)?;
    let train = TrainConfig::new(1, 4096, 64)?;
    for method in [
        Method::AdaPipe,
        Method::EvenPartitioning,
        Method::DappleFull,
    ] {
        let Ok(plan) = planner.plan(method, parallel, train) else {
            continue;
        };
        let report = planner.verify(&plan);
        assert!(!report.has_errors(), "{method}: {report}");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any (p, n) the planner accepts yields a plan the verifier accepts —
    /// the planner and verifier agree on every invariant by construction.
    #[test]
    fn planner_output_always_verifies(
        p in 2usize..=6,
        n_scale in 1usize..=3,
        method_idx in 0usize..13,
    ) {
        let method = Method::all()[method_idx % Method::all().len()];
        let planner = planner();
        let Ok(parallel) = ParallelConfig::new(2, p, 1) else {
            return Ok(());
        };
        // n chosen as a positive multiple of p so Chimera configs are
        // representable too; other methods accept any n >= p.
        let Ok(train) = TrainConfig::new(1, 1024, 2 * p * n_scale) else {
            return Ok(());
        };
        let Ok(plan) = planner.plan(method, parallel, train) else {
            return Ok(());
        };
        let report = planner.verify_with(&plan, VerifyOptions::quick());
        prop_assert!(!report.has_errors(), "{method} p={p}: {report}");
    }
}

// ---------------------------------------------------------------------
// Mutation tests: each corruption class must be rejected with the right
// diagnostic code.

#[test]
fn corruption_gapped_partition_is_rejected() -> TestResult {
    let (planner, mut plan) = valid_plan(Method::AdaPipe)?;
    let r = plan.stages[1].range;
    plan.stages[1].range = LayerRange::new(r.first + 1, r.last);
    let report = planner.verify_with(&plan, VerifyOptions::quick());
    assert!(report.has_errors(), "gapped partition accepted:\n{report}");
    assert!(
        report.has_code(CheckCode::PartitionGap),
        "wrong diagnostic:\n{report}"
    );
    Ok(())
}

#[test]
fn corruption_overlapping_partition_is_rejected() -> TestResult {
    let (planner, mut plan) = valid_plan(Method::AdaPipe)?;
    let r = plan.stages[0].range;
    plan.stages[0].range = LayerRange::new(r.first, r.last + 1);
    let report = planner.verify_with(&plan, VerifyOptions::quick());
    assert!(report.has_code(CheckCode::PartitionGap), "{report}");
    Ok(())
}

#[test]
fn corruption_stale_cost_is_rejected() -> TestResult {
    // A cached cost that no longer matches its strategy — the bug class
    // the iso-cache soundness argument (§5.3) exists to prevent.
    let (planner, mut plan) = valid_plan(Method::AdaPipe)?;
    plan.stages[2].cost.time_f = plan.stages[2].cost.time_f * 2.0;
    let report = planner.verify_with(&plan, VerifyOptions::quick());
    assert!(report.has_errors(), "stale cost accepted:\n{report}");
    assert!(
        report.has_code(CheckCode::CostDrift),
        "wrong diagnostic:\n{report}"
    );
    Ok(())
}

#[test]
fn corruption_memory_overflow_is_rejected() -> TestResult {
    let (planner, mut plan) = valid_plan(Method::AdaPipe)?;
    // Claim far more live intermediates than the device holds. Both the
    // accounting identity and the Eq. (1) budget must fire.
    plan.stages[0].memory.intermediate_bytes = 10 * planner.capacity();
    let report = planner.verify_with(&plan, VerifyOptions::quick());
    assert!(report.has_errors(), "overflow accepted:\n{report}");
    assert!(
        report.has_code(CheckCode::BudgetOverflow),
        "missing budget-overflow:\n{report}"
    );
    assert!(
        report.has_code(CheckCode::MemoryAccounting),
        "missing memory-accounting:\n{report}"
    );
    Ok(())
}

#[test]
fn corruption_stage_count_is_rejected() -> TestResult {
    let (planner, mut plan) = valid_plan(Method::AdaPipe)?;
    plan.stages.pop();
    let report = planner.verify_with(&plan, VerifyOptions::quick());
    assert!(report.has_code(CheckCode::StageCount), "{report}");
    Ok(())
}

#[test]
fn corruption_breakdown_drift_is_rejected() -> TestResult {
    let (planner, mut plan) = valid_plan(Method::AdaPipe)?;
    if let Some(bd) = plan.predicted.as_mut() {
        bd.warmup = bd.warmup * 3.0;
    }
    let report = planner.verify_with(&plan, VerifyOptions::quick());
    assert!(report.has_code(CheckCode::BreakdownDrift), "{report}");
    Ok(())
}

#[test]
fn corruption_cyclic_dependency_is_rejected() {
    // The task-graph check rejects cycles introduced after construction
    // (push() alone cannot create one — deps must precede their task).
    let meta = |m: usize, s: usize| TaskMeta {
        kind: OpKind::Forward,
        micro_batch: m,
        stage: s,
        replica: 0,
    };
    let mut g = TaskGraph::new("cyclic", 2, Discipline::GreedyPriority);
    let a = g.push(
        0,
        MicroSecs::new(1.0),
        vec![],
        Bytes::ZERO,
        Bytes::ZERO,
        0,
        meta(0, 0),
    );
    let b = g.push(
        1,
        MicroSecs::new(1.0),
        vec![(a, MicroSecs::ZERO)],
        Bytes::ZERO,
        Bytes::ZERO,
        1,
        meta(0, 1),
    );
    g.add_dep(a, b, MicroSecs::ZERO); // a -> b -> a
    let diags = check_task_graph(&g);
    assert!(
        diags.iter().any(|d| d.code == CheckCode::CycleDetected),
        "cycle not detected: {diags:?}"
    );
}

#[test]
fn corrupted_plans_name_the_offending_stage() -> TestResult {
    let (planner, mut plan) = valid_plan(Method::AdaPipe)?;
    plan.stages[2].cost.time_f = plan.stages[2].cost.time_f * 2.0;
    let report = planner.verify_with(&plan, VerifyOptions::quick());
    let text = report.to_string();
    assert!(
        text.contains("stage 2"),
        "diagnostic does not name stage 2:\n{text}"
    );
    Ok(())
}
