//! The sharded, LRU-bounded, content-addressed plan cache.
//!
//! Entries are keyed by the request digest (see
//! [`crate::request::PlanRequest::digest`]) and hold the *exact
//! response body bytes* of the cold plan, so a cache hit is
//! byte-identical to the response the cold path produced — the
//! property the CI `serve` job byte-diffs.
//!
//! The map is split into shards, each behind its own mutex, so
//! concurrent workers on different digests do not serialize on one
//! lock. Every shard is LRU-bounded: the per-shard capacity is the
//! total capacity divided across shards, and inserting past it evicts
//! the least-recently-used entry (lookup order is tracked with a
//! per-shard monotone tick, not wall clock, keeping eviction
//! deterministic).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

#[derive(Debug)]
struct Entry {
    body: Arc<str>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<String, Entry>,
    tick: u64,
}

/// A sharded LRU cache from digest to response body.
#[derive(Debug)]
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    per_shard: usize,
    capacity: usize,
}

impl PlanCache {
    /// How many independently-locked shards the cache splits into (or
    /// fewer for tiny capacities, so `capacity` stays exact).
    pub const SHARDS: usize = 8;

    /// A cache holding at most `capacity` plans (floored at 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let shard_count = Self::SHARDS.min(capacity);
        let per_shard = capacity.div_ceil(shard_count);
        PlanCache {
            shards: (0..shard_count)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            per_shard,
            capacity,
        }
    }

    /// The configured capacity bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn with_shard<R>(&self, digest: &str, f: impl FnOnce(&mut Shard) -> R) -> Option<R> {
        // FNV-1a over the digest picks the shard; the digest is already
        // uniform (SHA-256), the hash just folds it to an index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in digest.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
        let idx = (h as usize) % self.shards.len().max(1);
        self.shards.get(idx).map(|m| {
            // Recover from a poisoned lock: a panicking worker must not
            // take the cache down with it.
            let mut shard = m.lock().unwrap_or_else(|e| e.into_inner());
            f(&mut shard)
        })
    }

    /// Looks up a digest, refreshing its LRU position.
    #[must_use]
    pub fn get(&self, digest: &str) -> Option<Arc<str>> {
        self.with_shard(digest, |shard| {
            shard.tick += 1;
            let tick = shard.tick;
            shard.entries.get_mut(digest).map(|e| {
                e.last_used = tick;
                Arc::clone(&e.body)
            })
        })
        .flatten()
    }

    /// Inserts (or refreshes) a digest → body mapping and returns how
    /// many entries the LRU bound evicted to make room.
    pub fn insert(&self, digest: &str, body: Arc<str>) -> u64 {
        let per_shard = self.per_shard;
        self.with_shard(digest, |shard| {
            shard.tick += 1;
            let tick = shard.tick;
            shard.entries.insert(
                digest.to_string(),
                Entry {
                    body,
                    last_used: tick,
                },
            );
            let mut evicted = 0;
            while shard.entries.len() > per_shard {
                let victim = shard
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone());
                match victim {
                    Some(k) => {
                        shard.entries.remove(&k);
                        evicted += 1;
                    }
                    None => break,
                }
            }
            evicted
        })
        .unwrap_or(0)
    }

    /// Number of cached plans across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|m| m.lock().unwrap_or_else(|e| e.into_inner()).entries.len())
            .sum()
    }

    /// Whether the cache holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(text: &str) -> Arc<str> {
        Arc::from(text)
    }

    #[test]
    fn get_returns_the_exact_inserted_bytes() {
        let cache = PlanCache::new(16);
        let original = body("adapipe-plan v2\nstage 0 ...\n");
        cache.insert("d1", Arc::clone(&original));
        let hit = cache.get("d1").unwrap();
        assert!(
            Arc::ptr_eq(&hit, &original),
            "hit must share the cold bytes"
        );
        assert!(cache.get("d2").is_none());
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        // Capacity 2 → a single shard of 2, so ordering is observable.
        let cache = PlanCache::new(2);
        assert_eq!(cache.shards.len(), 2);
        let cache = PlanCache::new(1);
        cache.insert("a", body("A"));
        cache.insert("b", body("B"));
        assert_eq!(cache.len(), 1);
        assert!(cache.get("a").is_none(), "oldest entry evicted");
        assert!(cache.get("b").is_some());
    }

    #[test]
    fn touching_an_entry_protects_it_from_eviction() {
        // One shard (capacity 1 per shard would evict immediately), so
        // use a handcrafted single-shard cache of capacity 2.
        let cache = PlanCache {
            shards: vec![Mutex::new(Shard::default())],
            per_shard: 2,
            capacity: 2,
        };
        cache.insert("a", body("A"));
        cache.insert("b", body("B"));
        assert!(cache.get("a").is_some(), "refresh a");
        let evicted = cache.insert("c", body("C"));
        assert_eq!(evicted, 1);
        assert!(cache.get("a").is_some(), "recently-used survives");
        assert!(cache.get("b").is_none(), "lru entry evicted");
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn capacity_is_respected_under_many_inserts() {
        let cache = PlanCache::new(8);
        for i in 0..100 {
            cache.insert(&format!("digest-{i}"), body("x"));
        }
        // div_ceil may round per-shard capacity up by at most 1 each.
        assert!(cache.len() <= cache.capacity() + PlanCache::SHARDS);
        assert!(!cache.is_empty());
    }

    #[test]
    fn reinserting_a_digest_does_not_grow_the_cache() {
        let cache = PlanCache::new(4);
        for _ in 0..10 {
            cache.insert("same", body("x"));
        }
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_access_from_many_threads_is_safe() {
        let cache = Arc::new(PlanCache::new(32));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let digest = format!("d-{}", (t * 7 + i) % 40);
                        if cache.get(&digest).is_none() {
                            cache.insert(&digest, Arc::from("body"));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= cache.capacity() + PlanCache::SHARDS);
    }
}
