//! Extension: offload-aware hybrid strategies (the §8 SuperNeurons /
//! MPress direction the paper contrasts against but does not search).
//!
//! For GPT-3's most memory-pressured stage, compare the plain
//! save/recompute knapsack against the three-way save/recompute/offload
//! hybrid across PCIe qualities.

use adapipe_bench::print_table;
use adapipe_hw::presets as hw;
use adapipe_model::{presets, LayerSeq, ParallelConfig, TrainConfig};
use adapipe_profiler::Profiler;
use adapipe_recompute::{optimize, optimize_hybrid, OffloadLink};
use adapipe_units::{Bytes, BytesPerSec};

fn main() {
    let model = presets::gpt3_175b();
    let parallel = ParallelConfig::new(8, 8, 1).expect("valid");
    let train = TrainConfig::new(1, 16384, 32).expect("valid");
    let table = Profiler::new(hw::cluster_a()).profile(&model, &parallel, &train);
    let seq = LayerSeq::for_model(&model);
    let range = seq.even_partition(8)[0]; // stage 0: tightest budget
    let units = table.units_in(range);
    let all: Bytes = units.iter().map(|u| u.mem_saved).sum();

    let links = [
        ("no offload", None),
        (
            "pcie3 (12 GB/s, 30% ovl)",
            Some(OffloadLink {
                bandwidth: BytesPerSec::new(12e9),
                overlap: 0.3,
            }),
        ),
        ("pcie4 (25 GB/s, 50% ovl)", Some(OffloadLink::pcie4())),
        (
            "pcie5 (50 GB/s, 70% ovl)",
            Some(OffloadLink {
                bandwidth: BytesPerSec::new(50e9),
                overlap: 0.7,
            }),
        ),
    ];

    let mut rows = Vec::new();
    for frac in [20u64, 40, 60] {
        let budget = all * frac / 100;
        let plain = optimize(&units, budget).expect("feasible");
        for (label, link) in links {
            let (time_b, counts, shipped) = match link {
                None => (
                    plain.cost.time_b,
                    (
                        plain.strategy.saved_count(),
                        plain.strategy.recomputed_count(),
                        0,
                    ),
                    Bytes::ZERO,
                ),
                Some(l) => {
                    let h = optimize_hybrid(&units, budget, l).expect("feasible");
                    (h.time_b, h.counts(), h.offloaded_bytes_per_mb)
                }
            };
            rows.push(vec![
                format!("{frac}%"),
                label.to_string(),
                format!("{:.0}", time_b.as_millis()),
                format!(
                    "{:.1}%",
                    100.0 * (plain.cost.time_b - time_b) / plain.cost.time_b
                ),
                format!("{}/{}/{}", counts.0, counts.1, counts.2),
                format!("{:.2}", shipped.as_f64() / 1e9),
            ]);
        }
    }
    print_table(
        "Extension: offload-aware hybrid knapsack — GPT-3 stage 0, seq 16384, (8,8,1)",
        &[
            "budget",
            "link",
            "backward (ms)",
            "bwd saved",
            "save/recomp/offload",
            "shipped GB/mb",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: a faster, better-overlapped host link converts recomputed \
         units into offloaded ones and shaves backward time; with no viable link the \
         hybrid degenerates to the paper's save/recompute knapsack exactly."
    );
}
