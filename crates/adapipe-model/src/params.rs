//! Parameter counting for layers and layer ranges.
//!
//! §4.2 of the paper sizes the recomputation-independent part of memory
//! (parameters, gradients, optimizer states) from the per-layer parameter
//! counts `P_a` and `P_f`; these functions provide them.

use crate::layer::LayerKind;
use crate::seq::{LayerRange, LayerSeq};
use crate::spec::{FfnKind, ModelSpec};

impl ModelSpec {
    /// Number of parameters in one layer of `kind`.
    ///
    /// Attention: QKV and output projections plus the preceding layer norm
    /// (`2h² + 2·h·kv_hidden + 2h`). Feed-forward: two (GeLU) or three
    /// (SwiGLU) projection matrices plus layer norm. Embedding and head:
    /// one `vocab × h` matrix each (the head also owns the final norm).
    #[must_use]
    pub fn layer_params(&self, kind: LayerKind) -> u64 {
        let h = self.hidden() as u64;
        let kv = self.kv_hidden() as u64;
        let i = self.ffn_hidden() as u64;
        let v = self.vocab() as u64;
        match kind {
            LayerKind::Embedding => v * h,
            LayerKind::DecodingHead => v * h + 2 * h,
            LayerKind::Attention => 2 * h * h + 2 * h * kv + 2 * h,
            LayerKind::FeedForward => match self.ffn() {
                FfnKind::Gelu => 2 * h * i + 2 * h,
                FfnKind::SwiGlu => 3 * h * i + 2 * h,
            },
        }
    }

    /// Total parameters of the whole model.
    #[must_use]
    pub fn total_params(&self) -> u64 {
        let l = self.decoder_layers() as u64;
        self.layer_params(LayerKind::Embedding)
            + l * (self.layer_params(LayerKind::Attention)
                + self.layer_params(LayerKind::FeedForward))
            + self.layer_params(LayerKind::DecodingHead)
    }

    /// Parameters of the layers in `range` of `seq`.
    #[must_use]
    pub fn range_params(&self, seq: &LayerSeq, range: LayerRange) -> u64 {
        seq.slice(range)
            .iter()
            .map(|l| self.layer_params(l.kind))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn gpt3_is_about_175b_params() {
        let spec = presets::gpt3_175b();
        let n = spec.total_params() as f64;
        assert!((1.70e11..1.80e11).contains(&n), "gpt-3 params = {n:.3e}");
    }

    #[test]
    fn llama2_is_about_70b_params() {
        let spec = presets::llama2_70b();
        let n = spec.total_params() as f64;
        assert!((6.6e10..7.2e10).contains(&n), "llama-2 params = {n:.3e}");
    }

    #[test]
    fn range_params_sum_to_total() {
        let spec = presets::gpt3_175b();
        let seq = LayerSeq::for_model(&spec);
        let full = LayerRange::new(0, seq.len() - 1);
        assert_eq!(spec.range_params(&seq, full), spec.total_params());
        let parts = seq.even_partition(8);
        let sum: u64 = parts.iter().map(|r| spec.range_params(&seq, *r)).sum();
        assert_eq!(sum, spec.total_params());
    }

    #[test]
    fn ffn_dominates_attention_in_gpt3() {
        let spec = presets::gpt3_175b();
        assert!(
            spec.layer_params(LayerKind::FeedForward) > spec.layer_params(LayerKind::Attention)
        );
    }
}
