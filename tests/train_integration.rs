//! Integration between the planner and the miniature execution engine:
//! plans produced by the real search must run on the real trainer with
//! unchanged numerics (the §7.5 validation, end to end).

use adapipe::{Method, Planner};
use adapipe_hw::{ClusterSpec, DeviceSpec, LinkSpec};
use adapipe_model::{ParallelConfig, TrainConfig};
use adapipe_train::{train, TrainerConfig};
use adapipe_units::{Bytes, BytesPerSec, FlopsPerSec, MicroSecs};

fn toy_cluster(capacity: u64) -> ClusterSpec {
    let device = DeviceSpec::builder("toy")
        .mem_bytes(Bytes::new(capacity))
        .peak_flops(FlopsPerSec::new(1e12))
        .hbm_bandwidth(BytesPerSec::new(1e11))
        .build();
    ClusterSpec::new(
        "toy",
        device,
        2,
        1,
        LinkSpec::new(BytesPerSec::new(1e10), MicroSecs::new(1.0)),
        LinkSpec::new(BytesPerSec::new(1e9), MicroSecs::new(10.0)),
    )
}

/// Maps a planner plan onto the trainer configuration.
fn apply_plan(cfg: &TrainerConfig, plan: &adapipe::Plan) -> TrainerConfig {
    let partition = plan
        .stages
        .iter()
        .map(|s| (s.range.first, s.range.last))
        .collect();
    let flags = plan
        .stages
        .iter()
        .map(|s| s.strategy.iter().collect())
        .collect();
    cfg.with_partition(partition).with_adaptive(flags)
}

#[test]
fn planned_strategies_execute_with_exact_numerics() {
    let cfg = TrainerConfig::tiny_for_tests();
    let spec = cfg.model_spec();
    let parallel = ParallelConfig::new(1, cfg.stages, 1).expect("valid");
    let train_cfg = TrainConfig::new(1, cfg.seq_len, cfg.micro_batches).expect("valid");

    let reference = train(&cfg.with_no_recompute());

    // Plan under progressively tighter toy devices; every feasible plan
    // must reproduce the reference losses bit-for-bit. The 1 KB steps
    // walk through the band where the knapsack makes nontrivial
    // decisions.
    let mut tested = 0;
    let mut nontrivial = 0;
    for capacity in (40..=256u64).rev().step_by(1).map(|k| k * 1024) {
        let planner = Planner::new(spec.clone(), toy_cluster(capacity));
        let Ok(plan) = planner.plan(Method::AdaPipe, parallel, train_cfg) else {
            continue;
        };
        if plan
            .stages
            .iter()
            .any(|st| st.strategy.recomputed_count() > 0)
        {
            nontrivial += 1;
        } else if nontrivial > 0 || capacity > 128 * 1024 {
            continue; // only exercise a handful of all-saved plans
        }
        let run = train(&apply_plan(&cfg, &plan));
        assert_eq!(run.losses, reference.losses, "capacity {capacity}");
        tested += 1;
        if nontrivial >= 4 {
            break;
        }
    }
    assert!(tested >= 2, "expected at least two feasible toy capacities");
    assert!(nontrivial >= 1, "no capacity forced a mixed strategy");
}

#[test]
fn tighter_devices_save_fewer_units() {
    let cfg = TrainerConfig::tiny_for_tests();
    let spec = cfg.model_spec();
    let parallel = ParallelConfig::new(1, cfg.stages, 1).expect("valid");
    let train_cfg = TrainConfig::new(1, cfg.seq_len, cfg.micro_batches).expect("valid");

    let saved_total = |capacity: u64| -> Option<usize> {
        let planner = Planner::new(spec.clone(), toy_cluster(capacity));
        planner
            .plan(Method::AdaPipe, parallel, train_cfg)
            .ok()
            .map(|p| p.saved_units_per_stage().iter().sum())
    };
    let loose = saved_total(1 << 24).expect("loose device is feasible");
    let mut shrank = false;
    let mut last = loose;
    for capacity in (32..=96u64).rev().map(|k| k * 1024) {
        let Some(t) = saved_total(capacity) else {
            continue;
        };
        assert!(t <= loose, "tight device saved more units than a loose one");
        if t < last {
            shrank = true;
        }
        last = t;
    }
    assert!(shrank, "no capacity actually forced recomputation");
}

#[test]
fn even_partitioning_plan_also_executes() {
    let cfg = TrainerConfig::tiny_for_tests();
    let spec = cfg.model_spec();
    let parallel = ParallelConfig::new(1, cfg.stages, 1).expect("valid");
    let train_cfg = TrainConfig::new(1, cfg.seq_len, cfg.micro_batches).expect("valid");
    let planner = Planner::new(spec, toy_cluster(1 << 18));
    let Ok(plan) = planner.plan(Method::EvenPartitioning, parallel, train_cfg) else {
        return; // acceptably infeasible at this capacity
    };
    let run = train(&apply_plan(&cfg, &plan));
    assert_eq!(run.losses, train(&cfg.with_no_recompute()).losses);
}
