//! Offline shim for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public types
//! but never instantiates a serializer (there is no `serde_json` in the
//! dependency tree), so the derives only need to exist, not to generate
//! code. Emitting an empty token stream keeps every `#[derive(...)]`
//! site compiling in an offline build environment with no crates.io
//! access. See `shims/README.md` for the swap-back story.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
