//! A sharded, LRU-bounded cache from 32-byte content digests to shared
//! values — the engine behind the process-global subproblem cache.
//!
//! The shape mirrors `adapipe-serve`'s plan cache (independently-locked
//! shards, per-shard monotone tick for deterministic LRU order) but is
//! generic over the value and keyed by raw [`crate::sha256`] digests,
//! and it additionally keeps exact hit/miss/eviction counters plus
//! approximate byte accounting so `/metrics` can report `subcache.*`
//! gauges. Values are handed out as `Arc` clones: a hit never copies
//! the cached payload and eviction never invalidates a value a reader
//! already holds.

use crate::stats::CacheStats;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A cache key: a SHA-256 digest of the canonical encoding of whatever
/// the value was computed from.
pub type Digest = [u8; 32];

#[derive(Debug)]
struct Entry<V> {
    value: Arc<V>,
    bytes: u64,
    last_used: u64,
}

#[derive(Debug)]
struct Shard<V> {
    entries: HashMap<Digest, Entry<V>>,
    tick: u64,
}

impl<V> Default for Shard<V> {
    fn default() -> Self {
        Shard {
            entries: HashMap::new(),
            tick: 0,
        }
    }
}

/// A sharded LRU cache from content digest to `Arc<V>`.
#[derive(Debug)]
pub struct ShardedCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    per_shard: usize,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    bytes: AtomicU64,
}

impl<V> ShardedCache<V> {
    /// How many independently-locked shards the cache splits into (or
    /// fewer for tiny capacities, so `capacity` stays exact).
    pub const SHARDS: usize = 16;

    /// A cache holding at most `capacity` entries (floored at 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let shard_count = Self::SHARDS.min(capacity);
        ShardedCache {
            shards: (0..shard_count)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            per_shard: capacity.div_ceil(shard_count),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// The configured entry-count bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently cached, summed over shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| self.lock(s).entries.len()).sum()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exact hit/miss counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Entries evicted by the LRU bound so far.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Approximate bytes currently held, as declared by inserters.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Looks up `key`, counting a hit or miss.
    #[must_use]
    pub fn get(&self, key: &Digest) -> Option<Arc<V>> {
        let Some(target) = self.shard_for(key) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let mut shard = self.lock(target);
        shard.tick = shard.tick.wrapping_add(1);
        let tick = shard.tick;
        match shard.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, declaring the entry's approximate
    /// payload size for the `subcache.bytes` gauge; returns how many
    /// entries the LRU bound evicted to make room.
    pub fn insert(&self, key: Digest, value: V, approx_bytes: u64) -> usize {
        let per_shard = self.per_shard;
        let Some(target) = self.shard_for(&key) else {
            return 0;
        };
        let mut shard = self.lock(target);
        shard.tick = shard.tick.wrapping_add(1);
        let tick = shard.tick;
        if let Some(old) = shard.entries.insert(
            key,
            Entry {
                value: Arc::new(value),
                bytes: approx_bytes,
                last_used: tick,
            },
        ) {
            self.bytes.fetch_sub(old.bytes, Ordering::Relaxed);
        }
        self.bytes.fetch_add(approx_bytes, Ordering::Relaxed);
        let mut evicted = 0usize;
        while shard.entries.len() > per_shard {
            // Oldest tick wins eviction; ties (only possible after a
            // tick wrap) break on the digest so the choice stays
            // deterministic.
            let Some(oldest) = shard
                .entries
                .iter()
                .min_by_key(|(k, e)| (e.last_used, **k))
                .map(|(k, _)| *k)
            else {
                break;
            };
            if let Some(old) = shard.entries.remove(&oldest) {
                self.bytes.fetch_sub(old.bytes, Ordering::Relaxed);
            }
            evicted += 1;
        }
        self.evictions.fetch_add(
            u64::try_from(evicted).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        evicted
    }

    /// The shard `key` lands in. `None` is unreachable (the modulus
    /// keeps the index in range) but handled gracefully by callers
    /// rather than panicking.
    fn shard_for(&self, key: &Digest) -> Option<&Mutex<Shard<V>>> {
        // SHA-256 output is uniform; the first 8 bytes pick a shard.
        let mut prefix = [0u8; 8];
        prefix.copy_from_slice(&key[..8]);
        let idx = usize::try_from(u64::from_le_bytes(prefix) % self.shard_len()).unwrap_or(0);
        self.shards.get(idx)
    }

    fn shard_len(&self) -> u64 {
        u64::try_from(self.shards.len().max(1)).unwrap_or(1)
    }

    fn lock<'s>(&self, shard: &'s Mutex<Shard<V>>) -> std::sync::MutexGuard<'s, Shard<V>> {
        shard.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha::sha256;

    fn key(i: u64) -> Digest {
        sha256(&i.to_le_bytes())
    }

    #[test]
    fn get_after_insert_hits() {
        let cache = ShardedCache::new(64);
        assert!(cache.get(&key(1)).is_none());
        cache.insert(key(1), "one", 3);
        assert_eq!(cache.get(&key(1)).as_deref(), Some(&"one"));
        assert_eq!(cache.stats(), CacheStats::new(1, 1));
    }

    #[test]
    fn capacity_bounds_total_entries() {
        let cache = ShardedCache::new(8);
        for i in 0..100 {
            cache.insert(key(i), i, 8);
        }
        // Per-shard rounding can leave len slightly under the bound,
        // never over SHARDS-rounded capacity.
        assert!(cache.len() <= 8 * ShardedCache::<u64>::SHARDS.min(8));
        assert!(cache.evictions() > 0);
    }

    #[test]
    fn bytes_track_inserts_and_evictions() {
        let cache = ShardedCache::new(4);
        for i in 0..50 {
            cache.insert(key(i), i, 10);
        }
        let live = u64::try_from(cache.len()).unwrap();
        assert_eq!(cache.bytes(), live * 10);
    }

    #[test]
    fn reinsert_replaces_bytes_not_duplicates() {
        let cache = ShardedCache::new(16);
        cache.insert(key(7), "a", 100);
        cache.insert(key(7), "b", 40);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes(), 40);
        assert_eq!(cache.get(&key(7)).as_deref(), Some(&"b"));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Single shard (capacity 1 shard min) so LRU order is total.
        let cache = ShardedCache::new(1);
        cache.insert(key(1), 1, 1);
        cache.insert(key(2), 2, 1);
        assert!(cache.get(&key(1)).is_none(), "older entry evicted");
        assert_eq!(cache.get(&key(2)).as_deref(), Some(&2));
    }

    #[test]
    fn tiny_capacity_stays_exact() {
        let cache = ShardedCache::new(2);
        for i in 0..20 {
            cache.insert(key(i), i, 1);
        }
        assert!(cache.len() <= 2);
    }
}
