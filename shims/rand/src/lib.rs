//! Offline shim for `rand`.
//!
//! Implements exactly the surface this workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool}` over
//! integer/float ranges — on top of xoshiro256++ seeded via SplitMix64.
//! Deterministic for a given seed, which is all the profiler noise
//! model, the synthetic data loader and the weight init need. See
//! `shims/README.md` for why this exists.

use std::ops::{Range, RangeInclusive};

/// Construction from seeds (shim of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range a generator can sample uniformly (shim of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from `rng` within the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + (self.end - self.start) * (rng.unit_f64() as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                lo + (hi - lo) * (rng.unit_f64() as $t)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Sampling methods (shim of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.unit_f64() < p
    }
}

pub mod rngs {
    //! Concrete generators (shim of `rand::rngs`).

    use super::{Rng, SeedableRng};

    /// xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    /// Deterministic per seed; not cryptographically secure (neither is
    /// the use here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&f));
            let g = rng.gen_range(1e-6f32..1.0);
            assert!((1e-6..1.0).contains(&g));
            let b = rng.gen_range(0u8..=255);
            let _ = b;
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
