//! The JSON metrics report: everything a run recorded, as one
//! machine-readable document (the artifact behind `--metrics-out` and
//! the `results/BENCH_*.json` files).

// lint: allow-file(swallowed-result): fmt::Write into a String cannot fail
use crate::recorder::Snapshot;
use std::fmt::Write as _;

/// Escapes `s` for inclusion in a JSON string literal.
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a float as JSON (JSON has no NaN/Infinity; they become
/// `null`).
#[must_use]
pub fn json_num(v: f64) -> String {
    if v.is_finite() {
        // Trim to a stable, compact form.
        let s = format!("{v:.6}");
        let s = s.trim_end_matches('0').trim_end_matches('.');
        if s.is_empty() || s == "-" {
            "0".to_string()
        } else {
            s.to_string()
        }
    } else {
        "null".to_string()
    }
}

/// Renders `snapshot` as a self-describing JSON metrics report.
///
/// `meta` key/value pairs land under `"meta"` (model name, method,
/// command line — whatever identifies the run). Histograms are exported
/// as `{count, sum, p50, p95, p99, max}` objects; spans are aggregated
/// per name into `{count, total_us}` (the full per-event stream belongs
/// to the Chrome trace, not the metrics report).
#[must_use]
pub fn metrics_json(snapshot: &Snapshot, meta: &[(&str, &str)]) -> String {
    let mut out = String::from("{\n  \"schema\": \"adapipe-obs/v1\",\n");

    out.push_str("  \"meta\": {");
    for (i, (k, v)) in meta.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": \"{}\"", escape_json(k), escape_json(v));
    }
    out.push_str(if meta.is_empty() { "},\n" } else { "\n  },\n" });

    out.push_str("  \"counters\": {");
    for (i, (k, v)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {v}", escape_json(k));
    }
    out.push_str(if snapshot.counters.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });

    out.push_str("  \"gauges\": {");
    for (i, (k, v)) in snapshot.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", escape_json(k), json_num(*v));
    }
    out.push_str(if snapshot.gauges.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });

    out.push_str("  \"histograms\": {");
    for (i, (k, h)) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}",
            escape_json(k),
            h.count,
            json_num(h.sum),
            json_num(h.p50),
            json_num(h.p95),
            json_num(h.p99),
            json_num(h.max)
        );
    }
    out.push_str(if snapshot.histograms.is_empty() {
        "},\n"
    } else {
        "\n  },\n"
    });

    // Aggregate spans by name, preserving first-seen order.
    let mut order: Vec<&str> = Vec::new();
    let mut agg: std::collections::BTreeMap<&str, (u64, f64)> = std::collections::BTreeMap::new();
    for s in &snapshot.spans {
        let e = agg.entry(&s.name).or_insert_with(|| {
            order.push(&s.name);
            (0, 0.0)
        });
        e.0 += 1;
        e.1 += s.dur_us;
    }
    out.push_str("  \"spans\": {");
    for (i, name) in order.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (count, total) = agg[name];
        let _ = write!(
            out,
            "\n    \"{}\": {{\"count\": {count}, \"total_us\": {}}}",
            escape_json(name),
            json_num(total)
        );
    }
    out.push_str(if order.is_empty() { "}\n" } else { "\n  }\n" });

    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};
    use crate::Recorder;

    #[test]
    fn report_is_valid_json_and_complete() {
        let rec = Recorder::new();
        rec.add("a.count", 7);
        rec.gauge("b.level", 0.5);
        rec.observe("c.us", 12.0);
        rec.observe("c.us", 18.0);
        rec.time("phase", || {});
        rec.time("phase", || {});
        let text = metrics_json(
            &rec.snapshot(),
            &[("model", "gpt2"), ("note", "a \"q\" \n")],
        );
        let v = parse(&text).expect("valid JSON");
        let Value::Object(top) = v else {
            panic!("not an object")
        };
        assert_eq!(
            top.get("schema"),
            Some(&Value::String("adapipe-obs/v1".into()))
        );
        let Some(Value::Object(counters)) = top.get("counters") else {
            panic!("no counters")
        };
        assert_eq!(counters.get("a.count"), Some(&Value::Number(7.0)));
        let Some(Value::Object(hists)) = top.get("histograms") else {
            panic!("no histograms")
        };
        let Some(Value::Object(c)) = hists.get("c.us") else {
            panic!("no c.us")
        };
        assert_eq!(c.get("count"), Some(&Value::Number(2.0)));
        let Some(Value::Object(spans)) = top.get("spans") else {
            panic!("no spans")
        };
        let Some(Value::Object(phase)) = spans.get("phase") else {
            panic!("no phase")
        };
        assert_eq!(phase.get("count"), Some(&Value::Number(2.0)));
    }

    #[test]
    fn empty_snapshot_is_still_valid_json() {
        let text = metrics_json(&Recorder::new().snapshot(), &[]);
        assert!(parse(&text).is_ok(), "{text}");
    }

    #[test]
    fn numbers_render_compactly() {
        assert_eq!(json_num(1.0), "1");
        assert_eq!(json_num(0.5), "0.5");
        assert_eq!(json_num(-2.25), "-2.25");
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
        assert_eq!(json_num(0.0), "0");
    }

    #[test]
    fn escaping_handles_control_characters() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
