//! Workspace-level observability regressions: the instrumented search
//! engine must (a) keep results identical with a recorder attached,
//! (b) hit the §5.3 isomorphism cache on a GPT-like model, and (c)
//! export a structurally valid Chrome trace of the whole search.

use adapipe::{Method, Planner, Recorder};
use adapipe_hw::presets as hw;
use adapipe_model::{presets, ParallelConfig, TrainConfig};
use adapipe_obs::json::{parse, Value};
use adapipe_obs::{report, trace};
use adapipe_units::MicroSecs;

fn planned_recorder() -> (Recorder, MicroSecs) {
    let rec = Recorder::new();
    let planner = Planner::new(presets::gpt2_small(), hw::cluster_a()).with_recorder(rec.clone());
    let parallel = ParallelConfig::new(2, 4, 1).unwrap();
    let train = TrainConfig::new(1, 1024, 32).unwrap();
    let plan = planner.plan(Method::AdaPipe, parallel, train).unwrap();
    let eval = planner.evaluate(&plan);
    (rec, eval.iteration_time)
}

#[test]
fn recorder_does_not_change_the_plan() {
    let (_, traced_time) = planned_recorder();
    let planner = Planner::new(presets::gpt2_small(), hw::cluster_a());
    let parallel = ParallelConfig::new(2, 4, 1).unwrap();
    let train = TrainConfig::new(1, 1024, 32).unwrap();
    let plan = planner.plan(Method::AdaPipe, parallel, train).unwrap();
    let plain_time = planner.evaluate(&plan).iteration_time;
    assert!(
        (traced_time - plain_time).abs() < MicroSecs::new(1e-12),
        "traced {traced_time} vs plain {plain_time}"
    );
}

#[test]
fn iso_cache_hit_rate_is_nonzero_on_gpt_preset() {
    // The §5.3 isomorphism cache is what makes Algorithm 1 tractable: a
    // homogeneous GPT stack has far fewer window equivalence classes
    // than windows, so most lookups must hit.
    let (rec, _) = planned_recorder();
    let snap = rec.snapshot();
    let hits = snap.counters["partition.iso_cache.hits"];
    let misses = snap.counters["partition.iso_cache.misses"];
    assert!(hits > 0, "no cache hits recorded");
    let rate = hits as f64 / (hits + misses) as f64;
    assert!(
        rate > 0.5,
        "hit rate {rate} suspiciously low ({hits}/{misses})"
    );
}

#[test]
fn full_search_records_the_acceptance_metric_set() {
    let (rec, _) = planned_recorder();
    let snap = rec.snapshot();
    for counter in [
        "recompute.knapsack.calls",
        "partition.leaf_evals",
        "partition.alg1.states",
        "partition.alg1.candidates",
        "sim.events",
        "sim.tasks",
    ] {
        assert!(
            snap.counters.get(counter).copied().unwrap_or(0) > 0,
            "counter {counter} missing or zero: {:?}",
            snap.counters
        );
    }
    let knap = &snap.histograms["recompute.knapsack.us"];
    assert_eq!(knap.count, snap.counters["recompute.knapsack.calls"]);
    assert!(knap.p50 <= knap.p95 && knap.p95 <= knap.max);
}

#[test]
fn memory_pressure_surfaces_knapsack_dp_cells() {
    // At full capacity every gpt2 window saves everything and the
    // knapsack takes its everything-fits shortcut (zero DP cells). A
    // 1 % headroom forces the real DP, whose memory-axis work the
    // cells counter must expose.
    let rec = Recorder::new();
    let planner = Planner::new(presets::gpt2_small(), hw::cluster_a())
        .with_recorder(rec.clone())
        .with_search_headroom(0.01);
    let parallel = ParallelConfig::new(2, 4, 1).unwrap();
    let train = TrainConfig::new(1, 4096, 32).unwrap();
    planner
        .plan(Method::AdaPipe, parallel, train)
        .expect("feasible under 1% headroom");
    let snap = rec.snapshot();
    assert!(snap.counters["recompute.knapsack.cells"] > 0);
    assert!(snap.gauges["recompute.knapsack.gcd_scale"] >= 1.0);
}

#[test]
fn chrome_trace_of_a_real_search_is_golden() {
    let (rec, _) = planned_recorder();
    let snap = rec.snapshot();
    let text = trace::chrome_trace_json(&snap);
    let Value::Array(events) = parse(&text).expect("trace must parse") else {
        panic!("trace must be a JSON array");
    };
    // Every span from the snapshot appears exactly once as a complete
    // ("X") event, plus the single process-metadata event.
    assert_eq!(events.len(), snap.spans.len() + 1);
    let mut last_ts = f64::NEG_INFINITY;
    for ev in &events {
        let ph = ev.get("ph").and_then(Value::as_str).expect("ph");
        if ph == "M" {
            continue;
        }
        assert_eq!(ph, "X", "only complete events: {ev:?}");
        let ts = ev.get("ts").and_then(Value::as_f64).expect("ts");
        let dur = ev.get("dur").and_then(Value::as_f64).expect("dur");
        assert!(ts >= last_ts, "timestamps sorted");
        assert!(ts >= 0.0 && dur >= 0.0, "non-negative times");
        last_ts = ts;
    }
    // The phase spans of the acceptance criteria are present, and each
    // child phase nests inside the root "plan" span.
    let span = |name: &str| -> (f64, f64) {
        events
            .iter()
            .find_map(|e| {
                (e.get("name").and_then(Value::as_str) == Some(name)).then(|| {
                    (
                        e.get("ts").and_then(Value::as_f64).unwrap(),
                        e.get("dur").and_then(Value::as_f64).unwrap(),
                    )
                })
            })
            .unwrap_or_else(|| panic!("span {name} missing"))
    };
    let (pts, pdur) = span("plan");
    for child in ["plan.profile", "plan.partition", "plan.materialize"] {
        let (cts, cdur) = span(child);
        assert!(
            cts >= pts && cts + cdur <= pts + pdur + 1.0,
            "{child} inside plan"
        );
    }
    span("sim.run");
}

#[test]
fn metrics_report_of_a_real_search_parses() {
    let (rec, _) = planned_recorder();
    let text = report::metrics_json(&rec.snapshot(), &[("model", "gpt2-small")]);
    let v = parse(&text).expect("metrics must parse");
    assert_eq!(
        v.get("schema").and_then(Value::as_str),
        Some("adapipe-obs/v1")
    );
    assert!(v.get("counters").is_some() && v.get("spans").is_some());
}
