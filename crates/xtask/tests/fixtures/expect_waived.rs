pub fn read(x: Option<usize>) -> usize {
    // lint: allow(expect): invariant upheld by the constructor
    x.expect("present")
}
