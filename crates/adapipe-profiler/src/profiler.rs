use crate::flops::{boundary_bytes, unit_cost};
use crate::profile::{ProfileTable, UnitProfile};
use adapipe_hw::ClusterSpec;
use adapipe_model::{
    units_for_layer, ComputationUnit, LayerSeq, ModelSpec, ParallelConfig, TrainConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Measurement-noise configuration for robustness experiments: each unit
/// time is multiplied by `1 + e` with `e` uniform in `[-amplitude,
/// +amplitude]`, deterministically from `seed`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Relative amplitude, e.g. `0.05` for ±5 %.
    pub amplitude: f64,
    /// RNG seed; the same seed reproduces the same jitter.
    pub seed: u64,
}

/// Builds [`ProfileTable`]s from a cluster description.
///
/// This is the stand-in for the paper's profiling run: where AdaPipe
/// timestamps each computation unit over 5–10 warm-up iterations, we
/// evaluate a roofline on the [`ClusterSpec`]'s device and interconnect.
#[derive(Debug, Clone)]
pub struct Profiler {
    cluster: ClusterSpec,
    noise: Option<NoiseConfig>,
}

impl Profiler {
    /// Creates a profiler for `cluster`.
    #[must_use]
    pub fn new(cluster: ClusterSpec) -> Self {
        Profiler {
            cluster,
            noise: None,
        }
    }

    /// Adds multiplicative measurement noise to every profiled time.
    #[must_use]
    pub fn with_noise(mut self, noise: NoiseConfig) -> Self {
        self.noise = Some(noise);
        self
    }

    /// The cluster this profiler models.
    #[must_use]
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Profiles every computation unit of `model` under the given
    /// parallelism and workload, yielding per-unit forward/backward times
    /// and saved-memory sizes.
    #[must_use]
    pub fn profile(
        &self,
        model: &ModelSpec,
        parallel: &ParallelConfig,
        train: &TrainConfig,
    ) -> ProfileTable {
        let seq = LayerSeq::for_model(model);
        let device = self.cluster.device().clone();
        let mut rng = self
            .noise
            .map(|n| (StdRng::seed_from_u64(n.seed), n.amplitude));
        let mut per_layer = Vec::with_capacity(seq.len());
        for layer in seq.iter() {
            let mut units = Vec::new();
            for kind in units_for_layer(model, layer.kind) {
                let cost = unit_cost(model, parallel, train, kind);
                let comm = self
                    .cluster
                    .half_collective_time(cost.comm_bytes, parallel.tensor());
                let mut time_f = if kind.is_matmul() {
                    device.matmul_time(cost.flops_f, cost.bytes_moved)
                } else {
                    device.bandwidth_time(cost.bytes_moved)
                } + comm;
                // Backward kernels move roughly the same bytes but do
                // flops_b math; collectives mirror in the backward pass.
                let mut time_b = if kind.is_matmul() {
                    device.matmul_time(cost.flops_b, cost.bytes_moved)
                } else {
                    device.bandwidth_time(cost.bytes_moved)
                } + comm;
                if let Some((rng, amp)) = rng.as_mut() {
                    time_f = time_f * (1.0 + rng.gen_range(-*amp..=*amp));
                    time_b = time_b * (1.0 + rng.gen_range(-*amp..=*amp));
                }
                units.push(UnitProfile {
                    unit: ComputationUnit {
                        kind,
                        layer: layer.index,
                    },
                    time_f,
                    time_b,
                    mem_saved: cost.mem_saved,
                });
            }
            per_layer.push(units);
        }
        ProfileTable::new(per_layer, boundary_bytes(model, parallel, train))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapipe_hw::presets as hw;
    use adapipe_model::presets;
    use adapipe_units::MicroSecs;

    fn setup() -> (ModelSpec, ParallelConfig, TrainConfig) {
        (
            presets::gpt3_175b(),
            ParallelConfig::new(8, 8, 1).unwrap(),
            TrainConfig::new(1, 4096, 128).unwrap(),
        )
    }

    #[test]
    fn profile_is_deterministic_without_noise() {
        let (m, p, t) = setup();
        let prof = Profiler::new(hw::cluster_a());
        assert_eq!(prof.profile(&m, &p, &t), prof.profile(&m, &p, &t));
    }

    #[test]
    fn noise_is_reproducible_per_seed() {
        let (m, p, t) = setup();
        let mk = |seed| {
            Profiler::new(hw::cluster_a())
                .with_noise(NoiseConfig {
                    amplitude: 0.05,
                    seed,
                })
                .profile(&m, &p, &t)
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
    }

    #[test]
    fn decoder_layer_time_is_realistic_for_a100() {
        // One GPT-3 decoder block fwd at (t=8, seq=4096, b=1) runs a few
        // milliseconds on A100s; the roofline must land in that decade.
        let (m, p, t) = setup();
        let table = Profiler::new(hw::cluster_a()).profile(&m, &p, &t);
        let fwd: MicroSecs = table
            .layer_units(1)
            .iter()
            .map(|u| u.time_f)
            .sum::<MicroSecs>()
            + table
                .layer_units(2)
                .iter()
                .map(|u| u.time_f)
                .sum::<MicroSecs>();
        assert!(
            (1e-3..50e-3).contains(&fwd.as_secs()),
            "block fwd = {:.4}s",
            fwd.as_secs()
        );
    }

    #[test]
    fn backward_exceeds_forward_for_gemms() {
        let (m, p, t) = setup();
        let table = Profiler::new(hw::cluster_a()).profile(&m, &p, &t);
        for u in table.all_units() {
            if u.unit.kind.is_matmul() {
                assert!(
                    u.time_b > u.time_f * 1.2,
                    "{}: b={} f={}",
                    u.unit,
                    u.time_b,
                    u.time_f
                );
            }
        }
    }

    #[test]
    fn ascend_is_slower_than_a100() {
        let (m, p, t) = setup();
        let a = Profiler::new(hw::cluster_a()).profile(&m, &p, &t);
        let b = Profiler::new(hw::cluster_b_small()).profile(&m, &p, &t);
        let fa: MicroSecs = a.all_units().map(|u| u.time_f).sum();
        let fb: MicroSecs = b.all_units().map(|u| u.time_f).sum();
        assert!(fb > fa);
    }

    #[test]
    fn homogeneous_layers_profile_identically() {
        let (m, p, t) = setup();
        let table = Profiler::new(hw::cluster_a()).profile(&m, &p, &t);
        // All attention layers (odd indices 1, 3, ...) share unit costs.
        let a: Vec<MicroSecs> = table.layer_units(1).iter().map(|u| u.time_f).collect();
        let b: Vec<MicroSecs> = table.layer_units(3).iter().map(|u| u.time_f).collect();
        assert_eq!(a, b);
    }
}
