//! End-to-end daemon tests: spawn the real `adapipe serve` binary on
//! an ephemeral port and drive it with the real `adapipe query`
//! binary, pinning the ISSUE's operational contract — byte-identical
//! cache hits, 400 on malformed bodies, 503 + Retry-After under
//! saturation, and a graceful drain that finishes in-flight work
//! before the process exits 0.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

fn adapipe() -> Command {
    Command::new(env!("CARGO_BIN_EXE_adapipe"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("adapipe-serve-http-{name}"))
}

/// A running daemon plus the address it printed. Killed on drop so a
/// failing test does not leak the process.
struct Daemon {
    child: Child,
    addr: String,
    // Keeps the stdout pipe open for the daemon's later prints.
    _stdout: BufReader<std::process::ChildStdout>,
}

impl Daemon {
    fn spawn(extra: &[&str]) -> Daemon {
        let mut child = adapipe()
            .arg("serve")
            .args(["--port", "0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn adapipe serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut reader = BufReader::new(stdout);
        let mut first = String::new();
        reader.read_line(&mut first).expect("readable stdout");
        let addr = first
            .strip_prefix("adapipe-serve listening on http://")
            .unwrap_or_else(|| panic!("unexpected banner: {first}"))
            .trim()
            .to_string();
        Daemon {
            child,
            addr,
            _stdout: reader,
        }
    }

    fn query(&self, args: &[&str]) -> std::process::Output {
        adapipe()
            .arg("query")
            .args(["--addr", &self.addr])
            .args(args)
            .output()
            .expect("spawn adapipe query")
    }

    /// Posts `/admin/shutdown` and waits for the daemon to exit.
    fn shutdown(mut self) -> std::process::ExitStatus {
        let out = self.query(&["--shutdown", "true"]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "shutdown query: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let status = self.child.wait().expect("daemon exit status");
        std::mem::forget(self); // skip the kill-on-drop
        status
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

const SMALL_PLAN: &[&str] = &[
    "--model",
    "gpt2",
    "--cluster",
    "a",
    "--nodes",
    "1",
    "--tensor",
    "2",
    "--pipeline",
    "4",
    "--seq",
    "512",
    "--global-batch",
    "16",
];

#[test]
fn cold_and_cached_responses_are_byte_identical() {
    let daemon = Daemon::spawn(&[]);
    let cold_path = tmp("cold.plan");
    let hit_path = tmp("hit.plan");

    let cold = daemon.query(&[&["--out", cold_path.to_str().unwrap()], SMALL_PLAN].concat());
    assert_eq!(
        cold.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&cold.stderr)
    );
    let cold_stdout = String::from_utf8_lossy(&cold.stdout);
    assert!(cold_stdout.contains("cache miss"), "{cold_stdout}");

    let hit = daemon.query(&[&["--out", hit_path.to_str().unwrap()], SMALL_PLAN].concat());
    assert_eq!(hit.status.code(), Some(0));
    let hit_stdout = String::from_utf8_lossy(&hit.stdout);
    assert!(hit_stdout.contains("cache hit"), "{hit_stdout}");

    let cold_bytes = std::fs::read(&cold_path).unwrap();
    let hit_bytes = std::fs::read(&hit_path).unwrap();
    assert!(!cold_bytes.is_empty());
    assert_eq!(cold_bytes, hit_bytes, "cache hit must be byte-identical");

    // The digest printed by the cold response resolves over GET.
    let digest = cold_stdout
        .split("digest ")
        .nth(1)
        .and_then(|rest| rest.split(';').next())
        .expect("digest in query output")
        .trim()
        .to_string();
    let by_digest = daemon.query(&["--digest", &digest]);
    assert_eq!(by_digest.status.code(), Some(0));
    assert_eq!(by_digest.stdout, cold_bytes);

    let status = daemon.shutdown();
    assert_eq!(status.code(), Some(0), "daemon drains and exits 0");
    let _ = std::fs::remove_file(&cold_path);
    let _ = std::fs::remove_file(&hit_path);
}

#[test]
fn malformed_bodies_and_missing_digests_exit_one() {
    let daemon = Daemon::spawn(&[]);

    let bogus = tmp("bogus-body.txt");
    std::fs::write(&bogus, "definitely not a plan request\n").unwrap();
    let out = daemon.query(&["--body-file", bogus.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "malformed body is a 400");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("400"), "{stderr}");

    let out = daemon.query(&["--digest", "deadbeef"]);
    assert_eq!(out.status.code(), Some(1), "unknown digest is a 404");

    // /metrics still answers as JSON alongside the failures.
    let out = daemon.query(&["--get", "/metrics"]);
    assert_eq!(out.status.code(), Some(0));
    let body = String::from_utf8_lossy(&out.stdout);
    assert!(body.contains("adapipe-obs/v1"), "{body}");

    assert_eq!(daemon.shutdown().code(), Some(0));
    let _ = std::fs::remove_file(&bogus);
}

#[test]
fn saturated_daemon_answers_503_with_retry_after() {
    // One worker, a one-deep queue and slow planning: a burst of six
    // distinct cold requests must produce at least one 503.
    let daemon = Daemon::spawn(&[
        "--workers",
        "1",
        "--queue-depth",
        "1",
        "--plan-delay-ms",
        "400",
    ]);
    let addr = daemon.addr.clone();
    let handles: Vec<_> = (0..6)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let seq = (256 * (i + 1)).to_string();
                adapipe()
                    .arg("query")
                    .args(["--addr", &addr])
                    .args([
                        "--model",
                        "gpt2",
                        "--cluster",
                        "a",
                        "--nodes",
                        "1",
                        "--tensor",
                        "2",
                        "--pipeline",
                        "4",
                        "--seq",
                        &seq,
                        "--global-batch",
                        "16",
                    ])
                    .output()
                    .expect("spawn adapipe query")
            })
        })
        .collect();
    let outputs: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let codes: Vec<_> = outputs.iter().map(|o| o.status.code()).collect();
    assert!(codes.contains(&Some(0)), "someone got through: {codes:?}");
    let overloaded: Vec<_> = outputs
        .iter()
        .filter(|o| o.status.code() == Some(1))
        .collect();
    assert!(!overloaded.is_empty(), "expected a 503: {codes:?}");
    for o in &overloaded {
        let stderr = String::from_utf8_lossy(&o.stderr);
        assert!(stderr.contains("503"), "{stderr}");
        assert!(stderr.contains("overloaded"), "{stderr}");
    }
    assert_eq!(daemon.shutdown().code(), Some(0));
}

#[test]
fn shutdown_drains_the_in_flight_request() {
    let daemon = Daemon::spawn(&["--workers", "1", "--plan-delay-ms", "400"]);
    let addr = daemon.addr.clone();
    let slow_path = tmp("drained.plan");
    let slow = {
        let out = slow_path.to_str().unwrap().to_string();
        let addr = addr.clone();
        std::thread::spawn(move || {
            adapipe()
                .arg("query")
                .args(["--addr", &addr, "--out", &out])
                .args(SMALL_PLAN)
                .output()
                .expect("spawn adapipe query")
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(120)); // reach the worker
    let status = daemon.shutdown();
    assert_eq!(status.code(), Some(0), "drained daemon exits 0");

    let slow_out = slow.join().unwrap();
    assert_eq!(
        slow_out.status.code(),
        Some(0),
        "in-flight plan must be served before exit: {}",
        String::from_utf8_lossy(&slow_out.stderr)
    );
    let body = std::fs::read_to_string(&slow_path).unwrap();
    assert!(body.starts_with("adapipe-plan v2"), "{body}");
    let _ = std::fs::remove_file(&slow_path);
}
