use crate::task::TaskMeta;
use adapipe_units::{convert, Bytes, MicroSecs};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One point of a device's dynamic-memory trace: the level right after
/// an allocation or release.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemorySample {
    /// Simulation time of the change.
    pub time: MicroSecs,
    /// Device whose ledger changed.
    pub device: usize,
    /// Dynamic memory held right after the change.
    pub bytes: Bytes,
}

/// One executed task on the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelineEntry {
    /// Device that ran the task.
    pub device: usize,
    /// What ran.
    pub meta: TaskMeta,
    /// Start time.
    pub start: MicroSecs,
    /// End time.
    pub end: MicroSecs,
}

/// Per-device aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceReport {
    /// Time the device spent computing.
    pub busy: MicroSecs,
    /// Time idle within the iteration span (bubbles).
    pub bubble: MicroSecs,
    /// Peak dynamic memory (activations + recompute buffers) observed on
    /// the device. Static memory is the caller's to add.
    pub peak_dynamic_bytes: Bytes,
}

/// The simulator's output: what the paper measures on hardware.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Schedule name the report was produced from.
    pub schedule: String,
    /// End-to-end iteration time.
    pub makespan: MicroSecs,
    /// Per-device aggregates, indexed by device.
    pub devices: Vec<DeviceReport>,
    /// Every executed task, ordered by start time.
    pub timeline: Vec<TimelineEntry>,
    /// Dynamic-memory trace: one sample per allocation/release, in time
    /// order (the time-resolved version of the Figure 1 measurements).
    pub memory_timeline: Vec<MemorySample>,
}

impl SimReport {
    /// Total bubble time across devices.
    #[must_use]
    pub fn total_bubble(&self) -> MicroSecs {
        self.devices.iter().map(|d| d.bubble).sum()
    }

    /// Fraction of device-time wasted in bubbles.
    #[must_use]
    pub fn bubble_ratio(&self) -> f64 {
        let span = self.makespan * convert::count_f64(self.devices.len());
        if span > MicroSecs::ZERO {
            self.total_bubble() / span
        } else {
            0.0
        }
    }

    /// Largest per-device peak of dynamic memory.
    #[must_use]
    pub fn max_peak_dynamic_bytes(&self) -> Bytes {
        self.devices
            .iter()
            .map(|d| d.peak_dynamic_bytes)
            .max()
            .unwrap_or(Bytes::ZERO)
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.3}s over {} devices, bubble ratio {:.1}%, peak dynamic {:.2} GB",
            self.schedule,
            self.makespan.as_secs(),
            self.devices.len(),
            100.0 * self.bubble_ratio(),
            self.max_peak_dynamic_bytes().as_f64() / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_empty_reports() {
        let r = SimReport {
            schedule: "x".into(),
            makespan: MicroSecs::ZERO,
            devices: vec![],
            timeline: vec![],
            memory_timeline: vec![],
        };
        assert_eq!(r.bubble_ratio(), 0.0);
        assert_eq!(r.max_peak_dynamic_bytes(), Bytes::ZERO);
        assert_eq!(r.total_bubble(), MicroSecs::ZERO);
    }
}
