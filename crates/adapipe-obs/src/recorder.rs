//! The metrics registry and span machinery.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::hist::StreamingHistogram;

/// One completed span: a named, timed section of work.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Dotted span name, e.g. `plan.partition`.
    pub name: String,
    /// Coarse category (by convention the emitting crate), e.g.
    /// `planner`.
    pub cat: String,
    /// Start offset from the recorder's creation, in microseconds.
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Logical thread index (0 for the recorder's first thread).
    pub tid: usize,
    /// Key/value annotations attached via [`SpanGuard::with_arg`].
    pub args: Vec<(String, String)>,
}

/// Summary statistics of one timing/value histogram.
///
/// `count`/`sum`/`max` are exact; the quantiles come from the bounded
/// [`StreamingHistogram`] backend and carry its documented bucket error
/// (see [`crate::hist::quantile_error_bound`], ≈ 4.4 %).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest observation.
    pub max: f64,
}

/// An immutable view of everything a [`Recorder`] has collected.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write (or max-write) gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms, summarized.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Completed spans in completion order.
    pub spans: Vec<SpanEvent>,
}

#[derive(Debug, Default)]
struct State {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, StreamingHistogram>,
    spans: Vec<SpanEvent>,
    threads: Vec<std::thread::ThreadId>,
}

impl State {
    fn tid(&mut self) -> usize {
        let id = std::thread::current().id();
        match self.threads.iter().position(|t| *t == id) {
            Some(i) => i,
            None => {
                self.threads.push(id);
                self.threads.len() - 1
            }
        }
    }
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    state: Mutex<State>,
}

/// A cheap, clonable handle onto a metrics registry.
///
/// A `Recorder` is either *enabled* (backed by a shared registry) or
/// *disabled* (a `None`; every operation is a single branch and no
/// clock is read). Instrumented code takes `&Recorder` unconditionally;
/// callers that don't care pass [`Recorder::disabled`].
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// Creates an enabled recorder with an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Recorder {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// The no-op recorder: records nothing, costs one branch per call.
    #[must_use]
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with_state<R>(&self, f: impl FnOnce(&mut State) -> R) -> Option<R> {
        self.inner.as_ref().map(|inner| {
            // Recover from a panic in another holder: metrics must not
            // cascade failures into the instrumented code.
            let mut state = inner.state.lock().unwrap_or_else(|e| e.into_inner());
            f(&mut state)
        })
    }

    /// Adds `delta` to the counter `key`.
    pub fn add(&self, key: &str, delta: u64) {
        self.with_state(|s| *s.counters.entry(key.to_string()).or_insert(0) += delta);
    }

    /// Increments the counter `key` by one.
    pub fn incr(&self, key: &str) {
        self.add(key, 1);
    }

    /// Sets the gauge `key` to `value` (last write wins).
    pub fn gauge(&self, key: &str, value: f64) {
        self.with_state(|s| {
            s.gauges.insert(key.to_string(), value);
        });
    }

    /// Raises the gauge `key` to `value` if larger (high-water marks).
    pub fn gauge_max(&self, key: &str, value: f64) {
        self.with_state(|s| {
            let g = s.gauges.entry(key.to_string()).or_insert(f64::NEG_INFINITY);
            if value > *g {
                *g = value;
            }
        });
    }

    /// Records one observation into the histogram `key`. Histograms are
    /// log-bucketed [`StreamingHistogram`]s: memory stays O(buckets) no
    /// matter how many values are observed.
    pub fn observe(&self, key: &str, value: f64) {
        self.with_state(|s| {
            s.histograms
                .entry(key.to_string())
                .or_default()
                .record(value);
        });
    }

    /// Opens a span named `name` with category `adapipe`; it records
    /// itself when dropped. Attach annotations with
    /// [`SpanGuard::with_arg`] or use the [`crate::span!`] macro.
    #[must_use = "the span is recorded when the guard drops; binding it to `_` ends it immediately"]
    pub fn span(&self, name: &str) -> SpanGuard {
        self.span_cat(name, "adapipe")
    }

    /// Opens a span with an explicit category (by convention the
    /// emitting crate: `planner`, `partition`, `recompute`, `sim`).
    #[must_use = "the span is recorded when the guard drops; binding it to `_` ends it immediately"]
    pub fn span_cat(&self, name: &str, cat: &str) -> SpanGuard {
        SpanGuard {
            live: self.inner.as_ref().map(|inner| LiveSpan {
                inner: Arc::clone(inner),
                name: name.to_string(),
                cat: cat.to_string(),
                start: Instant::now(),
                args: Vec::new(),
            }),
        }
    }

    /// Times `f` under a span named `name`, returning its result.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let _guard = self.span(name);
        f()
    }

    /// Current value of the counter `key` (0 if never written or the
    /// recorder is disabled).
    #[must_use]
    pub fn counter(&self, key: &str) -> u64 {
        self.with_state(|s| s.counters.get(key).copied().unwrap_or(0))
            .unwrap_or(0)
    }

    /// Current value of the gauge `key`, if any.
    #[must_use]
    pub fn gauge_value(&self, key: &str) -> Option<f64> {
        self.with_state(|s| s.gauges.get(key).copied()).flatten()
    }

    /// Snapshots everything recorded so far. Histograms are summarized
    /// (count/sum/p50/p95/p99/max); spans come out in completion order.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        self.with_state(|s| Snapshot {
            counters: s.counters.clone(),
            gauges: s.gauges.clone(),
            histograms: s
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
            spans: s.spans.clone(),
        })
        .unwrap_or_default()
    }

    /// Folds another recorder's metrics into this one: counters add,
    /// gauges max-fold (the registry-wide value is the worst/peak seen
    /// by any contributor), histograms merge bucket-wise. Spans are
    /// deliberately **not** absorbed — per-request spans belong to the
    /// request's own trace, not the long-lived registry (which would
    /// otherwise grow without bound under sustained traffic).
    ///
    /// A disabled handle on either side makes this a no-op.
    pub fn absorb(&self, other: &Recorder) {
        // Clone out of `other` first, then fold into `self`: the two
        // locks are never held at once, so two threads absorbing in
        // opposite directions cannot deadlock.
        let Some(parts) =
            other.with_state(|s| (s.counters.clone(), s.gauges.clone(), s.histograms.clone()))
        else {
            return;
        };
        let (counters, gauges, histograms) = parts;
        self.with_state(|s| {
            for (k, v) in counters {
                *s.counters.entry(k).or_insert(0) += v;
            }
            for (k, v) in gauges {
                let g = s.gauges.entry(k).or_insert(f64::NEG_INFINITY);
                if v > *g {
                    *g = v;
                }
            }
            for (k, h) in histograms {
                s.histograms.entry(k).or_default().merge(&h);
            }
        });
    }

    /// Records an already-measured span from explicit instants — for
    /// phases whose start predates any recorder call, like a request's
    /// queue wait (the span starts when the request is enqueued but can
    /// only be recorded once a worker picks it up). Instants before the
    /// recorder's epoch clamp to 0.
    pub fn record_span(&self, name: &str, cat: &str, start: Instant, end: Instant) {
        let Some(inner) = &self.inner else { return };
        let start_us = start.saturating_duration_since(inner.epoch).as_secs_f64() * 1e6;
        let dur_us = end.saturating_duration_since(start).as_secs_f64() * 1e6;
        let mut state = inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let tid = state.tid();
        state.spans.push(SpanEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            start_us,
            dur_us,
            tid,
            args: Vec::new(),
        });
    }
}

#[derive(Debug)]
struct LiveSpan {
    inner: Arc<Inner>,
    name: String,
    cat: String,
    start: Instant,
    args: Vec<(String, String)>,
}

/// RAII guard for an open span; records a [`SpanEvent`] on drop. For a
/// disabled recorder the guard is empty and dropping it is free.
#[derive(Debug)]
#[must_use = "a span records when this guard drops; binding it to `_` drops immediately"]
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

impl SpanGuard {
    /// Attaches a key/value annotation (rendered with `Display`).
    pub fn with_arg(mut self, key: &str, value: &dyn std::fmt::Display) -> Self {
        if let Some(live) = self.live.as_mut() {
            live.args.push((key.to_string(), value.to_string()));
        }
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let end = Instant::now();
        let start_us = live
            .start
            .saturating_duration_since(live.inner.epoch)
            .as_secs_f64()
            * 1e6;
        let dur_us = end.saturating_duration_since(live.start).as_secs_f64() * 1e6;
        let mut state = live.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        let tid = state.tid();
        state.spans.push(SpanEvent {
            name: live.name,
            cat: live.cat,
            start_us,
            dur_us,
            tid,
            args: live.args,
        });
    }
}

/// Opens a span on a [`Recorder`] with optional `key = value`
/// annotations:
///
/// ```
/// use adapipe_obs::{span, Recorder};
/// let rec = Recorder::new();
/// let stage = 3;
/// let _g = span!(rec, "knapsack", stage = stage, layers = 24);
/// ```
#[macro_export]
macro_rules! span {
    ($rec:expr, $name:expr) => {
        $rec.span($name)
    };
    ($rec:expr, $name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $rec.span($name)$(.with_arg(stringify!($key), &$value))+
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let rec = Recorder::new();
        rec.add("c", 2);
        rec.incr("c");
        rec.gauge("g", 1.5);
        rec.gauge("g", 2.5);
        rec.gauge_max("peak", 3.0);
        rec.gauge_max("peak", 1.0);
        for v in [1.0, 2.0, 3.0, 4.0] {
            rec.observe("h", v);
        }
        let snap = rec.snapshot();
        assert_eq!(snap.counters["c"], 3);
        assert_eq!(rec.counter("c"), 3);
        assert_eq!(snap.gauges["g"], 2.5);
        assert_eq!(snap.gauges["peak"], 3.0);
        let h = snap.histograms["h"];
        assert_eq!(h.count, 4);
        assert_eq!(h.max, 4.0);
        assert!((h.sum - 10.0).abs() < 1e-12);
        assert!(h.p50 >= 1.0 && h.p50 <= 3.0);
        assert!(h.p95 >= h.p50);
    }

    #[test]
    fn spans_nest_and_record_on_drop() {
        let rec = Recorder::new();
        {
            let _outer = span!(rec, "outer", kind = "test");
            let _inner = rec.span_cat("inner", "unit");
        }
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 2);
        // Inner drops first.
        assert_eq!(snap.spans[0].name, "inner");
        assert_eq!(snap.spans[0].cat, "unit");
        assert_eq!(snap.spans[1].name, "outer");
        assert_eq!(snap.spans[1].args, vec![("kind".into(), "test".into())]);
        let (o, i) = (&snap.spans[1], &snap.spans[0]);
        assert!(o.start_us <= i.start_us);
        assert!(o.start_us + o.dur_us >= i.start_us + i.dur_us);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.add("c", 10);
        rec.gauge("g", 1.0);
        rec.observe("h", 1.0);
        let _g = span!(rec, "s", a = 1);
        drop(_g);
        assert_eq!(rec.counter("c"), 0);
        assert_eq!(rec.gauge_value("g"), None);
        let snap = rec.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn disabled_recorder_is_effectively_free() {
        // Guard against the no-op path acquiring locks or allocating:
        // ten million disabled ops must finish far faster than any
        // realistic lock-per-op implementation would (functional bound,
        // deliberately loose to stay robust on loaded CI machines).
        let rec = Recorder::disabled();
        let start = Instant::now();
        for i in 0..10_000_000u64 {
            rec.add("k", i);
        }
        assert!(
            start.elapsed().as_secs_f64() < 2.0,
            "no-op recorder too slow: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn clones_share_the_registry() {
        let rec = Recorder::new();
        let other = rec.clone();
        other.incr("shared");
        assert_eq!(rec.counter("shared"), 1);
    }

    #[test]
    fn time_wraps_and_returns() {
        let rec = Recorder::new();
        let out = rec.time("work", || 41 + 1);
        assert_eq!(out, 42);
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "work");
        assert!(snap.spans[0].dur_us >= 0.0);
    }

    #[test]
    fn absorb_merges_metrics_but_not_spans() {
        let registry = Recorder::new();
        registry.add("c", 1);
        registry.gauge("depth", 2.0);
        registry.observe("lat", 10.0);

        let request = Recorder::new();
        request.add("c", 2);
        request.gauge("depth", 5.0);
        request.observe("lat", 40.0);
        request.time("request-span", || {});

        registry.absorb(&request);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["c"], 3);
        assert_eq!(snap.gauges["depth"], 5.0, "gauges max-fold");
        let h = snap.histograms["lat"];
        assert_eq!(h.count, 2);
        assert!((h.sum - 50.0).abs() < 1e-9);
        assert_eq!(h.max, 40.0);
        assert!(snap.spans.is_empty(), "spans stay with the request");
        // The donor is untouched.
        assert_eq!(request.counter("c"), 2);
    }

    #[test]
    fn absorb_with_disabled_sides_is_a_noop() {
        let enabled = Recorder::new();
        enabled.incr("c");
        Recorder::disabled().absorb(&enabled);
        enabled.absorb(&Recorder::disabled());
        assert_eq!(enabled.counter("c"), 1);
    }

    #[test]
    fn record_span_injects_explicit_intervals() {
        let rec = Recorder::new();
        let start = Instant::now();
        let end = start + std::time::Duration::from_micros(1500);
        rec.record_span("queue.wait", "serve", start, end);
        // Pre-epoch starts clamp to 0 rather than going negative.
        let before_epoch = start - std::time::Duration::from_secs(3600);
        rec.record_span("clamped", "serve", before_epoch, start);
        let snap = rec.snapshot();
        let q = snap.spans.iter().find(|s| s.name == "queue.wait").unwrap();
        assert_eq!(q.cat, "serve");
        assert!((q.dur_us - 1500.0).abs() < 1.0);
        let c = snap.spans.iter().find(|s| s.name == "clamped").unwrap();
        assert_eq!(c.start_us, 0.0);
    }

    #[test]
    fn summary_quantiles_are_monotone_through_p99() {
        let rec = Recorder::new();
        for i in 1..=1000 {
            rec.observe("h", f64::from(i));
        }
        let h = rec.snapshot().histograms["h"];
        assert_eq!(h.count, 1000);
        assert!(h.p50 <= h.p95 && h.p95 <= h.p99 && h.p99 <= h.max);
        assert_eq!(h.max, 1000.0);
    }

    #[test]
    fn threads_get_distinct_tids() {
        let rec = Recorder::new();
        rec.time("main-thread", || {});
        let r2 = rec.clone();
        std::thread::spawn(move || r2.time("worker", || {}))
            .join()
            .unwrap();
        let snap = rec.snapshot();
        let main_tid = snap.spans.iter().find(|s| s.name == "main-thread").unwrap();
        let worker = snap.spans.iter().find(|s| s.name == "worker").unwrap();
        assert_ne!(main_tid.tid, worker.tid);
    }
}
