//! Degradation-aware replanning: the recovery ladder that turns
//! [`adapipe_faults`] diagnoses back into feasible plans.
//!
//! The ladder has three rungs, cheapest first:
//!
//! 1. **Retry** — transient stalls (one deadline miss) are retried with
//!    bounded exponential backoff ([`adapipe_faults::run_retries`]);
//!    no search is spent. Exhausted retries escalate to rung 2.
//! 2. **Replan** — persistent stragglers and budget losses re-run
//!    Algorithm 1 (§5) against the *degraded* profile: stage times are
//!    scaled by each device's compute factor and memory-pressured
//!    stages search under their shrunken budget. The §5.3 isomorphism
//!    cache warm-starts the re-solve; the cost of replanning is
//!    reported through the planner's [`Recorder`](adapipe_obs::Recorder).
//! 3. **Full recomputation** — if a stage window cannot fit even after
//!    the re-solve, it falls back to saving nothing (the paper's §4
//!    baseline, feasible whenever the boundary activation fits), so
//!    the ladder always terminates with *a* plan.
//!
//! The replanned artifact stores **healthy** stage costs — the degraded
//! world steered only the *choice* of boundaries and strategies — so it
//! round-trips through [`plan_io`](crate::plan_io) and passes
//! [`Planner::verify`] like any other plan. Degraded-world timings are
//! reported separately via [`degraded_iteration_time`].

use crate::error::PlanError;
use crate::method::Method;
use crate::plan::{Plan, StagePlan};
use crate::planner::Planner;
use adapipe_faults::{run_retries, DegradedCluster, Diagnosis, RetryPolicy};
use adapipe_memory::{f1b_live_microbatches, StageMemory};
use adapipe_model::LayerRange;
use adapipe_obs::keys;
use adapipe_partition::{
    algorithm1, f1b_iteration_time, CacheStats, KnapsackCostProvider, StageCostProvider, StageTimes,
};
use adapipe_recompute::strategy;
use adapipe_units::{Bytes, MicroSecs};

/// Tuning for a replan pass.
#[derive(Debug, Clone, Copy)]
pub struct ReplanConfig {
    /// Retry ladder for transient stalls.
    pub retry: RetryPolicy,
    /// Warm-start the re-solve with the §5.3 isomorphism cache
    /// (disable to measure the cold-search cost).
    pub iso_cache: bool,
    /// The step at which degradation was diagnosed; straggler factors
    /// are evaluated here (stragglers scheduled later are ignored).
    pub detected_at_step: usize,
}

impl Default for ReplanConfig {
    fn default() -> Self {
        ReplanConfig {
            retry: RetryPolicy::default(),
            iso_cache: true,
            detected_at_step: 0,
        }
    }
}

/// One transient stall's trip through the retry ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryRecord {
    /// The stalled stage.
    pub stage: usize,
    /// The stalled micro-batch.
    pub micro_batch: usize,
    /// Re-executions taken.
    pub attempts: u32,
    /// Backoff accounted before recovery (or exhaustion).
    pub backoff: MicroSecs,
    /// Whether the ladder recovered without escalating.
    pub recovered: bool,
}

/// What the recovery ladder did and how the result compares to the
/// stale plan in the degraded world.
#[derive(Debug, Clone)]
pub struct ReplanOutcome {
    /// Transient stalls handled by retry (ladder rung 1).
    pub retries: Vec<RetryRecord>,
    /// The replanned artifact (`None` when retries sufficed).
    pub plan: Option<Plan>,
    /// Stages that fell back to full recomputation (ladder rung 3).
    pub fallback_stages: Vec<usize>,
    /// Eq. (3) iteration time of the *stale* plan on the degraded
    /// cluster (infinite when the stale plan no longer fits).
    pub stale_time: MicroSecs,
    /// Eq. (3) iteration time of the replanned plan on the degraded
    /// cluster.
    pub replanned_time: Option<MicroSecs>,
    /// Isomorphism-cache hits across the re-solve.
    pub cache_hits: u64,
    /// Isomorphism-cache misses across the re-solve.
    pub cache_misses: u64,
}

impl ReplanOutcome {
    /// Whether replanning produced a strictly better degraded-world
    /// iteration time than keeping the stale plan.
    #[must_use]
    pub fn improved(&self) -> bool {
        match self.replanned_time {
            Some(t) => t < self.stale_time,
            None => false,
        }
    }
}

/// Scales healthy per-stage times into the degraded world: stage `s`
/// runs on device `s`, whose compute factor divides its throughput.
fn degraded_times(plan: &Plan, degraded: &DegradedCluster, step: usize) -> Vec<StageTimes> {
    plan.stages
        .iter()
        .enumerate()
        .map(|(s, st)| {
            let factor = degraded.compute_factor_at(s, step);
            StageTimes {
                f: st.cost.time_f / factor,
                b: st.cost.time_b / factor,
            }
        })
        .collect()
}

/// Eq. (3) iteration time of `plan` executed on `degraded` at `step`:
/// `T = W₀ + E₀ + (n − p)·M₀` over the degradation-scaled stage times.
#[must_use]
pub fn degraded_iteration_time(plan: &Plan, degraded: &DegradedCluster, step: usize) -> MicroSecs {
    f1b_iteration_time(&degraded_times(plan, degraded, step), plan.n_microbatches).total()
}

/// Whether every stage of `plan` still fits its (possibly shrunken)
/// device capacity in the degraded world.
#[must_use]
pub fn fits_degraded(plan: &Plan, degraded: &DegradedCluster, capacity: Bytes) -> bool {
    plan.stages.iter().enumerate().all(|(s, st)| {
        st.memory
            .total()
            .fits(degraded.shrunk_capacity(capacity, s))
    })
}

/// The degraded-world cost view Algorithm 1 re-solves against: healthy
/// knapsack leaves, with stage times divided by the device's compute
/// factor and memory-pressured stages dispatched to a provider whose
/// budget already lost the shrink.
struct DegradedProvider<'a> {
    healthy: KnapsackCostProvider<'a>,
    shrunk: Vec<(usize, KnapsackCostProvider<'a>)>,
    factors: Vec<f64>,
}

impl DegradedProvider<'_> {
    fn provider_for(&self, stage: usize) -> &KnapsackCostProvider<'_> {
        self.shrunk
            .iter()
            .find(|(s, _)| *s == stage)
            .map_or(&self.healthy, |(_, p)| p)
    }

    fn cache_stats(&self) -> CacheStats {
        let mut stats = self.healthy.cache_stats();
        for (_, p) in &self.shrunk {
            stats += p.cache_stats();
        }
        stats
    }
}

impl StageCostProvider for DegradedProvider<'_> {
    fn stage_times(&self, stage: usize, range: LayerRange) -> Option<StageTimes> {
        let t = self.provider_for(stage).stage_times(stage, range)?;
        let factor = self.factors.get(stage).copied().unwrap_or(1.0);
        Some(StageTimes {
            f: t.f / factor,
            b: t.b / factor,
        })
    }
}

impl Planner {
    /// Runs the recovery ladder for `diagnosis` against `degraded`.
    ///
    /// Transient stalls are retried (deterministically: a one-shot
    /// stall recovers on the first re-execution); persistent
    /// stragglers, budget losses and exhausted retries trigger a
    /// re-run of Algorithm 1 on the degraded profile. The returned
    /// plan — when one was produced — stores healthy costs and passes
    /// [`Planner::verify`].
    ///
    /// # Errors
    ///
    /// [`PlanError::Config`] never arises (the stale plan already
    /// validated); [`PlanError::OutOfMemory`] cannot either, because
    /// infeasible windows fall back to full recomputation — the error
    /// type is kept for parity with [`Planner::plan`].
    pub fn replan(
        &self,
        stale: &Plan,
        degraded: &DegradedCluster,
        diagnosis: &Diagnosis,
        cfg: &ReplanConfig,
    ) -> Result<ReplanOutcome, PlanError> {
        // One-shot semantics: a transient stall is gone by its first
        // re-execution. The probe variant exists for tests and for
        // callers modelling recurring stalls.
        self.replan_with_probe(stale, degraded, diagnosis, cfg, |_, _, _| true)
    }

    /// [`Planner::replan`] with an explicit retry probe: `probe(stage,
    /// micro_batch, attempt)` reports whether re-executing the stalled
    /// op succeeded. Exhausted ladders escalate the stage to a replan.
    ///
    /// # Errors
    ///
    /// See [`Planner::replan`].
    pub fn replan_with_probe(
        &self,
        stale: &Plan,
        degraded: &DegradedCluster,
        diagnosis: &Diagnosis,
        cfg: &ReplanConfig,
        mut probe: impl FnMut(usize, usize, u32) -> bool,
    ) -> Result<ReplanOutcome, PlanError> {
        let _span = self.recorder().span_cat(keys::SPAN_REPLAN, "replan");
        let step = cfg.detected_at_step;

        // Rung 1: retry transient stalls with accounted backoff.
        let mut retries = Vec::with_capacity(diagnosis.transient_stalls.len());
        let mut escalated = false;
        for &(stage, micro_batch) in &diagnosis.transient_stalls {
            let outcome = run_retries(&cfg.retry, |attempt| probe(stage, micro_batch, attempt));
            self.recorder().incr(keys::REPLAN_RETRIES);
            let (attempts, backoff) = match outcome {
                adapipe_faults::RetryOutcome::Recovered { attempts, backoff }
                | adapipe_faults::RetryOutcome::Exhausted { attempts, backoff } => {
                    (attempts, backoff)
                }
            };
            escalated |= !outcome.recovered();
            retries.push(RetryRecord {
                stage,
                micro_batch,
                attempts,
                backoff,
                recovered: outcome.recovered(),
            });
        }

        let stale_time = if fits_degraded(stale, degraded, self.capacity()) {
            degraded_iteration_time(stale, degraded, step)
        } else {
            MicroSecs::new(f64::INFINITY)
        };

        if !diagnosis.needs_replan() && !escalated {
            return Ok(ReplanOutcome {
                retries,
                plan: None,
                fallback_stages: Vec::new(),
                stale_time,
                replanned_time: None,
                cache_hits: 0,
                cache_misses: 0,
            });
        }

        // Rung 2: re-run Algorithm 1 on the degraded profile.
        let ctx = self.context(stale.parallel, stale.train);
        let p = stale.parallel.pipeline();
        let make_provider = |capacity: Bytes| {
            KnapsackCostProvider::new(&ctx.seq, &ctx.table, &ctx.mem, capacity)
                .with_knapsack_config(self.knapsack_config())
                .with_recorder(self.recorder().clone())
                .with_isomorphism_cache(cfg.iso_cache)
        };
        let shrunk: Vec<(usize, KnapsackCostProvider<'_>)> = (0..p)
            .filter(|&s| degraded.plan().budget_shrink(s) != Bytes::ZERO)
            .map(|s| {
                (
                    s,
                    make_provider(degraded.shrunk_capacity(self.search_capacity(), s)),
                )
            })
            .collect();
        let provider = DegradedProvider {
            healthy: make_provider(self.search_capacity()),
            shrunk,
            factors: (0..p)
                .map(|s| degraded.compute_factor_at(s, step))
                .collect(),
        };

        let solved = {
            let _span = self
                .recorder()
                .span_cat(keys::SPAN_REPLAN_PARTITION, "replan");
            let started = self.recorder().is_enabled().then(std::time::Instant::now);
            let solved =
                algorithm1::solve_traced(&provider, ctx.seq.len(), p, ctx.n, self.recorder());
            if let Some(t0) = started {
                self.recorder()
                    .observe(keys::REPLAN_SOLVE_US, t0.elapsed().as_secs_f64() * 1e6);
            }
            solved
        };
        // Keep the stale boundaries when even the degraded DP finds no
        // feasible cover — materialization below still re-picks
        // strategies (with the rung-3 fallback) under the new budgets.
        let ranges = solved.map_or_else(|| stale.ranges(), |s| s.ranges);

        // Rung 3 inside materialization: full recomputation when a
        // window cannot fit its (possibly shrunken) budget.
        let mut fallback_stages = Vec::new();
        let mut stages = Vec::with_capacity(ranges.len());
        for (s, &range) in ranges.iter().enumerate() {
            let units = ctx.table.units_in(range);
            let (strat, cost) = match provider.provider_for(s).optimize_stage(s, range) {
                Ok(opt) => (opt.strategy, opt.cost),
                Err(_) => {
                    self.recorder().incr(keys::REPLAN_FALLBACK_FULL_RECOMPUTE);
                    fallback_stages.push(s);
                    let strat = strategy::full(&units);
                    let cost = strategy::cost_of(&units, &strat);
                    (strat, cost)
                }
            };
            let buffer = strategy::buffer_bytes_of(&units, &strat);
            let live = f1b_live_microbatches(p, s) as u64;
            stages.push(StagePlan {
                range,
                memory: StageMemory {
                    static_bytes: ctx.mem.static_bytes(&ctx.seq, range),
                    buffer_bytes: buffer,
                    intermediate_bytes: live * cost.saved_bytes_per_mb,
                },
                strategy: strat,
                cost,
            });
        }
        let times: Vec<StageTimes> = stages
            .iter()
            .map(|s| StageTimes {
                f: s.cost.time_f,
                b: s.cost.time_b,
            })
            .collect();
        let plan = Plan {
            method: Method::AdaPipe,
            parallel: stale.parallel,
            train: stale.train,
            n_microbatches: ctx.n,
            stages,
            predicted: Some(f1b_iteration_time(&times, ctx.n)),
        };
        let replanned_time = degraded_iteration_time(&plan, degraded, step);
        let CacheStats {
            hits: cache_hits,
            misses: cache_misses,
        } = provider.cache_stats();
        self.recorder()
            .observe(keys::REPLAN_ISO_HITS, cache_hits as f64);
        self.recorder()
            .observe(keys::REPLAN_ISO_MISSES, cache_misses as f64);
        Ok(ReplanOutcome {
            retries,
            plan: Some(plan),
            fallback_stages,
            stale_time,
            replanned_time: Some(replanned_time),
            cache_hits,
            cache_misses,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::Method;
    use adapipe_faults::{Fault, FaultPlan};
    use adapipe_hw::presets as hw;
    use adapipe_model::{presets, ParallelConfig, TrainConfig};

    fn setup() -> (Planner, Plan) {
        let planner = Planner::new(presets::gpt2_small(), hw::cluster_a());
        let parallel = ParallelConfig::new(2, 4, 1).expect("valid parallelism");
        let train = TrainConfig::new(1, 1024, 32).expect("valid workload");
        let plan = planner
            .plan(Method::AdaPipe, parallel, train)
            .expect("feasible healthy plan");
        (planner, plan)
    }

    fn straggler(factor: f64) -> DegradedCluster {
        let faults = FaultPlan::new(7).with(Fault::Straggler {
            device: 2,
            factor,
            from_step: 0,
        });
        DegradedCluster::new(hw::cluster_a(), faults)
    }

    #[test]
    fn transient_stall_recovers_without_replanning() {
        let (planner, stale) = setup();
        let degraded = DegradedCluster::new(hw::cluster_a(), FaultPlan::new(1));
        let diagnosis = Diagnosis {
            transient_stalls: vec![(1, 3)],
            ..Diagnosis::default()
        };
        let out = planner
            .replan(&stale, &degraded, &diagnosis, &ReplanConfig::default())
            .expect("ladder runs");
        assert!(out.plan.is_none(), "retry must not escalate to a replan");
        assert_eq!(out.retries.len(), 1);
        assert!(out.retries[0].recovered);
        assert_eq!(out.retries[0].attempts, 1);
        assert!(out.retries[0].backoff > MicroSecs::ZERO);
    }

    #[test]
    fn exhausted_retries_escalate_to_a_replan() {
        let (planner, stale) = setup();
        let degraded = straggler(0.6);
        let diagnosis = Diagnosis {
            transient_stalls: vec![(2, 0)],
            ..Diagnosis::default()
        };
        let out = planner
            .replan_with_probe(
                &stale,
                &degraded,
                &diagnosis,
                &ReplanConfig::default(),
                |_, _, _| false,
            )
            .expect("ladder runs");
        assert!(!out.retries[0].recovered);
        assert!(out.plan.is_some(), "exhaustion must escalate");
    }

    #[test]
    fn persistent_straggler_replan_beats_the_stale_plan() {
        let (planner, stale) = setup();
        let degraded = straggler(0.6);
        let diagnosis = Diagnosis {
            persistent_stragglers: vec![2],
            ..Diagnosis::default()
        };
        let out = planner
            .replan(&stale, &degraded, &diagnosis, &ReplanConfig::default())
            .expect("replan runs");
        let plan = out.plan.as_ref().expect("replanned");
        assert!(
            out.improved(),
            "replanned {:?} vs stale {}",
            out.replanned_time,
            out.stale_time
        );
        let report = planner.verify(plan);
        assert!(!report.has_errors(), "{report}");
    }

    #[test]
    fn budget_shrink_replan_fits_and_beats_the_stale_plan() {
        let (planner, stale) = setup();
        // Shrink stage 0 hard enough that its saved intermediates no
        // longer fit: dynamic memory of the stale plan's stage 0 plus a
        // margin below the original capacity.
        let static_bytes = stale.stages[0].memory.static_bytes;
        let dynamic = stale.stages[0].memory.total().saturating_sub(static_bytes);
        let shrink = planner
            .capacity()
            .saturating_sub(static_bytes)
            .saturating_sub(dynamic / 2);
        let faults = FaultPlan::new(11).with(Fault::MemoryPressure { stage: 0, shrink });
        let degraded = DegradedCluster::new(hw::cluster_a(), faults);
        assert!(!fits_degraded(&stale, &degraded, planner.capacity()));
        let diagnosis = Diagnosis {
            budget_exceeded: vec![(0, dynamic, dynamic / 2)],
            ..Diagnosis::default()
        };
        let out = planner
            .replan(&stale, &degraded, &diagnosis, &ReplanConfig::default())
            .expect("replan runs");
        let plan = out.plan.as_ref().expect("replanned");
        // The stale plan is infeasible (infinite time), so any feasible
        // replan wins.
        assert!(out.stale_time.as_micros().is_infinite());
        assert!(out.improved());
        assert!(fits_degraded(plan, &degraded, planner.capacity()));
        let report = planner.verify(plan);
        assert!(!report.has_errors(), "{report}");
    }

    #[test]
    fn replanning_is_deterministic() {
        let (planner, stale) = setup();
        let degraded = straggler(0.5);
        let diagnosis = Diagnosis {
            persistent_stragglers: vec![2],
            ..Diagnosis::default()
        };
        let a = planner
            .replan(&stale, &degraded, &diagnosis, &ReplanConfig::default())
            .expect("replan runs");
        let b = planner
            .replan(&stale, &degraded, &diagnosis, &ReplanConfig::default())
            .expect("replan runs");
        let (pa, pb) = (a.plan.expect("plan"), b.plan.expect("plan"));
        assert_eq!(
            crate::plan_io::to_text(&pa),
            crate::plan_io::to_text(&pb),
            "same diagnosis must yield byte-identical artifacts"
        );
    }

    #[test]
    fn warm_start_reuses_the_isomorphism_cache() {
        let (planner, stale) = setup();
        let degraded = straggler(0.6);
        let diagnosis = Diagnosis {
            persistent_stragglers: vec![2],
            ..Diagnosis::default()
        };
        let warm = planner
            .replan(&stale, &degraded, &diagnosis, &ReplanConfig::default())
            .expect("replan runs");
        let cold_cfg = ReplanConfig {
            iso_cache: false,
            ..ReplanConfig::default()
        };
        let cold = planner
            .replan(&stale, &degraded, &diagnosis, &cold_cfg)
            .expect("replan runs");
        assert!(warm.cache_hits > 0, "warm start must hit the cache");
        assert_eq!(cold.cache_hits, 0, "cold search must not");
        assert!(cold.cache_misses > warm.cache_misses);
    }
}
