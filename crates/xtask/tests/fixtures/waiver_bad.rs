// lint: allow(frobnicate)
pub fn f() {}
