//! Analytical per-computation-unit cost profiler.
//!
//! The paper obtains `Time_f(U)`, `Time_b(U)` and `Mem(U)` for every
//! computation unit by running 5–10 training iterations on the target
//! cluster and timestamping each unit (§4.2). Without the cluster, this
//! crate *derives* the same table from first principles:
//!
//! * FLOP counts and activation sizes per unit under tensor parallelism,
//!   sequence parallelism and FlashAttention ([`flops`]),
//! * a two-regime roofline on the device model from
//!   [`adapipe_hw`] (matmul-bound vs bandwidth-bound kernels),
//! * tensor-parallel collective times folded into the units that trigger
//!   them (the all-gather before the first GEMM of each layer, the
//!   reduce-scatter after the last).
//!
//! The downstream search algorithms consume only this table, so they run
//! unchanged against a measured table. Optional seeded noise
//! ([`Profiler::with_noise`]) emulates measurement jitter for robustness
//! testing.
//!
//! # Example
//!
//! ```
//! use adapipe_hw::presets as hw;
//! use adapipe_model::{presets, ParallelConfig, TrainConfig};
//! use adapipe_profiler::Profiler;
//!
//! let model = presets::gpt3_175b();
//! let parallel = ParallelConfig::new(8, 8, 1)?;
//! let train = TrainConfig::new(1, 4096, 128)?;
//! let table = Profiler::new(hw::cluster_a()).profile(&model, &parallel, &train);
//!
//! // Backward is at least as expensive as forward for every unit
//! // (times are `adapipe_units::MicroSecs`, so this comparison is
//! // dimension-checked at compile time).
//! for unit in table.all_units() {
//!     assert!(unit.time_b >= unit.time_f * 0.9);
//! }
//! # Ok::<(), adapipe_model::ConfigError>(())
//! ```

#![forbid(unsafe_code)]

pub mod flops;
mod profile;
mod profiler;

pub use profile::{MeasurementError, ProfileTable, UnitProfile};
pub use profiler::{NoiseConfig, Profiler};
