use adapipe_sim::SimReport;
use adapipe_units::{Bytes, MicroSecs};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Training throughput derived from an [`Evaluation`]: the end-user
/// metrics a training report quotes alongside iteration time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Throughput {
    /// Tokens processed per second across the whole job.
    pub tokens_per_second: f64,
    /// Model FLOPs utilization: useful model math (6·params·tokens, the
    /// standard fwd+bwd estimate, *excluding* recomputation — recompute
    /// is overhead, not useful work) divided by the cluster's peak.
    pub mfu: f64,
}

impl fmt::Display for Throughput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0} tokens/s, {:.1}% MFU",
            self.tokens_per_second,
            100.0 * self.mfu
        )
    }
}

/// Result of running a [`Plan`](crate::Plan) on the schedule simulator:
/// the quantities the paper measures on hardware.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Wall-clock time of one training iteration.
    pub iteration_time: MicroSecs,
    /// Per-device peak memory (static + dynamic).
    pub peak_bytes_per_device: Vec<Bytes>,
    /// Device memory capacity.
    pub capacity: Bytes,
    /// Whether every device stayed within capacity. `false` is the
    /// paper's "OOM" verdict for a configuration.
    pub fits: bool,
    /// The raw simulator report (timeline, bubbles, dynamic peaks).
    pub report: SimReport,
}

impl Evaluation {
    /// Peak memory of the most loaded device, in GB.
    #[must_use]
    pub fn max_peak_gb(&self) -> f64 {
        self.peak_bytes_per_device
            .iter()
            .copied()
            .max()
            .unwrap_or(Bytes::ZERO)
            .as_f64()
            / 1e9
    }

    /// Speedup of this evaluation over `baseline` (how the paper
    /// annotates its bars).
    #[must_use]
    pub fn speedup_over(&self, baseline: &Evaluation) -> f64 {
        baseline.iteration_time / self.iteration_time
    }
}

impl fmt::Display for Evaluation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.fits {
            write!(
                f,
                "{:.3}s/iter, peak {:.1} GB (cap {:.1} GB)",
                self.iteration_time.as_secs(),
                self.max_peak_gb(),
                self.capacity.as_f64() / 1e9
            )
        } else {
            write!(
                f,
                "OOM: peak {:.1} GB exceeds {:.1} GB",
                self.max_peak_gb(),
                self.capacity.as_f64() / 1e9
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapipe_sim::SimReport;

    fn eval(time: f64, fits: bool) -> Evaluation {
        Evaluation {
            iteration_time: MicroSecs::from_secs(time),
            peak_bytes_per_device: vec![Bytes::new(10_000_000_000)],
            capacity: Bytes::new(80_000_000_000),
            fits,
            report: SimReport {
                schedule: "test".into(),
                makespan: MicroSecs::from_secs(time),
                devices: vec![],
                timeline: vec![],
                memory_timeline: vec![],
            },
        }
    }

    #[test]
    fn speedup_is_baseline_over_self() {
        let fast = eval(1.0, true);
        let slow = eval(2.0, true);
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_reports_oom() {
        assert!(eval(1.0, false).to_string().contains("OOM"));
        assert!(eval(1.0, true).to_string().contains("s/iter"));
    }
}
