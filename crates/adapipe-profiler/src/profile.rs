use adapipe_model::{ComputationUnit, LayerRange};
use adapipe_units::{Bytes, MicroSecs};
use serde::{Deserialize, Serialize};

/// Profiled cost of one computation unit: the `Time_f(U)`, `Time_b(U)` and
/// `Mem(U)` of §4.2, per micro-batch on one device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnitProfile {
    /// Which unit this row describes.
    pub unit: ComputationUnit,
    /// Forward time (including the unit's share of tensor-parallel
    /// collectives).
    pub time_f: MicroSecs,
    /// Backward time, *excluding* recomputation — the recomputation DP
    /// adds `time_f` back for each recomputed unit.
    pub time_b: MicroSecs,
    /// Bytes kept per micro-batch when the unit is *saved* (its output
    /// plus internally saved tensors).
    pub mem_saved: Bytes,
}

impl UnitProfile {
    /// Whether the unit's output is pinned saved (§4.2 restriction).
    #[must_use]
    pub fn is_pinned(&self) -> bool {
        self.unit.is_pinned()
    }
}

/// The full profiling result for a model under one (parallelism, workload)
/// configuration: one [`UnitProfile`] per computation unit of every layer.
///
/// Produced by [`Profiler::profile`](crate::Profiler::profile); consumed by
/// the recomputation knapsack, the partitioning DP, the memory model and
/// the schedule simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileTable {
    /// `per_layer[l]` holds the unit profiles of layer `l` in execution
    /// order.
    per_layer: Vec<Vec<UnitProfile>>,
    /// Bytes crossing a pipeline-stage boundary per micro-batch.
    boundary_bytes: Bytes,
}

/// Error returned by [`ProfileTable::from_measurements`] when a supplied
/// measurement table is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MeasurementError {
    /// The table contains no layers or an empty layer.
    Empty,
    /// A unit's recorded layer index does not match its position.
    LayerIndexMismatch {
        /// Position in the table.
        expected: usize,
        /// Index recorded in the unit.
        found: usize,
    },
    /// A time or size is negative or non-finite.
    InvalidValue {
        /// Which layer the bad row is in.
        layer: usize,
    },
}

impl std::fmt::Display for MeasurementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeasurementError::Empty => write!(f, "measurement table has no units"),
            MeasurementError::LayerIndexMismatch { expected, found } => {
                write!(f, "unit records layer {found} but sits at layer {expected}")
            }
            MeasurementError::InvalidValue { layer } => {
                write!(f, "non-finite or negative measurement in layer {layer}")
            }
        }
    }
}

impl std::error::Error for MeasurementError {}

impl ProfileTable {
    pub(crate) fn new(per_layer: Vec<Vec<UnitProfile>>, boundary_bytes: Bytes) -> Self {
        ProfileTable {
            per_layer,
            boundary_bytes,
        }
    }

    /// Builds a table from externally measured unit profiles — the
    /// drop-in path for running the search on *real* profiling data
    /// instead of the analytical model. `per_layer[l]` must hold layer
    /// `l`'s units in execution order; `boundary_bytes` is the
    /// stage-boundary activation size per micro-batch.
    ///
    /// # Errors
    ///
    /// Returns [`MeasurementError`] if the table is empty, a unit's
    /// layer index disagrees with its position, or any time is negative
    /// or non-finite.
    pub fn from_measurements(
        per_layer: Vec<Vec<UnitProfile>>,
        boundary_bytes: Bytes,
    ) -> Result<Self, MeasurementError> {
        if per_layer.is_empty() || per_layer.iter().any(Vec::is_empty) {
            return Err(MeasurementError::Empty);
        }
        for (l, units) in per_layer.iter().enumerate() {
            for u in units {
                if u.unit.layer != l {
                    return Err(MeasurementError::LayerIndexMismatch {
                        expected: l,
                        found: u.unit.layer,
                    });
                }
                if u.time_f.is_invalid_cost() || u.time_b.is_invalid_cost() {
                    return Err(MeasurementError::InvalidValue { layer: l });
                }
            }
        }
        Ok(ProfileTable {
            per_layer,
            boundary_bytes,
        })
    }

    /// Number of layers profiled.
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.per_layer.len()
    }

    /// Unit profiles of layer `layer`, in execution order.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    #[must_use]
    pub fn layer_units(&self, layer: usize) -> &[UnitProfile] {
        &self.per_layer[layer]
    }

    /// All unit profiles of the layers in `range`, in execution order.
    #[must_use]
    pub fn units_in(&self, range: LayerRange) -> Vec<UnitProfile> {
        range
            .as_range()
            .flat_map(|l| self.per_layer[l].iter().copied())
            .collect()
    }

    /// Every unit profile of the model, in execution order.
    pub fn all_units(&self) -> impl Iterator<Item = &UnitProfile> + '_ {
        self.per_layer.iter().flatten()
    }

    /// Total forward time of the layers in `range` (the `F` of a stage
    /// with no recomputation decisions applied — recomputation never
    /// changes forward time).
    #[must_use]
    pub fn forward_time(&self, range: LayerRange) -> MicroSecs {
        range
            .as_range()
            .map(|l| {
                self.per_layer[l]
                    .iter()
                    .map(|u| u.time_f)
                    .sum::<MicroSecs>()
            })
            .sum()
    }

    /// Total backward time of the layers in `range`, excluding
    /// recomputation.
    #[must_use]
    pub fn backward_time(&self, range: LayerRange) -> MicroSecs {
        range
            .as_range()
            .map(|l| {
                self.per_layer[l]
                    .iter()
                    .map(|u| u.time_b)
                    .sum::<MicroSecs>()
            })
            .sum()
    }

    /// Bytes of intermediates per micro-batch if *every* unit in `range`
    /// is saved (the no-recomputation activation footprint).
    #[must_use]
    pub fn saved_bytes_all(&self, range: LayerRange) -> Bytes {
        range
            .as_range()
            .map(|l| self.per_layer[l].iter().map(|u| u.mem_saved).sum::<Bytes>())
            .sum()
    }

    /// Bytes of intermediates per micro-batch if only *pinned* units in
    /// `range` are saved (the full-recomputation floor).
    #[must_use]
    pub fn saved_bytes_pinned(&self, range: LayerRange) -> Bytes {
        range
            .as_range()
            .map(|l| {
                self.per_layer[l]
                    .iter()
                    .filter(|u| u.is_pinned())
                    .map(|u| u.mem_saved)
                    .sum::<Bytes>()
            })
            .sum()
    }

    /// Size of the recomputation buffer (§4.2): large enough for all
    /// intermediates of the most expensive single decoder layer in
    /// `range`. Because layer outputs are pinned saved, recomputation
    /// never spans more than one layer.
    #[must_use]
    pub fn recompute_buffer_bytes(&self, range: LayerRange) -> Bytes {
        range
            .as_range()
            .map(|l| {
                self.per_layer[l]
                    .iter()
                    .filter(|u| !u.is_pinned())
                    .map(|u| u.mem_saved)
                    .sum::<Bytes>()
            })
            .max()
            .unwrap_or(Bytes::ZERO)
    }

    /// Bytes of the activation crossing a pipeline-stage boundary per
    /// micro-batch.
    #[must_use]
    pub fn boundary_bytes(&self) -> Bytes {
        self.boundary_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Profiler;
    use adapipe_hw::presets as hw;
    use adapipe_model::{presets, LayerRange, ParallelConfig, TrainConfig};

    fn table() -> ProfileTable {
        let model = presets::gpt2_small();
        let parallel = ParallelConfig::new(2, 4, 1).unwrap();
        let train = TrainConfig::new(1, 1024, 16).unwrap();
        Profiler::new(hw::cluster_a()).profile(&model, &parallel, &train)
    }

    #[test]
    fn layer_count_matches_model() {
        let t = table();
        assert_eq!(t.num_layers(), 2 * 12 + 2);
    }

    #[test]
    fn pinned_bytes_are_a_lower_bound() {
        let t = table();
        let range = LayerRange::new(0, t.num_layers() - 1);
        assert!(t.saved_bytes_pinned(range) < t.saved_bytes_all(range));
        assert!(t.saved_bytes_pinned(range) > Bytes::ZERO);
    }

    #[test]
    fn forward_time_additive_over_split() {
        let t = table();
        let full = LayerRange::new(0, t.num_layers() - 1);
        let a = LayerRange::new(0, 9);
        let b = LayerRange::new(10, t.num_layers() - 1);
        let sum = t.forward_time(a) + t.forward_time(b);
        assert!((t.forward_time(full) - sum).abs() < MicroSecs::new(1e-6));
    }

    #[test]
    fn buffer_is_one_layer_not_whole_range() {
        let t = table();
        let one = t.recompute_buffer_bytes(LayerRange::new(1, 2));
        let many = t.recompute_buffer_bytes(LayerRange::new(1, 20));
        // Homogeneous layers: the max over more layers equals one layer.
        assert_eq!(
            one.max(t.recompute_buffer_bytes(LayerRange::new(2, 2))),
            many
        );
    }

    #[test]
    fn units_in_matches_layer_units() {
        let t = table();
        let units = t.units_in(LayerRange::new(1, 1));
        assert_eq!(units.len(), t.layer_units(1).len());
    }

    #[test]
    fn measurements_round_trip_through_constructor() {
        let t = table();
        let per_layer: Vec<Vec<UnitProfile>> = (0..t.num_layers())
            .map(|l| t.layer_units(l).to_vec())
            .collect();
        let rebuilt = ProfileTable::from_measurements(per_layer, t.boundary_bytes()).unwrap();
        assert_eq!(rebuilt, t);
    }

    #[test]
    fn malformed_measurements_rejected() {
        use crate::profile::MeasurementError;
        let t = table();
        // Empty table.
        assert_eq!(
            ProfileTable::from_measurements(vec![], Bytes::ZERO).unwrap_err(),
            MeasurementError::Empty
        );
        // Mismatched layer index.
        let mut bad: Vec<Vec<UnitProfile>> = vec![t.layer_units(1).to_vec()];
        assert!(matches!(
            ProfileTable::from_measurements(bad.clone(), Bytes::ZERO).unwrap_err(),
            MeasurementError::LayerIndexMismatch { .. }
        ));
        // Negative time.
        bad[0] = t.layer_units(0).to_vec();
        bad[0][0].time_f = MicroSecs::new(-1.0);
        assert!(matches!(
            ProfileTable::from_measurements(bad, Bytes::ZERO).unwrap_err(),
            MeasurementError::InvalidValue { layer: 0 }
        ));
    }
}
