use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a coarse-grained model layer.
///
/// §5 of the paper treats a transformer as a flat sequence of layers:
/// the embedding, then an alternation of attention and feed-forward layers,
/// and finally the decoding head. Adaptive partitioning assigns each
/// pipeline stage a contiguous sub-sequence of these layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LayerKind {
    /// Token + position embedding; always the first layer.
    Embedding,
    /// Self-attention half of a decoder block.
    Attention,
    /// Feed-forward (MLP) half of a decoder block.
    FeedForward,
    /// Final layer-norm + LM head projection; always the last layer.
    DecodingHead,
}

impl LayerKind {
    /// Whether this layer is one of the two halves of a decoder block.
    #[must_use]
    pub fn is_decoder_half(self) -> bool {
        matches!(self, LayerKind::Attention | LayerKind::FeedForward)
    }
}

impl fmt::Display for LayerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            LayerKind::Embedding => "embedding",
            LayerKind::Attention => "attention",
            LayerKind::FeedForward => "feed-forward",
            LayerKind::DecodingHead => "decoding-head",
        };
        f.write_str(name)
    }
}

/// One layer in a [`LayerSeq`](crate::LayerSeq): its kind plus its position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Layer {
    /// The kind of this layer.
    pub kind: LayerKind,
    /// Index of this layer within the model's layer sequence.
    pub index: usize,
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.kind, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoder_half_classification() {
        assert!(LayerKind::Attention.is_decoder_half());
        assert!(LayerKind::FeedForward.is_decoder_half());
        assert!(!LayerKind::Embedding.is_decoder_half());
        assert!(!LayerKind::DecodingHead.is_decoder_half());
    }

    #[test]
    fn display_round_trips_via_debug() {
        let l = Layer {
            kind: LayerKind::Attention,
            index: 3,
        };
        assert_eq!(l.to_string(), "attention#3");
    }
}
