//! Chrome Trace Event Format export: the run's spans as complete
//! (`"ph": "X"`) duration events, loadable in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev).
//!
//! The export uses the JSON-array form of the format — an array whose
//! elements each carry `name`, `cat`, `ph`, `ts`/`dur` (microseconds),
//! `pid`, `tid` and optional `args` — which both viewers accept
//! directly.

// lint: allow-file(swallowed-result): fmt::Write into a String cannot fail
use crate::recorder::Snapshot;
use crate::report::{escape_json, json_num};
use std::fmt::Write as _;

/// Renders the snapshot's spans as Chrome-trace JSON. Events are sorted
/// by start timestamp; annotation args become the event's `args`
/// object. A metadata event names the process so traces from several
/// runs stay distinguishable in a viewer.
#[must_use]
pub fn chrome_trace_json(snapshot: &Snapshot) -> String {
    let mut spans: Vec<_> = snapshot.spans.iter().collect();
    spans.sort_by(|a, b| {
        a.start_us
            .total_cmp(&b.start_us)
            .then(a.tid.cmp(&b.tid))
            .then(b.dur_us.total_cmp(&a.dur_us))
    });

    let mut out = String::from("[\n");
    let _ = write!(
        out,
        "  {{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": 0, \
         \"args\": {{\"name\": \"adapipe search engine\"}}}}"
    );
    for e in spans {
        out.push_str(",\n");
        let _ = write!(
            out,
            "  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {}, \
             \"dur\": {}, \"pid\": 0, \"tid\": {}",
            escape_json(&e.name),
            escape_json(&e.cat),
            json_num(e.start_us),
            json_num(e.dur_us.max(0.0)),
            e.tid,
        );
        if !e.args.is_empty() {
            out.push_str(", \"args\": {");
            for (i, (k, v)) in e.args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{}\": \"{}\"", escape_json(k), escape_json(v));
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};
    use crate::{span, Recorder};

    fn sample_snapshot() -> Snapshot {
        let rec = Recorder::new();
        {
            let _plan = span!(rec, "plan", method = "adapipe");
            let _profile = rec.span_cat("plan.profile", "planner");
            drop(_profile);
            let _partition = rec.span_cat("plan.partition", "partition");
        }
        rec.snapshot()
    }

    #[test]
    fn trace_parses_and_events_are_complete() {
        let text = chrome_trace_json(&sample_snapshot());
        let Value::Array(events) = parse(&text).expect("valid JSON") else {
            panic!("trace must be a JSON array");
        };
        // Metadata event + three spans.
        assert_eq!(events.len(), 4);
        let mut last_ts = f64::NEG_INFINITY;
        for ev in &events[1..] {
            let Value::Object(map) = ev else {
                panic!("event must be an object")
            };
            assert_eq!(map.get("ph"), Some(&Value::String("X".into())));
            let Some(Value::Number(ts)) = map.get("ts") else {
                panic!("no ts")
            };
            let Some(Value::Number(dur)) = map.get("dur") else {
                panic!("no dur")
            };
            assert!(*ts >= last_ts, "timestamps must be sorted");
            assert!(*dur >= 0.0);
            last_ts = *ts;
        }
    }

    #[test]
    fn parent_span_encloses_children() {
        let text = chrome_trace_json(&sample_snapshot());
        let Value::Array(events) = parse(&text).unwrap() else {
            unreachable!()
        };
        let span = |name: &str| -> (f64, f64) {
            events
                .iter()
                .find_map(|e| {
                    let Value::Object(m) = e else { return None };
                    if m.get("name") == Some(&Value::String(name.into())) {
                        let Some(Value::Number(ts)) = m.get("ts") else {
                            return None;
                        };
                        let Some(Value::Number(dur)) = m.get("dur") else {
                            return None;
                        };
                        Some((*ts, *dur))
                    } else {
                        None
                    }
                })
                .unwrap_or_else(|| panic!("span {name} missing"))
        };
        let (pts, pdur) = span("plan");
        for child in ["plan.profile", "plan.partition"] {
            let (cts, cdur) = span(child);
            assert!(cts >= pts, "{child} starts inside plan");
            assert!(cts + cdur <= pts + pdur + 1e-6, "{child} ends inside plan");
        }
    }

    #[test]
    fn args_are_exported() {
        let text = chrome_trace_json(&sample_snapshot());
        assert!(
            text.contains("\"args\": {\"method\": \"adapipe\"}"),
            "{text}"
        );
    }

    #[test]
    fn empty_snapshot_is_a_valid_trace() {
        let text = chrome_trace_json(&Snapshot::default());
        let Value::Array(events) = parse(&text).unwrap() else {
            panic!()
        };
        assert_eq!(events.len(), 1); // just the metadata event
    }
}
