use adapipe_units::{Bytes, MicroSecs};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Forward or backward pass of one micro-batch through one stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Forward pass.
    Forward,
    /// Backward pass (including any recomputation).
    Backward,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OpKind::Forward => "F",
            OpKind::Backward => "B",
        })
    }
}

/// What a task represents, for timelines and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TaskMeta {
    /// Forward or backward.
    pub kind: OpKind,
    /// Micro-batch index (for doubled forwards, the first of the pair).
    pub micro_batch: usize,
    /// Pipeline stage the op belongs to.
    pub stage: usize,
    /// Model replica (0 for single pipelines; Chimera uses 0 = down,
    /// 1 = up).
    pub replica: usize,
}

/// Per-stage execution profile handed to the schedule generators: the
/// durations and activation footprint of one micro-batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageExec {
    /// Forward duration.
    pub time_f: MicroSecs,
    /// Backward duration (including recomputation).
    pub time_b: MicroSecs,
    /// Intermediates stored per in-flight micro-batch.
    pub saved_bytes: Bytes,
    /// Recompute buffer live during a backward pass.
    pub buffer_bytes: Bytes,
}

/// How devices choose their next task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Discipline {
    /// Run each device's queue strictly in insertion order.
    FixedOrder,
    /// Run the ready task with the smallest priority value.
    GreedyPriority,
}

/// One schedulable task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct Task {
    pub device: usize,
    pub dur: MicroSecs,
    /// `(task id, extra edge delay)` — the task may start only after
    /// every dependency has finished plus its edge delay (P2P transfer).
    pub deps: Vec<(usize, MicroSecs)>,
    /// Memory acquired on the device when the task starts.
    pub mem_acquire: Bytes,
    /// Memory released on the device when the task ends.
    pub mem_release: Bytes,
    /// Priority for [`Discipline::GreedyPriority`] (smaller runs first).
    pub priority: u64,
    pub meta: TaskMeta,
}

/// A complete schedule: tasks, device count and execution discipline.
///
/// Built by the generators in [`schedule`](crate::schedule) and executed
/// by [`simulate`](crate::simulate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    pub(crate) name: String,
    pub(crate) devices: usize,
    pub(crate) discipline: Discipline,
    pub(crate) tasks: Vec<Task>,
}

impl TaskGraph {
    /// Creates an empty graph for `devices` devices.
    #[must_use]
    pub fn new(name: impl Into<String>, devices: usize, discipline: Discipline) -> Self {
        assert!(devices > 0, "need at least one device");
        TaskGraph {
            name: name.into(),
            devices,
            discipline,
            tasks: Vec::new(),
        }
    }

    /// Schedule name (e.g. `"1f1b"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of devices.
    #[must_use]
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// Number of tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph has no tasks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The execution discipline devices follow.
    #[must_use]
    pub fn discipline(&self) -> Discipline {
        self.discipline
    }

    /// Device a task runs on.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    #[must_use]
    pub fn task_device(&self, task: usize) -> usize {
        self.tasks[task].device
    }

    /// Duration of a task.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    #[must_use]
    pub fn task_duration(&self, task: usize) -> MicroSecs {
        self.tasks[task].dur
    }

    /// `(dependency id, edge delay)` pairs of a task.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    #[must_use]
    pub fn task_deps(&self, task: usize) -> &[(usize, MicroSecs)] {
        &self.tasks[task].deps
    }

    /// Scheduling priority of a task (smaller runs first under
    /// [`Discipline::GreedyPriority`]).
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    #[must_use]
    pub fn task_priority(&self, task: usize) -> u64 {
        self.tasks[task].priority
    }

    /// What the task represents.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    #[must_use]
    pub fn task_meta(&self, task: usize) -> TaskMeta {
        self.tasks[task].meta
    }

    /// Adds a task and returns its id. Dependencies must refer to
    /// already-added tasks.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range or a dependency id is invalid
    /// (forward references would make the graph cyclic).
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        device: usize,
        dur: MicroSecs,
        deps: Vec<(usize, MicroSecs)>,
        mem_acquire: Bytes,
        mem_release: Bytes,
        priority: u64,
        meta: TaskMeta,
    ) -> usize {
        assert!(device < self.devices, "device {device} out of range");
        let id = self.tasks.len();
        for &(dep, _) in &deps {
            assert!(dep < id, "dependency {dep} must precede task {id}");
        }
        self.tasks.push(Task {
            device,
            dur,
            deps,
            mem_acquire,
            mem_release,
            priority,
            meta,
        });
        id
    }

    /// Lengthens a task by `extra` — fault injectors use this for
    /// one-shot stalls without rebuilding the graph.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range or `extra` is not a finite
    /// non-negative time.
    pub fn delay_task(&mut self, task: usize, extra: MicroSecs) {
        assert!(task < self.tasks.len(), "task id out of range");
        assert!(
            !extra.is_invalid_cost(),
            "delay must be a finite non-negative time"
        );
        self.tasks[task].dur += extra;
    }

    /// Scales the duration of every task on `device` by `1 / factor` —
    /// a device computing at `factor` × its healthy speed takes
    /// `1 / factor` × as long per task.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range or `factor` is not positive
    /// and finite.
    pub fn slow_device(&mut self, device: usize, factor: f64) {
        assert!(device < self.devices, "device {device} out of range");
        assert!(
            factor > 0.0 && factor.is_finite(),
            "compute factor must be positive and finite, got {factor}"
        );
        for t in &mut self.tasks {
            if t.device == device {
                t.dur = MicroSecs::new(t.dur.as_micros() / factor);
            }
        }
    }

    /// Adds a dependency edge after the fact. Unlike [`TaskGraph::push`],
    /// `dep` may be any task id (forward references allowed); the caller
    /// must keep the graph acyclic — the engine panics on deadlock.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn add_dep(&mut self, task: usize, dep: usize, delay: MicroSecs) {
        assert!(
            task < self.tasks.len() && dep < self.tasks.len(),
            "task id out of range"
        );
        self.tasks[task].deps.push((dep, delay));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> TaskMeta {
        TaskMeta {
            kind: OpKind::Forward,
            micro_batch: 0,
            stage: 0,
            replica: 0,
        }
    }

    #[test]
    fn push_assigns_sequential_ids() {
        let mut g = TaskGraph::new("t", 2, Discipline::FixedOrder);
        let a = g.push(
            0,
            MicroSecs::new(1.0),
            vec![],
            Bytes::ZERO,
            Bytes::ZERO,
            0,
            meta(),
        );
        let b = g.push(
            1,
            MicroSecs::new(1.0),
            vec![(a, MicroSecs::ZERO)],
            Bytes::ZERO,
            Bytes::ZERO,
            1,
            meta(),
        );
        assert_eq!((a, b), (0, 1));
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
    }

    #[test]
    #[should_panic(expected = "must precede")]
    fn forward_reference_panics() {
        let mut g = TaskGraph::new("t", 1, Discipline::FixedOrder);
        let _ = g.push(
            0,
            MicroSecs::new(1.0),
            vec![(5, MicroSecs::ZERO)],
            Bytes::ZERO,
            Bytes::ZERO,
            0,
            meta(),
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_device_panics() {
        let mut g = TaskGraph::new("t", 1, Discipline::FixedOrder);
        let _ = g.push(
            3,
            MicroSecs::new(1.0),
            vec![],
            Bytes::ZERO,
            Bytes::ZERO,
            0,
            meta(),
        );
    }
}
