// lint: allow-file(expect, index): stage/channel wiring is built by
// Pipeline::new with one sender/receiver per boundary; a missing channel or
// out-of-range stage is a construction bug the ctor asserts, not a runtime
// condition a caller can trigger.
//! The multi-threaded 1F1B pipeline executor.
//!
//! Each stage runs on its own thread, connected to its neighbours by
//! channels — activations flow forward, gradients flow backward — and
//! executes the 1F1B script (warmup forwards, steady 1F1B alternation,
//! backward drain). Gradients accumulate across micro-batches and a
//! synchronous SGD step closes the iteration, exactly like the DAPPLE
//! engine the paper builds on.

use crate::stage::{ExecCtx, ForwardCache, StageModule};
use crate::tape::Tape;
use crate::tensor::Tensor;
use crate::units::Optimizer;
use adapipe_faults::DegradationEvent;
use adapipe_units::{Bytes, MicroSecs};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::time::Instant;

/// Runtime degradation detection for the threaded trainer: per-stage
/// saved-activation budgets and an optional per-op wall-clock deadline.
/// An empty watchdog (the [`Default`]) checks nothing and costs nothing.
///
/// The trainer *reports* violations as typed [`DegradationEvent`]s and
/// finishes the iteration — graceful degradation — rather than
/// panicking mid-pipeline; the caller decides whether to retry, replan
/// or abort.
#[derive(Debug, Clone, Default)]
pub struct TrainWatchdog {
    /// Saved-activation high-water budget per stage (stages beyond
    /// `budgets.len()` are unchecked) — the trainer-side analogue of
    /// the Eq. (1)-(2) activation budget.
    pub budgets: Vec<Bytes>,
    /// Wall-clock deadline per forward/backward op (`None` disables
    /// timing). The planner-side analogue is α × the planned stage
    /// time; here the caller supplies the absolute cutoff.
    pub deadline: Option<MicroSecs>,
}

impl TrainWatchdog {
    /// Whether any check is armed.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        !self.budgets.is_empty() || self.deadline.is_some()
    }
}

/// Forward or backward slot in the per-stage script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Fwd(usize),
    Bwd(usize),
}

/// The 1F1B per-stage script (§2.1): stage `s` of `p` runs
/// `p − s − 1` warmup forwards, alternates F/B, then drains backwards.
fn f1b_script(p: usize, s: usize, n: usize) -> Vec<Op> {
    let w = (p - s - 1).min(n);
    let mut ops = Vec::with_capacity(2 * n);
    for m in 0..w {
        ops.push(Op::Fwd(m));
    }
    for k in 0..n - w {
        ops.push(Op::Fwd(w + k));
        ops.push(Op::Bwd(k));
    }
    for k in n - w..n {
        ops.push(Op::Bwd(k));
    }
    ops
}

/// One training iteration over `n` micro-batches with SGD — see
/// [`train_iteration_with`].
///
/// # Panics
///
/// As for [`train_iteration_with`].
pub fn train_iteration(
    stages: &mut [StageModule],
    batches: &[(Vec<usize>, Vec<usize>)],
    lr: f32,
) -> f32 {
    train_iteration_with(stages, batches, Optimizer::Sgd { lr }, 0)
}

/// One training iteration over `n` micro-batches: forward/backward every
/// micro-batch under 1F1B, accumulate gradients, take one optimizer
/// step. Returns the mean loss across micro-batches.
///
/// `batches[m]` is the `(input ids, target ids)` pair of micro-batch
/// `m`; `step` is the 0-based training step (it seeds dropout masks and
/// drives Adam's bias correction).
///
/// # Panics
///
/// Panics if `stages` is empty, `batches` is empty, or a stage thread
/// panics (e.g. shape mismatch).
pub fn train_iteration_with(
    stages: &mut [StageModule],
    batches: &[(Vec<usize>, Vec<usize>)],
    opt: Optimizer,
    step: usize,
) -> f32 {
    train_iteration_watched(stages, batches, opt, step, &TrainWatchdog::default()).0
}

/// [`train_iteration_with`] plus runtime degradation detection: returns
/// the mean loss and every [`DegradationEvent`] the watchdog raised
/// (saved-activation high-water over budget, per-op deadline misses),
/// in stage order. Violations never abort the iteration.
///
/// # Panics
///
/// As for [`train_iteration_with`].
pub fn train_iteration_watched(
    stages: &mut [StageModule],
    batches: &[(Vec<usize>, Vec<usize>)],
    opt: Optimizer,
    step: usize,
    watch: &TrainWatchdog,
) -> (f32, Vec<DegradationEvent>) {
    let p = stages.len();
    let n = batches.len();
    assert!(p > 0, "need at least one stage");
    assert!(n > 0, "need at least one micro-batch");

    // Channels between neighbours. Bounded at `n`: each direction
    // carries exactly one tensor per micro-batch per iteration, so the
    // senders never block, but a scheduling bug that over-produces now
    // deadlocks loudly instead of buffering without limit.
    let mut fwd_tx: Vec<Option<mpsc::SyncSender<Tensor>>> = Vec::new();
    let mut fwd_rx: Vec<Option<mpsc::Receiver<Tensor>>> = vec![None];
    let mut bwd_tx: Vec<Option<mpsc::SyncSender<Tensor>>> = vec![None];
    let mut bwd_rx: Vec<Option<mpsc::Receiver<Tensor>>> = Vec::new();
    for _ in 0..p - 1 {
        let (ftx, frx) = mpsc::sync_channel(n);
        fwd_tx.push(Some(ftx));
        fwd_rx.push(Some(frx));
        let (btx, brx) = mpsc::sync_channel(n);
        bwd_tx.push(Some(btx));
        bwd_rx.push(Some(brx));
    }
    fwd_tx.push(None);
    bwd_rx.push(None);

    let mut loss_sum = 0.0f32;
    let mut all_events = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (s, stage) in stages.iter_mut().enumerate() {
            let script = f1b_script(p, s, n);
            let fwd_in = fwd_rx[s].take();
            let fwd_out = fwd_tx[s].take();
            let bwd_in = bwd_rx[s].take();
            let bwd_out = bwd_tx[s].take();
            let batches = &batches;
            let budget = watch.budgets.get(s).copied();
            let deadline = watch.deadline;
            handles.push(scope.spawn(move || {
                stage.zero_grads();
                // Both queues are bounded by the in-flight micro-batch
                // count: 1F1B holds at most `n` forward caches (and in
                // practice at most the warmup depth) before the
                // matching backward drains them.
                let mut caches: VecDeque<(usize, ForwardCache)> = VecDeque::with_capacity(n);
                let mut pending_grads: VecDeque<(usize, Tensor)> = VecDeque::with_capacity(n);
                let mut losses = 0.0f32;
                let mut events: Vec<DegradationEvent> = Vec::new();
                let mut live_bytes = 0usize;
                let mut high_water = 0usize;
                let check_deadline =
                    |events: &mut Vec<DegradationEvent>, m: usize, started: Option<Instant>| {
                        let (Some(deadline), Some(t0)) = (deadline, started) else {
                            return;
                        };
                        let observed = MicroSecs::new(t0.elapsed().as_secs_f64() * 1e6);
                        if observed > deadline {
                            events.push(DegradationEvent::DeadlineMissed {
                                stage: s,
                                micro_batch: m,
                                observed,
                                deadline,
                            });
                        }
                    };
                let is_first = s == 0;
                let is_last = s == p - 1;
                for op in script {
                    match op {
                        Op::Fwd(m) => {
                            let ctx = ExecCtx {
                                step,
                                micro_batch: m,
                            };
                            // The deadline clocks compute, not the wait
                            // for the upstream activation.
                            let (x, started) = if is_first {
                                (None, deadline.map(|_| Instant::now()))
                            } else {
                                let x = fwd_in
                                    .as_ref()
                                    .expect("interior stage has input channel")
                                    .recv()
                                    .expect("previous stage alive");
                                (Some(x), deadline.map(|_| Instant::now()))
                            };
                            let (cache, out) = if is_first {
                                stage.forward(None, Some(&batches[m].0), ctx)
                            } else {
                                stage.forward(x, None, ctx)
                            };
                            check_deadline(&mut events, m, started);
                            live_bytes += cache.saved_bytes();
                            high_water = high_water.max(live_bytes);
                            caches.push_back((m, cache));
                            if let Some(tx) = &fwd_out {
                                tx.send(out).expect("next stage alive");
                            } else {
                                // Last stage: out = logits. Compute loss
                                // and the logits gradient right away.
                                let mut tape = Tape::new();
                                let logits = tape.leaf(out);
                                let loss = tape.cross_entropy(logits, &batches[m].1);
                                losses += tape.value(loss).at(0, 0);
                                tape.backward(loss, Tensor::from_vec(1, 1, vec![1.0]));
                                pending_grads.push_back((m, tape.grad(logits)));
                            }
                        }
                        Op::Bwd(m) => {
                            let grad = if is_last {
                                let (gm, g) = pending_grads
                                    .pop_front()
                                    .expect("forward precedes backward");
                                assert_eq!(gm, m, "1f1b order violated");
                                g
                            } else {
                                bwd_in
                                    .as_ref()
                                    .expect("interior stage has grad channel")
                                    .recv()
                                    .expect("next stage alive")
                            };
                            let started = deadline.map(|_| Instant::now());
                            let (cm, cache) =
                                caches.pop_front().expect("forward precedes backward");
                            assert_eq!(cm, m, "1f1b order violated");
                            let g_in = stage.backward(&cache, grad);
                            check_deadline(&mut events, m, started);
                            live_bytes = live_bytes.saturating_sub(cache.saved_bytes());
                            if let Some(tx) = &bwd_out {
                                tx.send(g_in.expect("non-embedding stage has input grad"))
                                    .expect("previous stage alive");
                            }
                        }
                    }
                }
                if let Some(budget) = budget {
                    let high_water = Bytes::new(high_water as u64);
                    if !high_water.fits(budget) {
                        events.push(DegradationEvent::BudgetExceeded {
                            stage: s,
                            high_water,
                            budget,
                        });
                    }
                }
                stage.optimizer_step(opt, step + 1, n as f32);
                (losses, events)
            }));
        }
        for h in handles {
            let (losses, events) = h.join().expect("stage thread panicked");
            loss_sum += losses;
            all_events.extend(events);
        }
    });
    (loss_sum / n as f32, all_events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{build_layer_units, init_rng, TinyDims};
    use adapipe_model::LayerKind;

    fn dims() -> TinyDims {
        TinyDims {
            hidden: 16,
            heads: 2,
            kv_heads: 2,
            ffn_hidden: 32,
            vocab: 24,
            max_seq: 8,
            swiglu: false,
            dropout: 0.0,
        }
    }

    /// A 2-stage pipeline: [emb, attn, ffn] | [attn, ffn, head].
    fn two_stage(save_all: bool) -> Vec<StageModule> {
        let d = dims();
        let mut rng = init_rng(11);
        let mut all = Vec::new();
        all.extend(build_layer_units(d, LayerKind::Embedding, 0, &mut rng));
        for l in 0..2 {
            all.extend(build_layer_units(
                d,
                LayerKind::Attention,
                1 + 2 * l,
                &mut rng,
            ));
            all.extend(build_layer_units(
                d,
                LayerKind::FeedForward,
                2 + 2 * l,
                &mut rng,
            ));
        }
        all.extend(build_layer_units(d, LayerKind::DecodingHead, 5, &mut rng));
        // Split after the first ffn (layer index 2): 1 + 6 + 4 units.
        let second: Vec<_> = all.split_off(11);
        let mk = |units: Vec<crate::units::UnitModule>| {
            let saved = units.iter().map(|u| save_all || u.is_pinned()).collect();
            StageModule::new_simple(units, saved, d.heads)
        };
        vec![mk(all), mk(second)]
    }

    fn batches(n: usize, seq: usize) -> Vec<(Vec<usize>, Vec<usize>)> {
        (0..n)
            .map(|m| {
                let ids: Vec<usize> = (0..seq).map(|i| (i * 3 + m) % 24).collect();
                let tgt: Vec<usize> = (0..seq).map(|i| (i * 3 + m + 1) % 24).collect();
                (ids, tgt)
            })
            .collect()
    }

    #[test]
    fn f1b_script_covers_all_ops_in_order() {
        let script = f1b_script(3, 0, 5);
        assert_eq!(script.len(), 10);
        let fwds: Vec<usize> = script
            .iter()
            .filter_map(|op| if let Op::Fwd(m) = op { Some(*m) } else { None })
            .collect();
        let bwds: Vec<usize> = script
            .iter()
            .filter_map(|op| if let Op::Bwd(m) = op { Some(*m) } else { None })
            .collect();
        assert_eq!(fwds, vec![0, 1, 2, 3, 4]);
        assert_eq!(bwds, vec![0, 1, 2, 3, 4]);
        // Warmup of stage 0 in a 3-stage pipe is 2 forwards.
        assert_eq!(&script[..3], &[Op::Fwd(0), Op::Fwd(1), Op::Fwd(2)][..]);
        assert_eq!(script[3], Op::Bwd(0));
    }

    #[test]
    fn pipeline_loss_decreases() {
        let mut stages = two_stage(true);
        let bs = batches(3, 6);
        let first = train_iteration(&mut stages, &bs, 0.05);
        let mut last = first;
        for _ in 0..10 {
            last = train_iteration(&mut stages, &bs, 0.05);
        }
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn recomputation_gives_bit_identical_training() {
        let bs = batches(4, 6);
        let mut full = two_stage(false);
        let mut none = two_stage(true);
        for step in 0..3 {
            let lf = train_iteration(&mut full, &bs, 0.05);
            let ln = train_iteration(&mut none, &bs, 0.05);
            assert_eq!(lf, ln, "losses diverged at step {step}");
        }
    }

    #[test]
    fn disarmed_watchdog_changes_nothing_and_raises_nothing() {
        let bs = batches(3, 6);
        let mut plain = two_stage(true);
        let mut watched = two_stage(true);
        let expect = train_iteration(&mut plain, &bs, 0.05);
        let (loss, events) = train_iteration_watched(
            &mut watched,
            &bs,
            Optimizer::Sgd { lr: 0.05 },
            0,
            &TrainWatchdog::default(),
        );
        assert_eq!(loss, expect, "watchdog must not perturb the math");
        assert!(events.is_empty(), "{events:?}");
        assert!(!TrainWatchdog::default().is_armed());
    }

    #[test]
    fn activation_overrun_is_reported_not_fatal() {
        let mut stages = two_stage(true);
        let bs = batches(3, 6);
        // A 1-byte budget on stage 0; stage 1 unchecked.
        let watch = TrainWatchdog {
            budgets: vec![adapipe_units::Bytes::new(1)],
            deadline: None,
        };
        let (loss, events) =
            train_iteration_watched(&mut stages, &bs, Optimizer::Sgd { lr: 0.05 }, 0, &watch);
        assert!(
            loss.is_finite(),
            "iteration must complete despite the overrun"
        );
        assert_eq!(events.len(), 1, "{events:?}");
        match &events[0] {
            DegradationEvent::BudgetExceeded {
                stage,
                high_water,
                budget,
            } => {
                assert_eq!(*stage, 0);
                assert!(*high_water > *budget);
            }
            other => panic!("expected a budget event, got {other:?}"),
        }
    }

    #[test]
    fn impossible_deadline_reports_misses_with_op_identity() {
        let mut stages = two_stage(true);
        let bs = batches(2, 6);
        let watch = TrainWatchdog {
            budgets: Vec::new(),
            deadline: Some(MicroSecs::new(0.0)),
        };
        assert!(watch.is_armed());
        let (_, events) =
            train_iteration_watched(&mut stages, &bs, Optimizer::Sgd { lr: 0.05 }, 0, &watch);
        // Every op takes > 0 µs, so every (stage, micro-batch, pass)
        // misses: 2 stages × 2 micro-batches × 2 passes.
        assert_eq!(events.len(), 8, "{events:?}");
        for e in &events {
            match e {
                DegradationEvent::DeadlineMissed {
                    stage,
                    micro_batch,
                    observed,
                    deadline,
                } => {
                    assert!(*stage < 2);
                    assert!(*micro_batch < 2);
                    assert!(observed > deadline);
                }
                other => panic!("expected deadline misses, got {other:?}"),
            }
        }
    }

    #[test]
    fn single_stage_pipeline_works() {
        let d = dims();
        let mut rng = init_rng(5);
        let mut all = Vec::new();
        all.extend(build_layer_units(d, LayerKind::Embedding, 0, &mut rng));
        all.extend(build_layer_units(d, LayerKind::Attention, 1, &mut rng));
        all.extend(build_layer_units(d, LayerKind::FeedForward, 2, &mut rng));
        all.extend(build_layer_units(d, LayerKind::DecodingHead, 3, &mut rng));
        let saved = all.iter().map(|u| u.is_pinned()).collect();
        let mut stages = vec![StageModule::new_simple(all, saved, d.heads)];
        let loss = train_iteration(&mut stages, &batches(2, 4), 0.01);
        assert!(loss.is_finite() && loss > 0.0);
    }
}
