//! # AdaPipe: adaptive recomputation + partitioning for pipeline parallelism
//!
//! A from-scratch Rust reproduction of *AdaPipe: Optimizing Pipeline
//! Parallelism with Adaptive Recomputation and Partitioning* (Sun et al.,
//! ASPLOS 2024).
//!
//! AdaPipe observes that 1F1B pipeline training leaves memory imbalanced
//! across stages — stage `s` must hold activations of `p − s` in-flight
//! micro-batches — and exploits it twice:
//!
//! 1. **Adaptive recomputation** (§4): each stage picks, via a knapsack
//!    DP over fine-grained *computation units*, exactly which
//!    intermediates to save within its own memory budget, instead of the
//!    all-or-nothing full/no recomputation of existing systems.
//! 2. **Adaptive partitioning** (§5): the resulting compute imbalance
//!    (early stages recompute more) is rebalanced by assigning early
//!    stages fewer layers, searched with a second-level DP (Algorithm 1)
//!    over the 1F1B cost model.
//!
//! This crate is the user-facing entry point. It composes the substrate
//! crates (model description, hardware model, analytical profiler, memory
//! model, the two DPs, and a discrete-event schedule simulator standing in
//! for the paper's GPU/NPU clusters) behind a single [`Planner`] API:
//!
//! ```
//! use adapipe::{Method, Planner};
//! use adapipe_hw::presets as hw;
//! use adapipe_model::{presets, ParallelConfig, TrainConfig};
//!
//! let planner = Planner::new(presets::gpt2_small(), hw::cluster_a());
//! let parallel = ParallelConfig::new(2, 4, 1)?;
//! let train = TrainConfig::new(1, 1024, 32)?;
//!
//! let plan = planner.plan(Method::AdaPipe, parallel, train).expect("feasible");
//! let eval = planner.evaluate(&plan);
//! assert!(eval.fits);
//!
//! let baseline = planner.plan(Method::DappleFull, parallel, train).expect("feasible");
//! let base_eval = planner.evaluate(&baseline);
//! assert!(eval.iteration_time <= base_eval.iteration_time);
//! # Ok::<(), adapipe_model::ConfigError>(())
//! ```
//!
//! The `adapipe-bench` crate regenerates every table and figure of the
//! paper's evaluation on top of this API; see `EXPERIMENTS.md` at the
//! workspace root.

#![forbid(unsafe_code)]

pub mod certify;
pub mod chaos;
mod error;
mod evaluate;
mod method;
pub mod oracle;
mod plan;
pub mod plan_io;
mod planner;
pub mod replan;
mod search;
pub mod verify;

pub use certify::OptimalityOptions;
pub use chaos::{ChaosConfig, ChaosOutcome};
pub use error::PlanError;
pub use evaluate::{Evaluation, Throughput};
pub use method::Method;
pub use plan::{Plan, StagePlan};
pub use plan_io::PlanParseError;
pub use planner::Planner;
pub use replan::{
    degraded_iteration_time, fits_degraded, ReplanConfig, ReplanOutcome, RetryRecord,
};
pub use search::{best_outcome, sweep_parallel_strategies, StrategyOutcome};
pub use verify::VerifyOptions;

pub use adapipe_check::{
    check_certificate, Certificate, CertificateParseError, CheckCode, CheckReport, Diagnostic,
    Severity, CERTIFICATE_HEADER, DEFAULT_EPSILON,
};
pub use oracle::{Counterexample, CounterexampleParseError, OracleBounds, SyntheticInstance};

pub use adapipe_obs::Recorder;
pub use adapipe_partition::F1bBreakdown;
pub use adapipe_recompute::RecomputeStrategy;
pub use adapipe_sim::SimReport;
