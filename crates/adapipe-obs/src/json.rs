//! A minimal, dependency-free JSON parser.
//!
//! The workspace builds hermetically (no serde_json), yet the exporters
//! in [`crate::report`] and [`crate::trace`] emit JSON artifacts that
//! tests and CI must be able to validate structurally. This module
//! parses the full JSON grammar (RFC 8259) into a [`Value`] tree; it is
//! meant for validating small artifacts, not for bulk data ingestion.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// JSON numbers are parsed as `f64` (ample for the artifacts this
    /// crate emits).
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value at `key` if `self` is an object that has it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The number if `self` is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents if `self` is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements if `self` is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }
}

/// A parse failure with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses `text` as a single JSON document.
///
/// # Errors
/// Returns a [`JsonError`] with the offending byte offset if `text` is
/// not valid JSON or has trailing non-whitespace content.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, word: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn parse_object(&mut self) -> Result<Value, JsonError> {
        self.expect_byte(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let second = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&second) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&first) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                first
                            };
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid unicode escape"))?;
                            out.push(c);
                            // parse_hex4 leaves pos one past the last
                            // hex digit; undo the +1 below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // encoding is already valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let Some(c) = s.chars().next() else {
                        return Err(self.err("unterminated string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit expected after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit expected in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Number(42.0));
        assert_eq!(parse("-0.5e2").unwrap(), Value::Number(-50.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#" {"a": [1, 2, {"b": null}], "c": "d"} "#).unwrap();
        let inner = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(inner.len(), 3);
        assert_eq!(inner[2].get("b"), Some(&Value::Null));
        assert_eq!(v.get("c").and_then(Value::as_str), Some("d"));
    }

    #[test]
    fn parses_escapes_and_surrogates() {
        assert_eq!(
            parse(r#""a\n\t\"\\\u0041""#).unwrap(),
            Value::String("a\n\t\"\\A".into())
        );
        // U+1F600 as a surrogate pair.
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            Value::String("\u{1F600}".into())
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "01",
            "1.",
            "\"\\q\"",
            "tru",
            "[1] x",
            "\"\u{1}\"",
            r#""\ud83d""#,
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn error_carries_offset() {
        let err = parse("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }
}
