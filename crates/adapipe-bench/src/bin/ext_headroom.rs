//! Extension: sensitivity of AdaPipe to the search memory limit.
//!
//! §7.4 of the paper runs the DP against a conservative 70 GB limit on
//! 80 GB devices and remarks that "the memory constraint can be elevated
//! for better performance". This driver sweeps the search headroom and
//! reports iteration time and realized peak memory — quantifying how
//! much performance the safety margin costs.

use adapipe::{Method, Planner};
use adapipe_bench::print_table;
use adapipe_hw::presets as hw;
use adapipe_model::{presets, ParallelConfig, TrainConfig};

fn main() {
    let parallel = ParallelConfig::new(8, 8, 1).expect("valid");
    let train = TrainConfig::new(1, 16384, 32).expect("valid");

    let mut rows = Vec::new();
    for headroom in [0.70f64, 0.80, 0.875, 0.95, 1.0] {
        let planner =
            Planner::new(presets::gpt3_175b(), hw::cluster_a()).with_search_headroom(headroom);
        match planner.plan(Method::AdaPipe, parallel, train) {
            Ok(plan) => {
                let eval = planner.evaluate(&plan);
                rows.push(vec![
                    format!("{:.0}%", headroom * 100.0),
                    format!("{:.3}", eval.iteration_time),
                    format!("{:.1}", eval.max_peak_gb()),
                    plan.saved_units_per_stage()
                        .iter()
                        .sum::<usize>()
                        .to_string(),
                    if eval.fits {
                        "fits".into()
                    } else {
                        "OOM".into()
                    },
                ]);
            }
            Err(e) => rows.push(vec![
                format!("{:.0}%", headroom * 100.0),
                format!("{e}"),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    print_table(
        "Extension: search-headroom sweep — GPT-3, seq 16384, (8,8,1)",
        &[
            "headroom",
            "iter time (s)",
            "peak GB",
            "total saved units",
            "verdict",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: iteration time falls monotonically as the search limit \
         rises (more units saved, less recomputation) — the §7.4 remark made \
         quantitative. Peak memory tracks the limit; the realized peak must stay \
         within the device for every headroom that fits."
    );
}
