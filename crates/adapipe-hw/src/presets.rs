//! Device and cluster presets matching the paper's two testbeds (§7.1).

use crate::cluster::ClusterSpec;
use crate::device::DeviceSpec;
use crate::link::LinkSpec;
use adapipe_units::{Bytes, BytesPerSec, FlopsPerSec, MicroSecs};

/// NVIDIA A100 80 GB SXM: 312 TFLOP/s bf16 peak, ~2 TB/s HBM2e.
///
/// The efficiency knobs (45 % of peak for large GEMMs, 80 % of bandwidth
/// for elementwise kernels) reflect commonly measured Megatron-LM
/// utilization on this part.
#[must_use]
pub fn a100_80gb() -> DeviceSpec {
    DeviceSpec::builder("a100-80gb")
        .mem_bytes(Bytes::from_gib(80))
        .reserved_bytes(Bytes::from_gib(3))
        .peak_flops(FlopsPerSec::new(312e12))
        .hbm_bandwidth(BytesPerSec::new(2.0e12))
        .matmul_efficiency(0.45)
        .mem_efficiency(0.8)
        .kernel_overhead(MicroSecs::new(6.0))
        .build()
}

/// Huawei Ascend 910 32 GB: 256 TFLOP/s fp16 peak, ~1.2 TB/s HBM.
#[must_use]
pub fn ascend910_32gb() -> DeviceSpec {
    DeviceSpec::builder("ascend910-32gb")
        .mem_bytes(Bytes::from_gib(32))
        .reserved_bytes(Bytes::new(3 << 29))
        .peak_flops(FlopsPerSec::new(256e12))
        .hbm_bandwidth(BytesPerSec::new(1.2e12))
        .matmul_efficiency(0.35)
        .mem_efficiency(0.7)
        .kernel_overhead(MicroSecs::new(8.0))
        .build()
}

/// Cluster A of the paper: 8 DGX-A100 nodes, 8 GPUs each, NVLink inside
/// a node (~250 GB/s effective ring bandwidth) and 800 Gb/s InfiniBand
/// between nodes.
#[must_use]
pub fn cluster_a() -> ClusterSpec {
    cluster_a_with_nodes(8)
}

/// Cluster A scaled to `nodes` DGX-A100 nodes (the Llama 2 experiments use
/// 4 nodes / 32 GPUs).
#[must_use]
pub fn cluster_a_with_nodes(nodes: usize) -> ClusterSpec {
    ClusterSpec::new(
        "cluster-a",
        a100_80gb(),
        8,
        nodes,
        LinkSpec::new(BytesPerSec::new(250e9), MicroSecs::new(5.0)),
        LinkSpec::new(BytesPerSec::new(100e9), MicroSecs::new(10.0)),
    )
}

/// Cluster B of the paper at small scale: 32 Atlas 800 nodes, 8 Ascend 910
/// NPUs each, 30 GB/s on-board mesh and one 100 Gb/s NIC per NPU.
#[must_use]
pub fn cluster_b_small() -> ClusterSpec {
    cluster_b_with_nodes(32)
}

/// Cluster B at large scale (2048 NPUs = 256 nodes).
#[must_use]
pub fn cluster_b_large() -> ClusterSpec {
    cluster_b_with_nodes(256)
}

/// Cluster B scaled to `nodes` Atlas 800 nodes.
#[must_use]
pub fn cluster_b_with_nodes(nodes: usize) -> ClusterSpec {
    ClusterSpec::new(
        "cluster-b",
        ascend910_32gb(),
        8,
        nodes,
        LinkSpec::new(BytesPerSec::new(30e9), MicroSecs::new(8.0)),
        LinkSpec::new(BytesPerSec::new(12.5e9), MicroSecs::new(15.0)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapipe_units::Flops;

    #[test]
    fn capacities_match_paper() {
        assert_eq!(a100_80gb().mem_bytes(), Bytes::from_gib(80));
        assert_eq!(ascend910_32gb().mem_bytes(), Bytes::from_gib(32));
    }

    #[test]
    fn cluster_sizes_match_paper() {
        assert_eq!(cluster_a().total_devices(), 64);
        assert_eq!(cluster_b_small().total_devices(), 256);
        assert_eq!(cluster_b_large().total_devices(), 2048);
        assert_eq!(cluster_a_with_nodes(4).total_devices(), 32);
    }

    #[test]
    fn a100_is_faster_than_ascend_for_same_gemm() {
        let a = a100_80gb();
        let b = ascend910_32gb();
        let (flops, bytes) = (Flops::new(1e12), Bytes::new(1_000_000_000));
        assert!(a.matmul_time(flops, bytes) < b.matmul_time(flops, bytes));
    }

    #[test]
    fn cluster_b_interconnect_is_slower() {
        let a = cluster_a();
        let b = cluster_b_small();
        assert!(b.p2p_time(Bytes::new(1 << 24)) > a.p2p_time(Bytes::new(1 << 24)));
        assert!(
            b.allreduce_time(Bytes::new(1 << 24), 8) > a.allreduce_time(Bytes::new(1 << 24), 8)
        );
    }
}
