//! Hardware and cluster descriptions for the AdaPipe reproduction.
//!
//! The paper evaluates on two clusters: DGX-A100 nodes (NVLink +
//! 800 Gb/s InfiniBand, 80 GB devices) and Atlas 800 nodes (Ascend 910,
//! 32 GB devices, 30 GB/s intra-board mesh + 100 Gb/s NICs). We have no
//! such hardware, so this crate models the *throughput-relevant* facts of
//! each device and interconnect: peak math rate, achievable efficiency,
//! memory capacity and bandwidth, and link bandwidth/latency.
//!
//! The rest of the workspace consumes only the derived quantities —
//! kernel times, collective and point-to-point transfer times — so any
//! internally-consistent description exercises the same code paths as a
//! profiled machine. Every quantity is expressed in the `adapipe-units`
//! newtypes ([`adapipe_units::MicroSecs`], [`adapipe_units::Bytes`], …),
//! so a seconds/microseconds or bytes/GiB mix-up fails to compile.
//!
//! # Example
//!
//! ```
//! use adapipe_hw::presets;
//! use adapipe_units::{Bytes, MicroSecs};
//!
//! let cluster = presets::cluster_a();
//! assert_eq!(cluster.device().mem_bytes(), Bytes::from_gib(80));
//! // An 8-way all-reduce of 1 MiB over NVLink takes microseconds.
//! let t = cluster.allreduce_time(Bytes::from_mib(1), 8);
//! assert!(t > MicroSecs::ZERO && t < MicroSecs::from_millis(1.0));
//! ```

#![forbid(unsafe_code)]

mod cluster;
mod device;
mod link;
pub mod presets;

pub use cluster::ClusterSpec;
pub use device::{DeviceSpec, DeviceSpecBuilder};
pub use link::LinkSpec;
