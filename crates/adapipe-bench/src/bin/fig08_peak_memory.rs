//! Figure 8: peak memory usage of each stage for every method — GPT-3,
//! sequence length 16384, (t, p, d) = (8, 8, 1) on cluster A.

use adapipe::{Method, Planner};
use adapipe_bench::{gb, print_table};
use adapipe_hw::presets as hw;
use adapipe_model::{presets, ParallelConfig, TrainConfig};

fn main() {
    let planner = Planner::new(presets::gpt3_175b(), hw::cluster_a());
    let parallel = ParallelConfig::new(8, 8, 1).expect("valid");
    let train = TrainConfig::new(1, 16384, 32).expect("valid");
    let capacity = gb(planner.capacity());

    let mut rows = Vec::new();
    for method in Method::figure5() {
        let row = match planner.plan(method, parallel, train) {
            Ok(plan) => {
                let eval = planner.evaluate(&plan);
                let mut row = vec![method.to_string()];
                row.extend(
                    eval.peak_bytes_per_device
                        .iter()
                        .map(|&b| format!("{:.1}", gb(b))),
                );
                row.push(if eval.fits {
                    "fits".into()
                } else {
                    "OOM".into()
                });
                row
            }
            Err(e) => {
                let mut row = vec![method.to_string()];
                row.extend((0..8).map(|_| "-".to_string()));
                row.push(format!("{e}"));
                row
            }
        };
        rows.push(row);
    }
    print_table(
        &format!("Figure 8: per-stage peak memory (GB), limit {capacity:.0} GB — GPT-3, seq 16384, (8,8,1)"),
        &["method", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "verdict"],
        &rows,
    );
    println!(
        "\nExpected shape: DAPPLE-Full slopes down mildly with >30 GB unused; \
         DAPPLE-Non is wildly imbalanced (stage 0 far above the limit); Chimera \
         variants peak in the middle stages; AdaPipe and Even Partitioning sit \
         balanced just under the search limit (~70 GB)."
    );
}
