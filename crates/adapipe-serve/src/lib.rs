//! # adapipe-serve: the planner as a service
//!
//! AdaPipe is a search engine: a model + cluster description goes in,
//! a recomputation/partitioning plan comes out (§4–§5 of the paper),
//! and the paper's own workflow — profile once, search in seconds,
//! reuse across jobs — is a request/response service with heavy result
//! reuse. This crate is that service: a **zero-dependency HTTP/1.1
//! daemon** (std only, matching the workspace's hermetic constraint)
//! in front of the [`adapipe::Planner`].
//!
//! ## Endpoints
//!
//! | endpoint                 | semantics                                        |
//! |--------------------------|--------------------------------------------------|
//! | `POST /v1/plan`          | canonicalize → digest → cache hit or cold plan   |
//! | `GET /v1/plan/{digest}`  | cache lookup by content address (200 / 404)      |
//! | `GET /v1/trace/{id}`     | Chrome-trace JSON of a recent request (200 / 404)|
//! | `GET /healthz`           | liveness                                         |
//! | `GET /metrics`           | `adapipe-obs/v1` JSON metrics report             |
//! | `POST /admin/dump`       | `adapipe-flight/v1` flight-recorder dump         |
//! | `POST /admin/shutdown`   | graceful drain (std cannot catch SIGTERM)        |
//!
//! Every `POST /v1/plan` response carries a deterministic trace id in
//! `X-Adapipe-Trace` (digest prefix + sequence, no wall-clock); its
//! span timeline — queue wait, parse, the planner's phases, verify,
//! cache insert — is retrievable from a bounded in-memory store via
//! `GET /v1/trace/{id}`.
//!
//! ## The pipeline
//!
//! Requests are [canonicalized](request::PlanRequest::canonical_text)
//! so dimensionally-equal configs share a SHA-256 digest, then answered
//! from a [sharded LRU plan cache](cache::PlanCache); misses are planned
//! on a [bounded worker pool](queue::BoundedQueue) with explicit
//! backpressure (`503 + Retry-After`, never accept-then-hang),
//! per-request deadlines classified by the `adapipe-faults` watchdog,
//! and an unconditional `adapipe::verify` gate before any plan leaves
//! the process. Cache hits are byte-identical to the cold response.
//!
//! ```
//! use adapipe_serve::{client, ServeConfig, Server};
//! use adapipe_obs::Recorder;
//!
//! let server = Server::bind(
//!     ServeConfig { port: 0, ..ServeConfig::default() },
//!     Recorder::new(),
//! )
//! .unwrap();
//! let addr = server.addr().to_string();
//! let health = client::get(&addr, "/healthz").unwrap();
//! assert_eq!((health.status, health.body.as_str()), (200, "ok\n"));
//! let summary = server.shutdown_and_join();
//! assert_eq!(summary.requests, 1);
//! ```
//!
//! See `docs/serving.md` for the wire format, digest rules and
//! operational semantics.

#![forbid(unsafe_code)]

pub mod cache;
pub mod client;
pub mod http;
pub mod names;
pub mod queue;
pub mod request;
mod server;
pub mod sha;
pub mod trace_store;

pub use request::{PlanRequest, RequestError, DEFAULT_HEADROOM, REQUEST_HEADER};
pub use server::{ServeConfig, ServeSummary, Server};
