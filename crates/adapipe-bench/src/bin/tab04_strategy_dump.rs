//! Table 4: the recomputation and partitioning configuration AdaPipe and
//! Even Partitioning produce — saved computation units and layer counts
//! per stage. GPT-3, sequence 16384, (t, p, d) = (8, 8, 1).

use adapipe::{Method, Planner};
use adapipe_bench::{emit_bench_json, print_table};
use adapipe_hw::presets as hw;
use adapipe_model::{presets, ParallelConfig, TrainConfig};
use adapipe_obs::{keys, Recorder};

fn main() {
    let rec = Recorder::new();
    let t0 = std::time::Instant::now();
    let planner = Planner::new(presets::gpt3_175b(), hw::cluster_a()).with_recorder(rec.clone());
    let parallel = ParallelConfig::new(8, 8, 1).expect("valid");
    let train = TrainConfig::new(1, 16384, 32).expect("valid");

    let mut rows = Vec::new();
    for method in [Method::AdaPipe, Method::EvenPartitioning] {
        let plan = planner
            .plan(method, parallel, train)
            .expect("feasible at (8,8,1)");
        let mut saved = vec![method.to_string(), "saved units".into()];
        saved.extend(plan.saved_units_per_stage().iter().map(ToString::to_string));
        rows.push(saved);
        let mut layers = vec![String::new(), "# layers".into()];
        layers.extend(plan.layers_per_stage().iter().map(ToString::to_string));
        rows.push(layers);
        if method == Method::AdaPipe {
            println!("{plan}");
        }
    }
    print_table(
        "Table 4: per-stage recomputation and partitioning — GPT-3, seq 16384, (8,8,1)",
        &[
            "method", "row", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: saved units grow with stage id for both methods (later \
         stages hold fewer in-flight micro-batches); Even Partitioning keeps ~24 \
         layers everywhere while AdaPipe shifts layers from early to late stages \
         (paper: 23, 23, 23, 24, 25, 25, 25, 26)."
    );

    rec.gauge(keys::BENCH_WALL_S, t0.elapsed().as_secs_f64());
    emit_bench_json("tab04_strategy_dump", &rec, &[("table", "4")]);
}
