//! Figure 9: computation (micro-step) time of each stage — the sum of
//! one micro-batch's forward and backward time — for the full-recompute
//! baselines, Even Partitioning and AdaPipe. GPT-3, seq 16384, (8,8,1).

use adapipe::{Method, Planner};
use adapipe_bench::print_table;
use adapipe_hw::presets as hw;
use adapipe_model::{presets, ParallelConfig, TrainConfig};
use adapipe_units::MicroSecs;

fn main() {
    let planner = Planner::new(presets::gpt3_175b(), hw::cluster_a());
    let parallel = ParallelConfig::new(8, 8, 1).expect("valid");
    let train = TrainConfig::new(1, 16384, 32).expect("valid");

    let methods = [
        Method::DappleFull,
        Method::ChimeraFull,
        Method::ChimeraDFull,
        Method::EvenPartitioning,
        Method::AdaPipe,
    ];
    let mut rows = Vec::new();
    for method in methods {
        let Ok(plan) = planner.plan(method, parallel, train) else {
            continue;
        };
        let steps: Vec<MicroSecs> = plan
            .stages
            .iter()
            .map(adapipe::StagePlan::micro_step)
            .collect();
        let spread = steps.iter().copied().fold(MicroSecs::ZERO, MicroSecs::max)
            / steps
                .iter()
                .copied()
                .fold(MicroSecs::new(f64::INFINITY), MicroSecs::min);
        let mut row = vec![method.to_string()];
        row.extend(steps.iter().map(|t| format!("{:.2}", t.as_millis())));
        row.push(format!("{spread:.2}x"));
        rows.push(row);
    }
    print_table(
        "Figure 9: per-stage micro-step time (ms) — GPT-3, seq 16384, (8,8,1)",
        &[
            "method", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "max/min",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: the full-recompute baselines are flat; Even Partitioning \
         slopes *down* with stage id (early stages recompute more; paper: slowest ≈ \
         1.17x fastest); AdaPipe moves layers rearward and flattens the curve again."
    );
}
