//! Pins the CLI's exit-code contract: `0` ok, `1` artifact rejected,
//! `2` internal error. Downstream automation (the CI chaos job, shell
//! scripts gating deploys on `verify`) branches on these codes, so they
//! are part of the public interface and must not drift.

use std::path::PathBuf;
use std::process::Command;

fn adapipe() -> Command {
    Command::new(env!("CARGO_BIN_EXE_adapipe"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("adapipe-exit-codes-{name}"))
}

const SMALL_WORLD: &[&str] = &["--model", "gpt2", "--cluster", "a", "--nodes", "1"];
const SMALL_JOB: &[&str] = &[
    "--tensor",
    "2",
    "--pipeline",
    "4",
    "--seq",
    "512",
    "--global-batch",
    "16",
];

/// Writes a small valid plan file and returns its path.
fn write_plan(name: &str) -> PathBuf {
    let path = tmp(name);
    let status = adapipe()
        .arg("plan")
        .args(SMALL_WORLD)
        .args(SMALL_JOB)
        .args(["--out", path.to_str().unwrap()])
        .status()
        .expect("spawn adapipe plan");
    assert!(status.success(), "plan should exit 0");
    path
}

#[test]
fn success_paths_exit_zero() {
    let status = adapipe().arg("models").status().unwrap();
    assert_eq!(status.code(), Some(0), "models");

    let status = adapipe().arg("--help").status().unwrap();
    assert_eq!(status.code(), Some(0), "--help");

    let plan = write_plan("ok-plan.txt");
    for sub in ["verify", "sim"] {
        let status = adapipe()
            .arg(sub)
            .args(["--plan", plan.to_str().unwrap()])
            .args(SMALL_WORLD)
            .status()
            .unwrap();
        assert_eq!(status.code(), Some(0), "{sub} of a valid plan");
    }
    let _ = std::fs::remove_file(&plan);
}

#[test]
fn rejected_artifacts_exit_one() {
    let plan = write_plan("bad-plan.txt");
    // Corrupt one stage's backward time: the stored cost no longer
    // matches its strategy, an error-severity verification finding.
    let text = std::fs::read_to_string(&plan).unwrap();
    let line = text
        .lines()
        .find(|l| l.trim_start().starts_with("time_b ="))
        .unwrap()
        .to_string();
    let corrupted = text.replacen(&line, "  time_b = 999.0", 1);
    let bad = tmp("bad-plan-corrupted.txt");
    std::fs::write(&bad, corrupted).unwrap();

    let status = adapipe()
        .arg("verify")
        .args(["--plan", bad.to_str().unwrap()])
        .args(SMALL_WORLD)
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(1), "verify of a corrupted plan");
    let _ = std::fs::remove_file(&plan);
    let _ = std::fs::remove_file(&bad);
}

#[test]
fn optimality_verification_exit_codes() {
    let plan = write_plan("optimality-plan.txt");
    let cert = tmp("optimality-cert.txt");

    // A fresh AdaPipe plan certifies within the default ε band and the
    // oracles agree with the DPs: exit 0, certificate artifact written.
    let output = adapipe()
        .arg("verify")
        .args(["--plan", plan.to_str().unwrap()])
        .args(["--optimality", "true", "--oracle-iters", "16"])
        .args(["--certificate-out", cert.to_str().unwrap()])
        .args(SMALL_WORLD)
        .output()
        .unwrap();
    assert_eq!(
        output.status.code(),
        Some(0),
        "optimality verify of a fresh plan: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let cert_text = std::fs::read_to_string(&cert).unwrap();
    assert!(
        cert_text.starts_with("adapipe-certificate v1"),
        "{cert_text}"
    );

    // ε = 0 leaves no room for the lower bound's deliberate slack: the
    // same plan now reports an optimality gap, an error-severity
    // finding, so the artifact is rejected with exit 1.
    let output = adapipe()
        .arg("verify")
        .args(["--plan", plan.to_str().unwrap()])
        .args([
            "--optimality",
            "true",
            "--epsilon",
            "0",
            "--oracle-iters",
            "0",
        ])
        .args(SMALL_WORLD)
        .output()
        .unwrap();
    assert_eq!(
        output.status.code(),
        Some(1),
        "zero-epsilon optimality verify: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("optimality-gap"), "{stderr}");

    // Optimality tuning flags without --optimality true are a usage
    // error (exit 2), not a silently ignored flag.
    let status = adapipe()
        .arg("verify")
        .args(["--plan", plan.to_str().unwrap()])
        .args(["--epsilon", "0.1"])
        .args(SMALL_WORLD)
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(2), "--epsilon without --optimality");

    let _ = std::fs::remove_file(&plan);
    let _ = std::fs::remove_file(&cert);
}

#[test]
fn internal_errors_exit_two() {
    let status = adapipe().arg("frobnicate").status().unwrap();
    assert_eq!(status.code(), Some(2), "unknown subcommand");

    let status = adapipe().status().unwrap();
    assert_eq!(status.code(), Some(2), "no subcommand");

    let status = adapipe()
        .arg("plan")
        .args(["--model", "bloom"])
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(2), "unknown model");

    let status = adapipe()
        .arg("verify")
        .args(["--plan", "/nonexistent/adapipe-plan.txt"])
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(2), "unreadable plan file");

    let status = adapipe()
        .arg("chaos")
        .args(["--faults", "/nonexistent/faults.txt"])
        .args(SMALL_WORLD)
        .args(SMALL_JOB)
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(2), "unreadable fault file");
}

#[test]
fn metrics_out_creates_missing_parent_directories() {
    let root = tmp("nested-artifacts");
    let _ = std::fs::remove_dir_all(&root);
    let metrics = root.join("deep/nested/metrics.json");

    let output = adapipe()
        .arg("plan")
        .args(SMALL_WORLD)
        .args(SMALL_JOB)
        .args(["--metrics-out", metrics.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        output.status.code(),
        Some(0),
        "missing parents must be created: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let text = std::fs::read_to_string(&metrics).unwrap();
    assert!(text.contains("adapipe-obs/v1"), "{text}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn unwritable_artifact_exits_one() {
    // A *file* where a parent directory is needed: create_dir_all
    // fails, which must surface as an artifact error (exit 1), not an
    // internal error (2).
    let blocker = tmp("artifact-blocker");
    std::fs::write(&blocker, "i am a file, not a directory").unwrap();
    let metrics = blocker.join("metrics.json");

    let output = adapipe()
        .arg("plan")
        .args(SMALL_WORLD)
        .args(SMALL_JOB)
        .args(["--metrics-out", metrics.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        output.status.code(),
        Some(1),
        "unwritable artifact: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("cannot write"), "{stderr}");
    let _ = std::fs::remove_file(&blocker);
}

#[test]
fn chaos_recovers_a_straggler_and_exits_zero() {
    let faults = tmp("straggler.txt");
    std::fs::write(
        &faults,
        "adapipe-faults v1\nseed = 42\nstraggler device=2 factor=0.6 from-step=0\n",
    )
    .unwrap();
    let report = tmp("straggler-report.txt");
    let replanned = tmp("straggler-replan.txt");

    let output = adapipe()
        .arg("chaos")
        .args(["--faults", faults.to_str().unwrap()])
        .args(["--out", report.to_str().unwrap()])
        .args(["--replan-out", replanned.to_str().unwrap()])
        .args(SMALL_WORLD)
        .args(SMALL_JOB)
        .output()
        .unwrap();
    assert_eq!(
        output.status.code(),
        Some(0),
        "chaos should recover: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    let report_text = std::fs::read_to_string(&report).unwrap();
    assert!(report_text.starts_with("adapipe-chaos v1"), "{report_text}");
    assert!(report_text.contains("action = replan"), "{report_text}");

    // The replanned artifact must be accepted by the static checker.
    let status = adapipe()
        .arg("verify")
        .args(["--plan", replanned.to_str().unwrap()])
        .args(SMALL_WORLD)
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(0), "verify of the replanned artifact");

    let _ = std::fs::remove_file(&faults);
    let _ = std::fs::remove_file(&report);
    let _ = std::fs::remove_file(&replanned);
}

#[test]
fn chaos_seed_override_is_deterministic() {
    let faults = tmp("seed-override.txt");
    std::fs::write(
        &faults,
        "adapipe-faults v1\nseed = 1\nstraggler device=2 factor=0.6 from-step=0\n",
    )
    .unwrap();
    let reports: Vec<String> = (0..2)
        .map(|i| {
            let out = tmp(&format!("seed-override-report-{i}.txt"));
            let output = adapipe()
                .arg("chaos")
                .args(["--faults", faults.to_str().unwrap()])
                .args(["--seed", "7", "--out", out.to_str().unwrap()])
                .args(SMALL_WORLD)
                .args(SMALL_JOB)
                .output()
                .unwrap();
            assert_eq!(
                output.status.code(),
                Some(0),
                "{}",
                String::from_utf8_lossy(&output.stderr)
            );
            let text = std::fs::read_to_string(&out).unwrap();
            let _ = std::fs::remove_file(&out);
            text
        })
        .collect();
    assert_eq!(reports[0], reports[1], "same fault file + seed, same bytes");
    assert!(reports[0].contains("seed = 7"), "{}", reports[0]);
    let _ = std::fs::remove_file(&faults);
}
