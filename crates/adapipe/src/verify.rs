//! Whole-plan static verification: assembles the `adapipe-check`
//! invariant catalog into a single pass over a [`Plan`].
//!
//! A plan artifact — whether just searched or loaded from disk via
//! [`plan_io`](crate::plan_io) — claims a lot: that its partition covers
//! the model (§5), that every stage's strategy, cost and memory
//! breakdown are mutually consistent and within budget (Eq. (1)-(2),
//! §4.2-4.3), that its analytic prediction satisfies the Eq. (3)
//! recurrences, and that its schedule's task DAG can execute without
//! deadlock. [`Planner::verify`] checks all of it without simulating;
//! `adapipe verify --plan FILE` exposes the same pass on the CLI, and
//! the planner re-runs it on every plan it emits in debug builds.

use crate::method::Method;
use crate::plan::Plan;
use crate::planner::{expected_static_bytes, Context, Planner};
use adapipe_check::{
    check_breakdown, check_capacity, check_memory_accounting, check_partition, check_stage_cost,
    check_strategy, check_task_graph, CheckCode, CheckReport, Diagnostic, Severity,
};
use adapipe_memory::StageMemory;
use adapipe_partition::{KnapsackCostProvider, StageCostProvider, StageTimes};
use adapipe_recompute::strategy;

/// Tuning for a verification pass.
#[derive(Debug, Clone, Copy)]
pub struct VerifyOptions {
    /// Relative tolerance for `f64` consistency checks (cost drift,
    /// Eq. (3) breakdown). The default leaves room for nothing beyond
    /// float noise.
    pub tolerance: f64,
    /// Re-solve the recomputation knapsack per stage with the §5.3
    /// isomorphism cache enabled *and* disabled and require identical
    /// costs (adaptive methods only). Thorough but re-runs the search's
    /// leaf DP; enabled for `adapipe verify`, skipped by the planner's
    /// debug hooks.
    pub iso_cache_spot_check: bool,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            tolerance: adapipe_check::DEFAULT_TOLERANCE,
            iso_cache_spot_check: true,
        }
    }
}

impl VerifyOptions {
    /// The cheap subset: everything except the iso-cache spot-check.
    /// What the planner's `debug_assertions` hooks run on every plan.
    #[must_use]
    pub fn quick() -> Self {
        VerifyOptions {
            iso_cache_spot_check: false,
            ..VerifyOptions::default()
        }
    }
}

impl Planner {
    /// Statically verifies `plan` against the full invariant catalog
    /// (with the default [`VerifyOptions`]) without executing it.
    ///
    /// Memory overflow on baseline methods is reported at
    /// [`Severity::Warning`] — the paper keeps OOM baselines reportable
    /// (Table 3) — while adaptive plans, which searched under the
    /// constraint, get [`Severity::Error`].
    #[must_use]
    pub fn verify(&self, plan: &Plan) -> CheckReport {
        self.verify_with(plan, VerifyOptions::default())
    }

    /// [`Planner::verify`] with explicit options.
    #[must_use]
    pub fn verify_with(&self, plan: &Plan, opts: VerifyOptions) -> CheckReport {
        let mut report = CheckReport::new();
        let p = plan.parallel.pipeline();
        let vp = p * plan.method.virtual_chunks();
        if plan.stages.len() != vp {
            report.push(Diagnostic::error(
                CheckCode::StageCount,
                None,
                format!(
                    "plan has {} stages but {} needs p × v = {p} × {} = {vp}",
                    plan.stages.len(),
                    plan.method,
                    plan.method.virtual_chunks()
                ),
            ));
            return report;
        }
        let ctx = self.context(plan.parallel, plan.train);
        let n = ctx.n;
        if plan.n_microbatches != n {
            report.push(Diagnostic::error(
                CheckCode::MicrobatchCount,
                None,
                format!(
                    "plan claims {} micro-batches but the workload yields {n}",
                    plan.n_microbatches
                ),
            ));
        }

        let ranges = plan.ranges();
        report.extend(check_partition(&ranges, ctx.seq.len()));
        let ranges_in_bounds = ranges
            .iter()
            .all(|r| r.first <= r.last && r.last < ctx.seq.len());

        if ranges_in_bounds {
            for (s, stage) in plan.stages.iter().enumerate() {
                let units = ctx.table.units_in(stage.range);
                let strat_diags = check_strategy(s, &units, &stage.strategy);
                let arity_ok = !strat_diags
                    .iter()
                    .any(|d| d.code == CheckCode::StrategyArity);
                report.extend(strat_diags);
                if !arity_ok {
                    continue;
                }
                report.extend(check_stage_cost(
                    s,
                    &units,
                    &stage.strategy,
                    &stage.cost,
                    opts.tolerance,
                ));
                let live = plan.method.live_microbatches(p, s, n) as u64;
                let expected = StageMemory {
                    static_bytes: expected_static_bytes(&ctx, plan.method, &ranges, s),
                    buffer_bytes: strategy::buffer_bytes_of(&units, &stage.strategy),
                    intermediate_bytes: live * stage.cost.saved_bytes_per_mb,
                };
                report.extend(check_memory_accounting(s, &expected, &stage.memory));
                let severity = if plan.method.is_adaptive() {
                    Severity::Error
                } else {
                    Severity::Warning
                };
                report.extend(check_capacity(s, &stage.memory, self.capacity(), severity));
            }
        }

        if let Some(bd) = &plan.predicted {
            let times: Vec<StageTimes> = plan
                .stages
                .iter()
                .map(|s| StageTimes {
                    f: s.cost.time_f,
                    b: s.cost.time_b,
                })
                .collect();
            report.extend(check_breakdown(&times, n, bd, opts.tolerance));
        }

        match schedule_preconditions(plan.method, p, n) {
            Ok(()) => {
                let graph = self.build_schedule(plan, &ctx);
                report.extend(check_task_graph(&graph));
            }
            Err(msg) => report.push(Diagnostic::error(CheckCode::MicrobatchCount, None, msg)),
        }

        if opts.iso_cache_spot_check && plan.method.is_adaptive() && ranges_in_bounds {
            report.extend(self.iso_cache_spot_check(&ctx, &ranges, opts.tolerance));
        }
        report
    }

    /// §5.3 soundness spot-check: for each stage window of the plan, the
    /// cached `f/b[s,i,j]` leaf cost must equal the cost recomputed with
    /// the isomorphism cache disabled, and a repeated cached query must
    /// return the identical value.
    fn iso_cache_spot_check(
        &self,
        ctx: &Context,
        ranges: &[adapipe_model::LayerRange],
        tol: f64,
    ) -> Vec<Diagnostic> {
        let cached =
            KnapsackCostProvider::new(&ctx.seq, &ctx.table, &ctx.mem, self.search_capacity())
                .with_knapsack_config(self.knapsack_config());
        let raw = KnapsackCostProvider::new(&ctx.seq, &ctx.table, &ctx.mem, self.search_capacity())
            .with_knapsack_config(self.knapsack_config())
            .with_isomorphism_cache(false);
        let mut out = Vec::new();
        for (s, &r) in ranges.iter().enumerate() {
            let first = cached.stage_times(s, r);
            let again = cached.stage_times(s, r);
            let fresh = raw.stage_times(s, r);
            let agree = match (first, fresh) {
                (Some(a), Some(b)) => {
                    adapipe_check::approx_eq(a.f.as_micros(), b.f.as_micros(), tol)
                        && adapipe_check::approx_eq(a.b.as_micros(), b.b.as_micros(), tol)
                }
                (None, None) => true,
                _ => false,
            };
            if !agree || first != again {
                out.push(Diagnostic::error(
                    CheckCode::IsoCacheDivergence,
                    Some(s),
                    format!(
                        "cached leaf cost {first:?} (repeat {again:?}) vs recomputed {fresh:?} \
                         for window {r}"
                    ),
                ));
            }
        }
        let hits = cached.cache_stats().hits;
        if hits < ranges.len() as u64 {
            out.push(Diagnostic::error(
                CheckCode::IsoCacheDivergence,
                None,
                format!(
                    "isomorphism cache served {hits} hits for {} repeated queries",
                    ranges.len()
                ),
            ));
        }
        out
    }
}

/// Whether `method`'s schedule generator can build a graph at all for
/// this `(p, n)`; mirrors the generators' own preconditions so the
/// verifier reports a diagnostic where they would panic.
fn schedule_preconditions(method: Method, p: usize, n: usize) -> Result<(), String> {
    if method.is_chimera() {
        if !p.is_multiple_of(2) {
            return Err(format!("chimera needs an even pipeline size, got {p}"));
        }
        if n == 0 || !n.is_multiple_of(p) {
            return Err(format!(
                "chimera needs n to be a positive multiple of p (n={n}, p={p})"
            ));
        }
        return Ok(());
    }
    match method {
        Method::GpipeFull | Method::GpipeNone => {
            if n == 0 {
                return Err("GPipe needs at least one micro-batch".to_string());
            }
        }
        _ => {
            if n < p {
                return Err(format!("1F1B needs n >= p (n={n}, p={p})"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapipe_hw::presets as hw;
    use adapipe_model::{presets, ParallelConfig, TrainConfig};

    fn small() -> (Planner, ParallelConfig, TrainConfig) {
        (
            Planner::new(presets::gpt2_small(), hw::cluster_a()),
            ParallelConfig::new(2, 4, 1).expect("valid parallelism"),
            TrainConfig::new(1, 1024, 32).expect("valid workload"),
        )
    }

    #[test]
    fn every_method_yields_a_verifiable_plan() -> Result<(), crate::PlanError> {
        let (planner, parallel, train) = small();
        for m in Method::all() {
            let Ok(plan) = planner.plan(m, parallel, train) else {
                continue;
            };
            let report = planner.verify(&plan);
            assert!(!report.has_errors(), "{m}: {report}");
        }
        Ok(())
    }

    #[test]
    fn stage_count_mismatch_short_circuits() -> Result<(), crate::PlanError> {
        let (planner, parallel, train) = small();
        let mut plan = planner.plan(Method::DappleFull, parallel, train)?;
        plan.stages.pop();
        let report = planner.verify_with(&plan, VerifyOptions::quick());
        assert!(report.has_code(CheckCode::StageCount), "{report}");
        Ok(())
    }

    #[test]
    fn schedule_preconditions_mirror_generators() {
        assert!(schedule_preconditions(Method::DappleFull, 4, 3).is_err());
        assert!(schedule_preconditions(Method::DappleFull, 4, 4).is_ok());
        assert!(schedule_preconditions(Method::ChimeraFull, 3, 6).is_err());
        assert!(schedule_preconditions(Method::ChimeraFull, 4, 6).is_err());
        assert!(schedule_preconditions(Method::ChimeraFull, 4, 8).is_ok());
        assert!(schedule_preconditions(Method::GpipeFull, 4, 1).is_ok());
        assert!(schedule_preconditions(Method::GpipeFull, 4, 0).is_err());
    }
}
