//! The §4.3 knapsack: choose saved units to maximize avoided
//! recomputation under a memory budget.

use crate::error::StrategyError;
use crate::strategy::{cost_of, RecomputeStrategy, StageCost};
use adapipe_obs::{keys, Recorder};
use adapipe_profiler::UnitProfile;
use adapipe_units::{convert, Bytes, Cost};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Tuning knobs for the knapsack DP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnapsackConfig {
    /// Upper bound on DP cells along the memory axis. When the
    /// GCD-rescaled budget still exceeds this, weights are re-bucketed
    /// conservatively (rounded up), trading a sliver of optimality for
    /// bounded time and space.
    pub max_capacity_cells: usize,
    /// Disables the §5.3 GCD rescaling (ablation benchmarks only; the
    /// capacity-cell cap still bounds the DP, so results stay feasible
    /// but the DP axis is much longer).
    pub disable_gcd: bool,
}

impl Default for KnapsackConfig {
    fn default() -> Self {
        KnapsackConfig {
            max_capacity_cells: 1 << 20,
            disable_gcd: false,
        }
    }
}

/// Result of optimizing one stage: the chosen strategy, its exact cost
/// and the portion of the budget left unused.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizedStage {
    /// The saved/recomputed decision per unit.
    pub strategy: RecomputeStrategy,
    /// Exact cost of the chosen strategy.
    pub cost: StageCost,
    /// Budget not consumed by saved intermediates.
    pub slack_bytes: Bytes,
}

/// Optimizes the recomputation strategy for one stage with the default
/// configuration. See [`optimize_with`].
///
/// # Errors
///
/// Returns [`StrategyError::OutOfMemory`] when the pinned units alone
/// exceed `budget_per_mb`.
pub fn optimize(
    units: &[UnitProfile],
    budget_per_mb: Bytes,
) -> Result<OptimizedStage, StrategyError> {
    optimize_with(units, budget_per_mb, KnapsackConfig::default())
}

/// Finds the saved-unit set maximizing `Σ Time_f(saved)` subject to
/// `Σ Mem(saved) ≤ budget_per_mb` — Equations (1)–(2) of the paper.
///
/// `budget_per_mb` is the *per-micro-batch* activation budget: the caller
/// (the memory model) has already divided the stage's free memory by its
/// live micro-batch count `p − s`, which is equivalent to the paper's
/// formulation with the `(p − s)` factor on the weights.
///
/// Pinned units are charged against the budget first; the DP runs only
/// over the free units, on a memory axis rescaled by the GCD of their
/// sizes (§5.3).
///
/// # Errors
///
/// Returns [`StrategyError::OutOfMemory`] when the pinned units alone
/// exceed the budget.
pub fn optimize_with(
    units: &[UnitProfile],
    budget_per_mb: Bytes,
    config: KnapsackConfig,
) -> Result<OptimizedStage, StrategyError> {
    optimize_traced(units, budget_per_mb, config, &Recorder::disabled())
}

/// [`optimize_with`], reporting DP effort to `rec`: per-call wall time
/// (`recompute.knapsack.us`), cells evaluated
/// (`recompute.knapsack.cells`), re-bucketing rounds beyond the GCD
/// scale (`recompute.knapsack.rebuckets`) and the final scale factor
/// (`recompute.knapsack.gcd_scale` gauge).
///
/// # Errors
///
/// Returns [`StrategyError::OutOfMemory`] when the pinned units alone
/// exceed the budget.
pub fn optimize_traced(
    units: &[UnitProfile],
    budget_per_mb: Bytes,
    config: KnapsackConfig,
    rec: &Recorder,
) -> Result<OptimizedStage, StrategyError> {
    let started = rec.is_enabled().then(Instant::now);
    rec.incr(keys::KNAPSACK_CALLS);
    let pinned_bytes: Bytes = units
        .iter()
        .filter(|u| u.is_pinned())
        .map(|u| u.mem_saved)
        .sum();
    let free_budget =
        budget_per_mb
            .checked_sub(pinned_bytes)
            .ok_or(StrategyError::OutOfMemory {
                required: pinned_bytes,
                budget: budget_per_mb,
            })?;

    let free: Vec<(usize, &UnitProfile)> = units
        .iter()
        .enumerate()
        .filter(|(_, u)| !u.is_pinned() && u.mem_saved > Bytes::ZERO)
        .collect();

    let mut saved: Vec<bool> = units.iter().map(UnitProfile::is_pinned).collect();
    // Zero-size free units are free to save; never recompute them.
    for (i, u) in units.iter().enumerate() {
        if !u.is_pinned() && u.mem_saved == Bytes::ZERO {
            saved[i] = true;
        }
    }

    if !free.is_empty() {
        let chosen = solve(&free, free_budget, config, rec);
        for idx in chosen {
            saved[idx] = true;
        }
    }

    let strategy = RecomputeStrategy::from_flags(units, saved);
    let cost = cost_of(units, &strategy);
    if let Some(t0) = started {
        rec.observe(keys::KNAPSACK_US, t0.elapsed().as_secs_f64() * 1e6);
    }
    // Rescaling audit: the DP must never over-commit the real budget
    // (weights round *up*, capacity rounds *down* — see `solve`).
    debug_assert!(
        cost.saved_bytes_per_mb.fits(budget_per_mb),
        "knapsack over-committed the unscaled budget"
    );
    Ok(OptimizedStage {
        slack_bytes: budget_per_mb.saturating_sub(cost.saved_bytes_per_mb),
        strategy,
        cost,
    })
}

/// 0/1 knapsack over the free units; returns the original indices of the
/// units to save.
///
/// # Rescaling audit (§5.3)
///
/// The DP runs on an integer memory axis rescaled by `scale` (the GCD of
/// the unit footprints, doubled until the axis fits the cell cap). For
/// the rescaled solution to be feasible in *unscaled* [`Bytes`], the
/// rounding directions must never under-report memory:
///
/// * unit footprints round **up** (`div_ceil`) — a saved set that fits
///   the scaled axis can only *over*-estimate its real bytes;
/// * the stage budget rounds **down** (integer division) — the scaled
///   capacity can only *under*-estimate the real budget.
///
/// Both biases point the same (conservative) way, so
/// `Σ scaled-feasible footprints ≤ scale · capacity ≤ budget` holds
/// exactly; `optimize_traced` debug-asserts it and the
/// `rescaled_solution_feasible_in_unscaled_bytes` proptest exercises it
/// with adversarial sizes and forced re-bucketing.
fn solve(
    free: &[(usize, &UnitProfile)],
    budget: Bytes,
    config: KnapsackConfig,
    rec: &Recorder,
) -> Vec<usize> {
    // Everything fits: skip the DP entirely.
    let total: Bytes = free.iter().map(|(_, u)| u.mem_saved).sum();
    if total.fits(budget) {
        return free.iter().map(|(i, _)| *i).collect();
    }

    // §5.3 GCD rescaling of the memory axis.
    let g = if config.disable_gcd {
        1
    } else {
        free.iter()
            .fold(0u64, |acc, (_, u)| gcd(acc, u.mem_saved.get()))
    };
    debug_assert!(g > 0);
    let mut scale = g;
    // Re-bucket further if the capacity axis would still be too long.
    // Budget rounds DOWN: never pretend to more memory than exists.
    let mut capacity = convert::u64_usize_saturating(budget.get() / scale);
    while capacity > config.max_capacity_cells {
        scale *= 2;
        capacity = convert::u64_usize_saturating(budget.get() / scale);
        rec.incr(keys::KNAPSACK_REBUCKETS);
    }
    // `scale == g` means both roundings below are exact and the DP is
    // optimal; the flag is recomputed by the bench ablations.
    let _exact = scale == g;
    rec.gauge_max(keys::KNAPSACK_GCD_SCALE, convert::u64_f64(scale));
    rec.add(
        keys::KNAPSACK_CELLS,
        convert::usize_u64((capacity + 1) * free.len()),
    );

    // Weights round UP: never pretend a unit is smaller than it is.
    // (With `scale == g` both roundings are exact and the DP is optimal.)
    let weights: Vec<usize> = free
        .iter()
        .map(|(_, u)| convert::u64_usize_saturating(u.mem_saved.get().div_ceil(scale)))
        .collect();

    // value[m]: best saved forward time using capacity m. `Cost` gives
    // the DP a NaN-free total order on its MicroSecs value axis.
    // take[i] is a bitset over capacities where item i is taken.
    let mut value = vec![Cost::ZERO; capacity + 1];
    let words = capacity / 64 + 1;
    let mut take: Vec<Vec<u64>> = Vec::with_capacity(free.len());
    for (item, (_, u)) in free.iter().enumerate() {
        let w = weights[item];
        let mut bits = vec![0u64; words];
        if w <= capacity {
            for m in (w..=capacity).rev() {
                let cand = value[m - w] + Cost::of(u.time_f);
                if cand > value[m] {
                    value[m] = cand;
                    bits[m / 64] |= 1 << (m % 64);
                }
            }
        }
        take.push(bits);
    }

    // Trace back the chosen set.
    let mut chosen = Vec::new();
    let mut m = capacity;
    for item in (0..free.len()).rev() {
        if take[item][m / 64] >> (m % 64) & 1 == 1 {
            chosen.push(free[item].0);
            m -= weights[item];
        }
    }
    chosen
}

/// Greatest common divisor (used by the §5.3 rescaling).
#[must_use]
pub fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapipe_hw::presets as hw;
    use adapipe_model::{presets, LayerRange, ParallelConfig, TrainConfig};
    use adapipe_profiler::Profiler;
    use adapipe_units::MicroSecs;
    use proptest::prelude::*;

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    fn units(layers: LayerRange) -> Result<Vec<UnitProfile>, Box<dyn std::error::Error>> {
        let model = presets::gpt2_small();
        let parallel = ParallelConfig::new(2, 4, 1)?;
        let train = TrainConfig::new(1, 1024, 16)?;
        let table = Profiler::new(hw::cluster_a()).profile(&model, &parallel, &train);
        Ok(table.units_in(layers))
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(gcd(1, 1_000_000), 1);
    }

    #[test]
    fn unbounded_budget_saves_everything() -> TestResult {
        let us = units(LayerRange::new(1, 6))?;
        let opt = optimize(&us, Bytes::new(u64::MAX))?;
        assert_eq!(opt.strategy.saved_count(), us.len());
        Ok(())
    }

    #[test]
    fn pinned_overflow_is_oom() -> TestResult {
        let us = units(LayerRange::new(1, 6))?;
        assert!(matches!(
            optimize(&us, Bytes::ZERO),
            Err(StrategyError::OutOfMemory { .. })
        ));
        Ok(())
    }

    #[test]
    fn tight_budget_degenerates_to_full_recompute() -> TestResult {
        let us = units(LayerRange::new(1, 6))?;
        let pinned: Bytes = us
            .iter()
            .filter(|u| u.is_pinned())
            .map(|u| u.mem_saved)
            .sum();
        let opt = optimize(&us, pinned)?;
        assert_eq!(
            opt.strategy.saved_count(),
            us.iter().filter(|u| u.is_pinned()).count()
        );
        assert_eq!(opt.slack_bytes, Bytes::ZERO);
        Ok(())
    }

    #[test]
    fn budget_monotonicity() -> TestResult {
        // More budget never yields worse (larger) backward time.
        let us = units(LayerRange::new(1, 8))?;
        let all: Bytes = us.iter().map(|u| u.mem_saved).sum();
        let mut last_b = MicroSecs::new(f64::INFINITY);
        for frac in [25u64, 50, 75, 100] {
            let opt = optimize(&us, all * frac / 100)?;
            assert!(
                opt.cost.time_b <= last_b + MicroSecs::new(1e-6),
                "frac {frac}"
            );
            last_b = opt.cost.time_b;
        }
        Ok(())
    }

    #[test]
    fn respects_budget_exactly() -> TestResult {
        let us = units(LayerRange::new(1, 8))?;
        let all: Bytes = us.iter().map(|u| u.mem_saved).sum();
        let budget = all * 60 / 100;
        let opt = optimize(&us, budget)?;
        assert!(opt.cost.saved_bytes_per_mb <= budget);
        assert_eq!(
            opt.slack_bytes,
            budget.saturating_sub(opt.cost.saved_bytes_per_mb)
        );
        Ok(())
    }

    /// Brute force over all subsets of free units (for small n).
    fn brute_force(us: &[UnitProfile], budget: Bytes) -> f64 {
        let pinned_bytes: Bytes = us
            .iter()
            .filter(|u| u.is_pinned())
            .map(|u| u.mem_saved)
            .sum();
        if !pinned_bytes.fits(budget) {
            return f64::NAN;
        }
        let free: Vec<&UnitProfile> = us.iter().filter(|u| !u.is_pinned()).collect();
        let mut best = 0.0f64;
        for mask in 0u32..(1 << free.len()) {
            let bytes: Bytes = free
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, u)| u.mem_saved)
                .sum();
            let val: f64 = free
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, u)| u.time_f.as_micros())
                .sum();
            if pinned_bytes.saturating_add(bytes).fits(budget) && val > best {
                best = val;
            }
        }
        best
    }

    #[test]
    fn matches_brute_force_on_one_block() -> TestResult {
        let us = units(LayerRange::new(1, 2))?; // 10 units, 8 free
        let all: Bytes = us.iter().map(|u| u.mem_saved).sum();
        for frac in [10u64, 30, 55, 80, 95] {
            let budget = all * frac / 100;
            let Ok(opt) = optimize(&us, budget) else {
                continue;
            };
            let saved_f: f64 = us
                .iter()
                .enumerate()
                .filter(|(i, u)| opt.strategy.is_saved(*i) && !u.is_pinned())
                .map(|(_, u)| u.time_f.as_micros())
                .sum();
            let best = brute_force(&us, budget);
            assert!(
                (saved_f - best).abs() <= 1e-12 + best * 1e-9,
                "frac {frac}: dp {saved_f} vs brute {best}"
            );
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn dp_matches_brute_force_random_units(
            sizes in proptest::collection::vec(1u64..64, 1..10),
            values in proptest::collection::vec(1u32..1000, 10),
            budget_scale in 0u64..100,
        ) {
            use adapipe_model::{ComputationUnit, UnitKind};
            let us: Vec<UnitProfile> = sizes
                .iter()
                .enumerate()
                .map(|(i, &s)| UnitProfile {
                    unit: ComputationUnit { kind: UnitKind::FfnAct, layer: i },
                    time_f: MicroSecs::new(f64::from(values[i % values.len()])),
                    time_b: MicroSecs::new(1.0),
                    mem_saved: Bytes::new(s * 7), // common factor exercises the GCD path
                })
                .collect();
            let all: Bytes = us.iter().map(|u| u.mem_saved).sum();
            let budget = all * budget_scale / 100;
            let opt = match optimize(&us, budget) {
                Ok(opt) => opt,
                Err(e) => return Err(TestCaseError::Fail(format!("optimize failed: {e}"))),
            };
            let saved_f: f64 = us
                .iter()
                .enumerate()
                .filter(|(i, _)| opt.strategy.is_saved(*i))
                .map(|(_, u)| u.time_f.as_micros())
                .sum();
            let best = brute_force(&us, budget);
            prop_assert!((saved_f - best).abs() <= 1e-9 * (1.0 + best));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Satellite audit: with adversarial (non-power-of-two) sizes and
        /// a tiny cell cap forcing several re-bucketing rounds, the
        /// rescaled DP's chosen set must still fit the *unscaled* budget
        /// in real Bytes — weights round up, capacity rounds down.
        #[test]
        fn rescaled_solution_feasible_in_unscaled_bytes(
            sizes in proptest::collection::vec(1u64..10_000, 2..24),
            budget_scale in 1u64..100,
            cells in 4usize..64,
        ) {
            use adapipe_model::{ComputationUnit, UnitKind};
            let us: Vec<UnitProfile> = sizes
                .iter()
                .enumerate()
                .map(|(i, &sz)| UnitProfile {
                    unit: ComputationUnit { kind: UnitKind::FfnAct, layer: i },
                    time_f: MicroSecs::new((i + 1) as f64),
                    time_b: MicroSecs::new(1.0),
                    // Odd multiplier keeps the GCD small so the cell cap
                    // genuinely forces re-bucketing.
                    mem_saved: Bytes::new(sz * 3 + 1),
                })
                .collect();
            let all: Bytes = us.iter().map(|u| u.mem_saved).sum();
            let budget = all * budget_scale / 100;
            let opt = match optimize_with(
                &us,
                budget,
                KnapsackConfig { max_capacity_cells: cells, disable_gcd: false },
            ) {
                Ok(opt) => opt,
                Err(e) => return Err(TestCaseError::Fail(format!("optimize failed: {e}"))),
            };
            // Feasibility in unscaled Bytes, recomputed independently of
            // the DP's own accounting.
            let chosen: Bytes = us
                .iter()
                .enumerate()
                .filter(|(i, _)| opt.strategy.is_saved(*i))
                .map(|(_, u)| u.mem_saved)
                .sum();
            prop_assert!(chosen.fits(budget), "chosen {chosen} vs budget {budget}");
            prop_assert_eq!(chosen, opt.cost.saved_bytes_per_mb);
        }
    }

    #[test]
    fn gcd_rescaling_is_exact() -> TestResult {
        // Disabling the GCD rescaling (ablation) must not change the
        // chosen value when the cell cap is not binding.
        let us = units(LayerRange::new(1, 4))?;
        let all: Bytes = us.iter().map(|u| u.mem_saved).sum();
        let budget = all * 60 / 100;
        let fast = optimize(&us, budget)?;
        let slow = optimize_with(
            &us,
            budget,
            KnapsackConfig {
                max_capacity_cells: 1 << 26,
                disable_gcd: true,
            },
        )?;
        assert!((fast.cost.time_b - slow.cost.time_b).abs() < MicroSecs::new(1e-3));
        Ok(())
    }

    #[test]
    fn traced_optimize_records_dp_effort() -> TestResult {
        let rec = Recorder::new();
        let us = units(LayerRange::new(1, 8))?;
        let all: Bytes = us.iter().map(|u| u.mem_saved).sum();
        let opt = optimize_traced(&us, all * 60 / 100, KnapsackConfig::default(), &rec)?;
        let baseline = optimize(&us, all * 60 / 100)?;
        assert_eq!(opt, baseline, "tracing must not change the result");
        let snap = rec.snapshot();
        assert_eq!(snap.counters["recompute.knapsack.calls"], 1);
        assert!(snap.counters["recompute.knapsack.cells"] > 0);
        assert!(snap.gauges["recompute.knapsack.gcd_scale"] >= 1.0);
        assert_eq!(snap.histograms["recompute.knapsack.us"].count, 1);
        Ok(())
    }

    #[test]
    fn rebucketing_stays_feasible() -> TestResult {
        // Force re-bucketing with a tiny cell cap; result must respect the
        // budget even if slightly suboptimal.
        let us = units(LayerRange::new(1, 20))?;
        let all: Bytes = us.iter().map(|u| u.mem_saved).sum();
        let budget = all * 70 / 100;
        let opt = optimize_with(
            &us,
            budget,
            KnapsackConfig {
                max_capacity_cells: 16,
                ..Default::default()
            },
        )?;
        assert!(opt.cost.saved_bytes_per_mb <= budget);
        // And still save strictly more than the pinned floor.
        assert!(opt.strategy.saved_count() > us.iter().filter(|u| u.is_pinned()).count());
        Ok(())
    }
}
