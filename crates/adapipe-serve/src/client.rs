//! A tiny std-only HTTP/1.1 client for driving the daemon — used by
//! `adapipe query`, the integration tests and the `serve_load` bench.
//!
//! One request per connection, matching the server's
//! `Connection: close` framing.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// UTF-8 body.
    pub body: String,
}

impl HttpResponse {
    /// The first header named `name` (ASCII case-insensitive).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the status is 2xx.
    #[must_use]
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

fn invalid(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Performs one request against `addr` (a `host:port` string) and
/// reads the full response.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(60)))?;

    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    // lint: allow(swallowed-result): a reset after full delivery is routine; parse decides
    let _n = stream.read_to_end(&mut raw);
    parse_response(&raw)
}

/// Splits a raw response into status, headers and body.
fn parse_response(raw: &[u8]) -> std::io::Result<HttpResponse> {
    let head_len = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| invalid("response has no header terminator".to_string()))?;
    let head = String::from_utf8_lossy(raw.get(..head_len).unwrap_or(&[])).into_owned();
    let mut lines = head.split("\r\n");
    let status_line = lines
        .next()
        .ok_or_else(|| invalid("empty response".to_string()))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| invalid(format!("bad status line: {status_line}")))?;
    let headers = lines
        .filter(|l| !l.is_empty())
        .filter_map(|l| {
            l.split_once(':')
                .map(|(n, v)| (n.trim().to_string(), v.trim().to_string()))
        })
        .collect();
    let body = String::from_utf8_lossy(raw.get(head_len + 4..).unwrap_or(&[])).into_owned();
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

/// `GET path` against `addr`.
pub fn get(addr: &str, path: &str) -> std::io::Result<HttpResponse> {
    request(addr, "GET", path, None)
}

/// `POST /v1/plan` with a request body.
pub fn post_plan(addr: &str, body: &str) -> std::io::Result<HttpResponse> {
    request(addr, "POST", "/v1/plan", Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_well_formed_response() {
        let raw =
            b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nX-Adapipe-Cache: hit\r\n\r\nbody";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.is_success());
        assert_eq!(resp.header("x-adapipe-cache"), Some("hit"));
        assert_eq!(resp.body, "body");
    }

    #[test]
    fn rejects_non_http_bytes() {
        assert!(parse_response(b"garbage").is_err());
        assert!(parse_response(b"HTTP/1.1 banana\r\n\r\n").is_err());
    }
}
