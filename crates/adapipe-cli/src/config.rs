//! Shared flag handling: models, clusters, methods, workloads.
//!
//! Name → domain-object resolution is delegated to
//! [`adapipe_serve::names`], the same tables the daemon uses, so a
//! config spelled on the command line and one sent over the wire
//! resolve (and digest) identically.

use crate::args::{Args, ArgsError};
use adapipe::Method;
use adapipe_hw::ClusterSpec;
use adapipe_model::{ModelSpec, ParallelConfig, TrainConfig};
use adapipe_serve::names;
use std::error::Error;
use std::fmt;

/// Error from resolving CLI flags into domain objects.
#[derive(Debug)]
pub enum ConfigError {
    /// Argument syntax error.
    Args(ArgsError),
    /// A flag had an unrecognized choice.
    BadChoice {
        /// The flag.
        flag: &'static str,
        /// What was given.
        value: String,
        /// Valid choices.
        choices: &'static str,
    },
    /// Domain validation failed (sizes, divisibility, ...).
    Domain(String),
    /// An output artifact could not be written (path + cause).
    /// Maps to exit code 1: the computation succeeded but the
    /// deliverable was not produced.
    Artifact {
        /// Destination path.
        path: String,
        /// Underlying IO error.
        message: String,
    },
    /// The command ran, but the artifact under test was rejected
    /// (failed verification, over-budget simulation, unrecovered chaos
    /// run). Maps to exit code 1, distinct from internal errors (2).
    Rejected(String),
}

impl ConfigError {
    /// The process exit code this error maps to: 1 for a rejected
    /// artifact or an unwritable one, 2 for everything else (bad
    /// flags, IO, domain errors).
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        match self {
            ConfigError::Rejected(_) | ConfigError::Artifact { .. } => 1,
            _ => 2,
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Args(e) => write!(f, "{e}"),
            ConfigError::BadChoice {
                flag,
                value,
                choices,
            } => {
                write!(f, "--{flag} {value}: expected one of {choices}")
            }
            ConfigError::Domain(msg) => write!(f, "{msg}"),
            ConfigError::Artifact { path, message } => {
                write!(f, "cannot write {path}: {message}")
            }
            ConfigError::Rejected(msg) => write!(f, "{msg}"),
        }
    }
}

impl Error for ConfigError {}

impl From<ArgsError> for ConfigError {
    fn from(e: ArgsError) -> Self {
        ConfigError::Args(e)
    }
}

/// Known model names, for help output.
pub const MODEL_CHOICES: &str = names::MODEL_CHOICES;

/// Resolves `--model`.
pub fn model(args: &mut Args) -> Result<ModelSpec, ConfigError> {
    let name = args.take("model").unwrap_or_else(|| "gpt3".to_string());
    names::model(&name).ok_or_else(|| ConfigError::BadChoice {
        flag: "model",
        value: name.clone(),
        choices: MODEL_CHOICES,
    })
}

/// Resolves `--cluster` (+ `--nodes`).
pub fn cluster(args: &mut Args) -> Result<ClusterSpec, ConfigError> {
    let name = args.take("cluster").unwrap_or_else(|| "a".to_string());
    let nodes: Option<usize> = args.take_parsed("nodes", "a positive integer")?;
    names::cluster(&name, nodes).ok_or_else(|| ConfigError::BadChoice {
        flag: "cluster",
        value: name.clone(),
        choices: names::CLUSTER_CHOICES,
    })
}

/// Known method names, for help output.
pub const METHOD_CHOICES: &str = names::METHOD_CHOICES;

/// Resolves `--method`.
pub fn method(args: &mut Args) -> Result<Method, ConfigError> {
    let name = args.take("method").unwrap_or_else(|| "adapipe".to_string());
    parse_method(&name)
}

/// Parses one method name.
pub fn parse_method(name: &str) -> Result<Method, ConfigError> {
    names::method(name).ok_or_else(|| ConfigError::BadChoice {
        flag: "method",
        value: name.to_string(),
        choices: METHOD_CHOICES,
    })
}

/// Resolves `--tensor/--pipeline/--data`.
pub fn parallel(args: &mut Args) -> Result<ParallelConfig, ConfigError> {
    let t = args.require_parsed("tensor", "a positive integer")?;
    let p = args.require_parsed("pipeline", "a positive integer")?;
    let d = args.take_parsed("data", "a positive integer")?.unwrap_or(1);
    ParallelConfig::new(t, p, d).map_err(|e| ConfigError::Domain(e.to_string()))
}

/// Resolves `--seq/--global-batch/--micro-batch`.
pub fn workload(args: &mut Args) -> Result<TrainConfig, ConfigError> {
    let seq = args.require_parsed("seq", "a positive integer")?;
    let gbs = args.require_parsed("global-batch", "a positive integer")?;
    let mb = args
        .take_parsed("micro-batch", "a positive integer")?
        .unwrap_or(1);
    TrainConfig::new(mb, seq, gbs).map_err(|e| ConfigError::Domain(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::parse(list.iter().map(ToString::to_string)).unwrap()
    }

    #[test]
    fn resolves_models_and_defaults() {
        let mut a = args(&["--model", "llama2"]);
        assert_eq!(model(&mut a).unwrap().name(), "llama2-70b");
        let mut a = args(&[]);
        assert_eq!(model(&mut a).unwrap().name(), "gpt3-175b");
    }

    #[test]
    fn rejects_unknown_choices() {
        let mut a = args(&["--model", "bloom"]);
        assert!(matches!(model(&mut a), Err(ConfigError::BadChoice { .. })));
        let mut a = args(&["--cluster", "z"]);
        assert!(matches!(
            cluster(&mut a),
            Err(ConfigError::BadChoice { .. })
        ));
        assert!(parse_method("fastest").is_err());
    }

    #[test]
    fn every_documented_method_parses() {
        for name in METHOD_CHOICES.split(", ") {
            let name = name.trim();
            assert!(parse_method(name).is_ok(), "{name}");
        }
    }

    #[test]
    fn parallel_and_workload_validate() {
        let mut a = args(&["--tensor", "8", "--pipeline", "8"]);
        let p = parallel(&mut a).unwrap();
        assert_eq!(p.devices(), 64);
        let mut a = args(&["--seq", "4096", "--global-batch", "64"]);
        let w = workload(&mut a).unwrap();
        assert_eq!(
            (w.micro_batch(), w.seq_len(), w.global_batch()),
            (1, 4096, 64)
        );
        let mut a = args(&["--seq", "0", "--global-batch", "64"]);
        assert!(matches!(workload(&mut a), Err(ConfigError::Domain(_))));
    }

    #[test]
    fn cluster_nodes_flag_scales() {
        let mut a = args(&["--cluster", "b", "--nodes", "256"]);
        assert_eq!(cluster(&mut a).unwrap().total_devices(), 2048);
    }

    #[test]
    fn artifact_errors_map_to_exit_code_one() {
        let e = ConfigError::Artifact {
            path: "results/x.json".to_string(),
            message: "permission denied".to_string(),
        };
        assert_eq!(e.exit_code(), 1);
        assert!(e.to_string().contains("results/x.json"));
    }
}
