//! Brute-force oracle for the §4.3 recomputation knapsack.
//!
//! Enumerates *every* saved/recomputed assignment of a stage's free
//! units and keeps the feasible one with the largest avoided
//! recomputation — the ground truth `optimize` must match. The
//! enumeration is 2^free, so callers bound the instance size with
//! [`MAX_ORACLE_FREE_UNITS`]; the point of this module is verifying the
//! DP on small instances, not replacing it (see `docs/verification.md`).

use crate::error::StrategyError;
use crate::knapsack::OptimizedStage;
use crate::strategy::{cost_of, RecomputeStrategy};
use adapipe_profiler::UnitProfile;
use adapipe_units::{Bytes, MicroSecs};

/// Largest free-unit count [`optimize_exhaustive`] will enumerate
/// (2^22 ≈ 4M subsets — a few hundred milliseconds, the ceiling of
/// "cheap enough for a verifier").
pub const MAX_ORACLE_FREE_UNITS: usize = 22;

/// Finds the *provably* optimal saved-unit set by enumerating all
/// subsets of free units under `budget_per_mb` — the oracle twin of
/// [`crate::optimize`]. Same inputs, same [`OptimizedStage`] output,
/// exponential cost.
///
/// Zero-footprint free units are always saved (saving them is free), and
/// pinned units are charged against the budget first, exactly as in the
/// knapsack — so any disagreement with [`crate::optimize`] is
/// attributable to the DP's search, not to different cost accounting.
///
/// # Errors
///
/// * [`StrategyError::OutOfMemory`] when the pinned units alone exceed
///   the budget.
/// * [`StrategyError::TooLargeForOracle`] when the stage has more than
///   [`MAX_ORACLE_FREE_UNITS`] sized free units.
pub fn optimize_exhaustive(
    units: &[UnitProfile],
    budget_per_mb: Bytes,
) -> Result<OptimizedStage, StrategyError> {
    let pinned_bytes: Bytes = units
        .iter()
        .filter(|u| u.is_pinned())
        .map(|u| u.mem_saved)
        .sum();
    let free_budget =
        budget_per_mb
            .checked_sub(pinned_bytes)
            .ok_or(StrategyError::OutOfMemory {
                required: pinned_bytes,
                budget: budget_per_mb,
            })?;

    let free: Vec<(usize, &UnitProfile)> = units
        .iter()
        .enumerate()
        .filter(|(_, u)| !u.is_pinned() && u.mem_saved > Bytes::ZERO)
        .collect();
    if free.len() > MAX_ORACLE_FREE_UNITS {
        return Err(StrategyError::TooLargeForOracle {
            free_units: free.len(),
            limit: MAX_ORACLE_FREE_UNITS,
        });
    }

    // Pinned and zero-footprint units are saved in every candidate.
    let base: Vec<bool> = units
        .iter()
        .map(|u| u.is_pinned() || u.mem_saved == Bytes::ZERO)
        .collect();

    let mut best_mask = 0u32;
    let mut best_value = MicroSecs::ZERO;
    let mut found = false;
    for mask in 0u32..(1u32 << free.len()) {
        let mut bytes = Bytes::ZERO;
        let mut value = MicroSecs::ZERO;
        for (bit, (_, u)) in free.iter().enumerate() {
            if mask >> bit & 1 == 1 {
                bytes = bytes.saturating_add(u.mem_saved);
                value += u.time_f;
            }
        }
        if bytes.fits(free_budget) && (!found || value > best_value) {
            found = true;
            best_mask = mask;
            best_value = value;
        }
    }
    // mask 0 (save nothing extra) is always feasible, so `found` holds.
    debug_assert!(found);

    let mut saved = base;
    for (bit, (idx, _)) in free.iter().enumerate() {
        if best_mask >> bit & 1 == 1 {
            saved[*idx] = true;
        }
    }
    let strategy = RecomputeStrategy::from_flags(units, saved);
    let cost = cost_of(units, &strategy);
    Ok(OptimizedStage {
        slack_bytes: budget_per_mb.saturating_sub(cost.saved_bytes_per_mb),
        strategy,
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize;
    use adapipe_hw::presets as hw;
    use adapipe_model::{presets, LayerRange, ParallelConfig, TrainConfig};
    use adapipe_profiler::Profiler;

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    fn units(layers: LayerRange) -> Result<Vec<UnitProfile>, Box<dyn std::error::Error>> {
        let model = presets::gpt2_small();
        let parallel = ParallelConfig::new(2, 4, 1)?;
        let train = TrainConfig::new(1, 1024, 16)?;
        let table = Profiler::new(hw::cluster_a()).profile(&model, &parallel, &train);
        Ok(table.units_in(layers))
    }

    #[test]
    fn oracle_matches_knapsack_on_profiled_stages() -> TestResult {
        let us = units(LayerRange::new(1, 4))?;
        let all: Bytes = us.iter().map(|u| u.mem_saved).sum();
        for frac in [15u64, 40, 60, 85, 100] {
            let budget = all * frac / 100;
            let (Ok(dp), Ok(oracle)) = (optimize(&us, budget), optimize_exhaustive(&us, budget))
            else {
                continue;
            };
            // The knapsack is exact when the GCD rescaling is lossless
            // (always true here): values must agree to float noise.
            assert!(
                (dp.cost.time_b - oracle.cost.time_b).abs() < MicroSecs::new(1e-6),
                "frac {frac}: dp {} vs oracle {}",
                dp.cost.time_b,
                oracle.cost.time_b
            );
            assert!(oracle.cost.saved_bytes_per_mb.fits(budget));
        }
        Ok(())
    }

    #[test]
    fn oracle_rejects_oversized_instances() -> TestResult {
        let us = units(LayerRange::new(0, 11))?;
        let free = us
            .iter()
            .filter(|u| !u.is_pinned() && u.mem_saved > Bytes::ZERO)
            .count();
        assert!(free > MAX_ORACLE_FREE_UNITS, "fixture too small: {free}");
        assert!(matches!(
            optimize_exhaustive(&us, Bytes::new(u64::MAX)),
            Err(StrategyError::TooLargeForOracle { .. })
        ));
        Ok(())
    }

    #[test]
    fn oracle_oom_matches_knapsack_oom() -> TestResult {
        let us = units(LayerRange::new(1, 2))?;
        assert!(matches!(
            optimize_exhaustive(&us, Bytes::ZERO),
            Err(StrategyError::OutOfMemory { .. })
        ));
        Ok(())
    }
}
