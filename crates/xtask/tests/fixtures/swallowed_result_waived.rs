pub fn persist(path: &str, text: &str) {
    // lint: allow(swallowed-result): best-effort cache persist, cold start is fine
    let _ = std::fs::write(path, text);
}
