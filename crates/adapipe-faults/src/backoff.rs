//! The bounded retry/backoff ladder for transient faults.

use adapipe_units::MicroSecs;

/// Bounded exponential backoff: attempt `i` (0-based) waits
/// `base × multiplier^i` before retrying, up to `max_retries` attempts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum retry attempts before giving up.
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base: MicroSecs,
    /// Backoff growth per attempt.
    pub multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base: MicroSecs::new(100.0),
            multiplier: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry `attempt` (0-based).
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> MicroSecs {
        self.base * self.multiplier.powi(attempt as i32)
    }

    /// Total backoff spent across `attempts` retries.
    #[must_use]
    pub fn total_backoff(&self, attempts: u32) -> MicroSecs {
        (0..attempts).fold(MicroSecs::ZERO, |acc, i| acc + self.backoff(i))
    }
}

/// How a retry ladder ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetryOutcome {
    /// An attempt succeeded.
    Recovered {
        /// Retries taken (1-based count of re-executions).
        attempts: u32,
        /// Backoff spent before the successful attempt.
        backoff: MicroSecs,
    },
    /// Every retry failed; the caller must escalate (replan).
    Exhausted {
        /// Retries taken (= the policy's `max_retries`).
        attempts: u32,
        /// Backoff spent in total.
        backoff: MicroSecs,
    },
}

impl RetryOutcome {
    /// Whether the ladder recovered.
    #[must_use]
    pub fn recovered(&self) -> bool {
        matches!(self, RetryOutcome::Recovered { .. })
    }
}

/// Runs the ladder: calls `attempt(i)` for `i` in `0..max_retries`
/// until one returns `true`. Deterministic — backoff is *accounted*,
/// never slept.
pub fn run_retries(policy: &RetryPolicy, mut attempt: impl FnMut(u32) -> bool) -> RetryOutcome {
    let mut backoff = MicroSecs::ZERO;
    for i in 0..policy.max_retries {
        backoff += policy.backoff(i);
        if attempt(i) {
            return RetryOutcome::Recovered {
                attempts: i + 1,
                backoff,
            };
        }
    }
    RetryOutcome::Exhausted {
        attempts: policy.max_retries,
        backoff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially() {
        let p = RetryPolicy::default();
        assert!((p.backoff(0).as_micros() - 100.0).abs() < 1e-9);
        assert!((p.backoff(1).as_micros() - 200.0).abs() < 1e-9);
        assert!((p.backoff(2).as_micros() - 400.0).abs() < 1e-9);
        assert!((p.total_backoff(3).as_micros() - 700.0).abs() < 1e-9);
    }

    #[test]
    fn first_success_recovers_with_one_attempt() {
        let out = run_retries(&RetryPolicy::default(), |_| true);
        assert_eq!(
            out,
            RetryOutcome::Recovered {
                attempts: 1,
                backoff: MicroSecs::new(100.0)
            }
        );
        assert!(out.recovered());
    }

    #[test]
    fn later_success_accumulates_backoff() {
        let out = run_retries(&RetryPolicy::default(), |i| i == 1);
        assert!(matches!(out, RetryOutcome::Recovered { attempts: 2, .. }));
        if let RetryOutcome::Recovered { backoff, .. } = out {
            assert!((backoff.as_micros() - 300.0).abs() < 1e-9);
        }
    }

    #[test]
    fn exhaustion_is_bounded_by_max_retries() {
        let mut calls = 0;
        let out = run_retries(&RetryPolicy::default(), |_| {
            calls += 1;
            false
        });
        assert_eq!(calls, 3);
        assert!(matches!(out, RetryOutcome::Exhausted { attempts: 3, .. }));
        assert!(!out.recovered());
    }
}
