//! Long-context motivation (§1 of the paper): as the sequence length
//! grows, no-recomputation plans run out of memory, full recomputation
//! wastes compute, and AdaPipe adapts per stage — finding plans between
//! the two extremes.
//!
//! ```bash
//! cargo run --release --example long_context
//! ```

use adapipe::{Method, PlanError, Planner};
use adapipe_hw::presets as hw;
use adapipe_model::{presets, ParallelConfig, TrainConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let planner = Planner::new(presets::gpt3_175b(), hw::cluster_a());
    let parallel = ParallelConfig::new(8, 8, 1)?;

    println!("GPT-3 on 64 A100s, (t, p, d) = (8, 8, 1); scaling context:\n");
    println!(
        "{:>7} {:>14} {:>14} {:>14}  AdaPipe saved units per stage",
        "seq", "DAPPLE-Full", "DAPPLE-Non", "AdaPipe"
    );
    for (seq, gbs) in [
        (2048usize, 256usize),
        (4096, 128),
        (8192, 64),
        (16384, 32),
        (32768, 16),
    ] {
        let train = TrainConfig::new(1, seq, gbs)?;
        let cell = |method| -> String {
            match planner.plan(method, parallel, train) {
                Ok(plan) => {
                    let eval = planner.evaluate(&plan);
                    if eval.fits {
                        format!("{:.1}s", eval.iteration_time)
                    } else {
                        "OOM".into()
                    }
                }
                Err(PlanError::OutOfMemory { .. }) => "OOM".into(),
                Err(e) => format!("{e}"),
            }
        };
        let saved = planner
            .plan(Method::AdaPipe, parallel, train)
            .map(|p| format!("{:?}", p.saved_units_per_stage()))
            .unwrap_or_else(|_| "-".into());
        println!(
            "{seq:>7} {:>14} {:>14} {:>14}  {saved}",
            cell(Method::DappleFull),
            cell(Method::DappleNone),
            cell(Method::AdaPipe),
        );
    }
    println!(
        "\nNote how the per-stage saved-unit counts sink toward the full-recompute \
         floor as the context grows — earlier stages first, exactly the imbalance \
         Figure 1 of the paper motivates."
    );
    Ok(())
}
