//! `bench-diff` — machine comparison of two `results/` directories of
//! `BENCH_*.json` artifacts, failing on significant regressions.
//!
//! Both artifact schemas in the workspace are understood:
//!
//! * the Criterion-shim summary (`{"results": [{"id", "mean_ns", ...}]}`),
//!   where every `mean_ns` is lower-is-better;
//! * the `adapipe-obs/v1` metrics report (`{"counters", "gauges", ...}`),
//!   where direction is inferred from the key name — throughput-shaped
//!   keys (`rps`, `throughput`, `hit_rate`, `hits`) are
//!   higher-is-better, everything else (times, cell counts, DP effort)
//!   is lower-is-better.
//!
//! `bench.wall_s` is skipped: end-to-end wall clock of the regenerator
//! binary is machine load in a trench coat, not a tracked metric.
//! `exec.pool.*` gauges are skipped for the same reason — worker count,
//! batch/steal totals and queue depth echo the machine and
//! `ADAPIPE_THREADS`, not plan quality, so a 1-thread baseline would
//! spuriously "regress" against an N-thread run. Metrics with a
//! non-positive baseline are skipped too — a relative change from zero
//! is undefined.

use adapipe_obs::json::{self, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Relative change above which a metric counts as regressed (20%).
pub const REGRESSION_THRESHOLD: f64 = 0.20;

/// Which way "better" points for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    HigherIsBetter,
    LowerIsBetter,
}

/// One metric present in both the baseline and the new run.
#[derive(Debug)]
pub struct MetricDiff {
    /// Artifact file name (`BENCH_x.json`).
    pub file: String,
    /// Metric id within the artifact.
    pub id: String,
    pub baseline: f64,
    pub new: f64,
    pub direction: Direction,
    /// Relative change in the *worse* direction: positive values mean
    /// the new run is worse, so `0.25` is a 25% regression.
    pub regression: f64,
}

impl MetricDiff {
    #[must_use]
    pub fn is_regression(&self, threshold: f64) -> bool {
        self.regression > threshold
    }
}

impl fmt::Display for MetricDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} {:.6} -> {:.6} ({}{:.1}%)",
            self.file,
            self.id,
            self.baseline,
            self.new,
            if self.regression > 0.0 {
                "worse "
            } else {
                "better "
            },
            self.regression.abs() * 100.0
        )
    }
}

/// The full comparison of two artifact directories.
#[derive(Debug, Default)]
pub struct DiffReport {
    pub diffs: Vec<MetricDiff>,
    /// Baseline artifacts with no counterpart in the new directory.
    pub missing_in_new: Vec<String>,
    /// New artifacts with no baseline (informational).
    pub only_in_new: Vec<String>,
}

impl DiffReport {
    /// The diffs regressed beyond `threshold`, worst first.
    #[must_use]
    pub fn regressions(&self, threshold: f64) -> Vec<&MetricDiff> {
        let mut out: Vec<&MetricDiff> = self
            .diffs
            .iter()
            .filter(|d| d.is_regression(threshold))
            .collect();
        out.sort_by(|a, b| b.regression.total_cmp(&a.regression));
        out
    }
}

/// Compares every `BENCH_*.json` common to both directories.
///
/// # Errors
/// Returns a message if a directory is unreadable or an artifact is not
/// valid JSON.
pub fn diff_dirs(baseline: &Path, new: &Path) -> Result<DiffReport, String> {
    let base_files = bench_files(baseline)?;
    let new_files = bench_files(new)?;
    let mut report = DiffReport::default();
    for (name, base_path) in &base_files {
        let Some(new_path) = new_files.get(name) else {
            report.missing_in_new.push(name.clone());
            continue;
        };
        let base_metrics = read_metrics(base_path)?;
        let new_metrics = read_metrics(new_path)?;
        for (id, (base_value, direction)) in &base_metrics {
            let Some((new_value, _)) = new_metrics.get(id) else {
                continue;
            };
            if *base_value <= 0.0 {
                continue;
            }
            let regression = match direction {
                Direction::LowerIsBetter => (new_value - base_value) / base_value,
                Direction::HigherIsBetter => (base_value - new_value) / base_value,
            };
            report.diffs.push(MetricDiff {
                file: name.clone(),
                id: id.clone(),
                baseline: *base_value,
                new: *new_value,
                direction: *direction,
                regression,
            });
        }
    }
    for name in new_files.keys() {
        if !base_files.contains_key(name) {
            report.only_in_new.push(name.clone());
        }
    }
    Ok(report)
}

/// The `BENCH_*.json` files of `dir`, keyed by file name.
fn bench_files(dir: &Path) -> Result<BTreeMap<String, PathBuf>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut out = BTreeMap::new();
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            out.insert(name, path);
        }
    }
    Ok(out)
}

fn read_metrics(path: &Path) -> Result<BTreeMap<String, (f64, Direction)>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(extract_metrics(&doc))
}

/// Flattens one artifact into `(id, value, direction)` entries.
fn extract_metrics(doc: &Value) -> BTreeMap<String, (f64, Direction)> {
    let mut out = BTreeMap::new();
    // Criterion-shim schema: results[].mean_ns, lower-better.
    if let Some(results) = doc.get("results").and_then(Value::as_array) {
        for r in results {
            let id = r.get("id").and_then(Value::as_str);
            let mean = r.get("mean_ns").and_then(Value::as_f64);
            if let (Some(id), Some(mean)) = (id, mean) {
                out.insert(format!("{id}.mean_ns"), (mean, Direction::LowerIsBetter));
            }
        }
    }
    // adapipe-obs/v1 schema: counters + gauges by key name.
    for family in ["counters", "gauges"] {
        if let Some(Value::Object(map)) = doc.get(family) {
            for (key, value) in map {
                if key == "bench.wall_s" || key.starts_with("exec.pool.") {
                    continue;
                }
                if let Some(n) = value.as_f64() {
                    out.insert(key.clone(), (n, direction_of(key)));
                }
            }
        }
    }
    out
}

/// Direction heuristic: throughput-shaped keys go up, cost-shaped keys
/// go down.
fn direction_of(key: &str) -> Direction {
    const HIGHER_IS_BETTER: &[&str] = &["rps", "throughput", "hit_rate", "hits"];
    if HIGHER_IS_BETTER.iter().any(|h| key.contains(h)) {
        Direction::HigherIsBetter
    } else {
        Direction::LowerIsBetter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(text: &str) -> Value {
        json::parse(text).expect("test JSON parses")
    }

    #[test]
    fn criterion_schema_extracts_mean_ns_lower_better() {
        let m = extract_metrics(&doc(r#"{"bench": "x", "unit": "ns", "results": [
                {"id": "g/a", "samples": 10, "mean_ns": 100, "min_ns": 90, "max_ns": 110}
            ]}"#));
        assert_eq!(
            m.get("g/a.mean_ns"),
            Some(&(100.0, Direction::LowerIsBetter))
        );
    }

    #[test]
    fn obs_schema_extracts_counters_and_gauges_with_direction() {
        let m = extract_metrics(&doc(r#"{"schema": "adapipe-obs/v1", "meta": {},
                "counters": {"recompute.knapsack.cells": 5000},
                "gauges": {"serve.rps": 800.0, "bench.wall_s": 1.5,
                           "exec.pool.workers": 8.0, "exec.pool.steals": 120.0},
                "histograms": {}, "spans": {}}"#));
        assert_eq!(
            m.get("recompute.knapsack.cells"),
            Some(&(5000.0, Direction::LowerIsBetter))
        );
        assert_eq!(
            m.get("serve.rps"),
            Some(&(800.0, Direction::HigherIsBetter))
        );
        assert!(!m.contains_key("bench.wall_s"), "wall clock is not tracked");
        assert!(
            !m.contains_key("exec.pool.workers") && !m.contains_key("exec.pool.steals"),
            "pool-shape gauges echo the machine, not plan quality"
        );
    }

    #[test]
    fn regression_is_signed_toward_worse() {
        let worse_latency = MetricDiff {
            file: "BENCH_a.json".into(),
            id: "x.mean_ns".into(),
            baseline: 100.0,
            new: 130.0,
            direction: Direction::LowerIsBetter,
            regression: 0.30,
        };
        assert!(worse_latency.is_regression(REGRESSION_THRESHOLD));
        let better_latency = MetricDiff {
            regression: -0.30,
            ..worse_latency
        };
        assert!(!better_latency.is_regression(REGRESSION_THRESHOLD));
    }

    #[test]
    fn regressions_sorted_worst_first() {
        let mk = |id: &str, reg: f64| MetricDiff {
            file: "BENCH_a.json".into(),
            id: id.into(),
            baseline: 1.0,
            new: 1.0 + reg,
            direction: Direction::LowerIsBetter,
            regression: reg,
        };
        let report = DiffReport {
            diffs: vec![mk("small", 0.25), mk("big", 0.9), mk("fine", 0.05)],
            ..DiffReport::default()
        };
        let regs = report.regressions(REGRESSION_THRESHOLD);
        let ids: Vec<&str> = regs.iter().map(|d| d.id.as_str()).collect();
        assert_eq!(ids, ["big", "small"]);
    }
}
