use crate::device::DeviceSpec;
use crate::link::LinkSpec;
use adapipe_units::{Bytes, MicroSecs};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A homogeneous cluster: one device type, `devices_per_node` accelerators
/// per node joined by `intra_link`, and nodes joined by `inter_link`.
///
/// Tensor-parallel groups are assumed to live inside one node (the paper
/// caps `t` at 8 for the same reason); pipeline-stage boundaries are
/// assumed to cross nodes, which is the placement the paper motivates in
/// §1 ("pipeline parallelism is often used at the inter-node level").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    name: String,
    device: DeviceSpec,
    devices_per_node: usize,
    nodes: usize,
    intra_link: LinkSpec,
    inter_link: LinkSpec,
}

impl ClusterSpec {
    /// Creates a cluster description.
    ///
    /// # Panics
    ///
    /// Panics if `devices_per_node` or `nodes` is zero.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        device: DeviceSpec,
        devices_per_node: usize,
        nodes: usize,
        intra_link: LinkSpec,
        inter_link: LinkSpec,
    ) -> Self {
        assert!(devices_per_node > 0, "devices_per_node must be positive");
        assert!(nodes > 0, "nodes must be positive");
        ClusterSpec {
            name: name.into(),
            device,
            devices_per_node,
            nodes,
            intra_link,
            inter_link,
        }
    }

    /// Cluster name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The accelerator model installed in every node.
    #[must_use]
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Accelerators per node.
    #[must_use]
    pub fn devices_per_node(&self) -> usize {
        self.devices_per_node
    }

    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Total accelerators in the cluster.
    #[must_use]
    pub fn total_devices(&self) -> usize {
        self.devices_per_node * self.nodes
    }

    /// Intra-node accelerator link (NVLink / on-board mesh).
    #[must_use]
    pub fn intra_link(&self) -> LinkSpec {
        self.intra_link
    }

    /// Inter-node link (InfiniBand / Ethernet NIC).
    #[must_use]
    pub fn inter_link(&self) -> LinkSpec {
        self.inter_link
    }

    /// Time of a ring all-reduce of `bytes` across a tensor-parallel group
    /// of `group` devices inside a node: `2 (g-1)/g · bytes` over the
    /// intra-node link, plus per-step latencies.
    ///
    /// Returns zero when `group <= 1`.
    #[must_use]
    pub fn allreduce_time(&self, bytes: Bytes, group: usize) -> MicroSecs {
        if group <= 1 {
            return MicroSecs::ZERO;
        }
        let g = group as f64;
        let steps = 2.0 * (g - 1.0);
        let volume_time = (2.0 * (g - 1.0) / g) * (bytes / self.intra_link.bandwidth());
        steps * self.intra_link.latency() + volume_time
    }

    /// Time of a reduce-scatter *or* all-gather of `bytes` across `group`
    /// devices (each is half an all-reduce). Sequence parallelism replaces
    /// each all-reduce with one reduce-scatter plus one all-gather of the
    /// same total volume, so modelling both halves at `allreduce/2` keeps
    /// the aggregate identical.
    #[must_use]
    pub fn half_collective_time(&self, bytes: Bytes, group: usize) -> MicroSecs {
        self.allreduce_time(bytes, group) / 2.0
    }

    /// Time to send `bytes` from one pipeline stage to the next
    /// (inter-node point-to-point).
    #[must_use]
    pub fn p2p_time(&self, bytes: Bytes) -> MicroSecs {
        self.inter_link.transfer_time(bytes)
    }

    /// Time of the end-of-iteration gradient all-reduce across a
    /// data-parallel group of `group` replicas. Data-parallel replicas
    /// sit on different nodes, so this rides the inter-node link:
    /// `2 (g−1)/g · bytes` plus per-step latencies. Zero for `group <= 1`.
    #[must_use]
    pub fn grad_allreduce_time(&self, bytes: Bytes, group: usize) -> MicroSecs {
        if group <= 1 {
            return MicroSecs::ZERO;
        }
        let g = group as f64;
        let steps = 2.0 * (g - 1.0);
        let volume_time = (2.0 * (g - 1.0) / g) * (bytes / self.inter_link.bandwidth());
        steps * self.inter_link.latency() + volume_time
    }
}

impl fmt::Display for ClusterSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} nodes x {} {}",
            self.name,
            self.nodes,
            self.devices_per_node,
            self.device.name()
        )
    }
}

#[cfg(test)]
mod tests {

    use super::*;
    use crate::presets;

    #[test]
    fn allreduce_grows_with_group_size() {
        let c = presets::cluster_a();
        let t2 = c.allreduce_time(Bytes::new(1 << 24), 2);
        let t8 = c.allreduce_time(Bytes::new(1 << 24), 8);
        assert!(t8 > t2);
        assert_eq!(c.allreduce_time(Bytes::new(1 << 24), 1), MicroSecs::ZERO);
    }

    #[test]
    fn half_collective_is_half() {
        let c = presets::cluster_a();
        let full = c.allreduce_time(Bytes::new(1 << 20), 4);
        let half = c.half_collective_time(Bytes::new(1 << 20), 4);
        assert!((full - 2.0 * half).abs() < MicroSecs::new(1e-9));
    }

    #[test]
    fn p2p_uses_inter_node_link() {
        let c = presets::cluster_b_small();
        let t = c.p2p_time(Bytes::new(1 << 20));
        assert!(
            (t - c.inter_link().transfer_time(Bytes::new(1 << 20))).abs() < MicroSecs::new(1e-9)
        );
    }

    #[test]
    fn totals() {
        let c = presets::cluster_a();
        assert_eq!(c.total_devices(), 64);
    }

    #[test]
    fn grad_allreduce_scales_with_group_and_rides_the_slow_link() {
        let c = presets::cluster_a();
        assert_eq!(
            c.grad_allreduce_time(Bytes::new(1 << 30), 1),
            MicroSecs::ZERO
        );
        let t2 = c.grad_allreduce_time(Bytes::new(1 << 30), 2);
        let t8 = c.grad_allreduce_time(Bytes::new(1 << 30), 8);
        assert!(t8 > t2);
        // Inter-node bandwidth, not NVLink: slower than the TP collective
        // of the same volume.
        assert!(t2 > c.allreduce_time(Bytes::new(1 << 30), 2) / 4.0);
    }
}
