//! Shared driver for the cluster-A end-to-end figures (5 and 6).

use crate::{cluster_a_workloads, print_table};
use adapipe::{Method, Planner};
use adapipe_hw::presets as hw;
use adapipe_model::ModelSpec;
use adapipe_units::MicroSecs;

/// Runs the Figure 5/6 protocol: for every method and sequence length,
/// iterate all 3D parallel strategies on `devices` cluster-A GPUs and
/// report the best memory-feasible iteration time, plus AdaPipe's and
/// Even Partitioning's speedups over the best DAPPLE variant.
pub fn run(model: ModelSpec, devices: usize, figure: &str) {
    let nodes = devices / 8;
    let planner = Planner::new(model.clone(), hw::cluster_a_with_nodes(nodes));
    let methods = Method::figure5();

    let mut rows = Vec::new();
    for train in cluster_a_workloads() {
        let mut best: Vec<Option<MicroSecs>> = Vec::new();
        for method in methods {
            best.push(crate::best_time_over_strategies(
                &planner, method, devices, train,
            ));
        }
        let dapple_best = [best[0], best[1]]
            .iter()
            .flatten()
            .fold(MicroSecs::new(f64::INFINITY), |a, &b| a.min(b));
        for (method, time) in methods.iter().zip(&best) {
            let (cell, speedup) = match time {
                Some(t) => (
                    format!("{:.3}", t.as_secs()),
                    if dapple_best.is_finite() {
                        format!("{:.2}x", dapple_best / *t)
                    } else {
                        "-".into()
                    },
                ),
                None => ("OOM".into(), "-".into()),
            };
            rows.push(vec![
                train.seq_len().to_string(),
                method.to_string(),
                cell,
                speedup,
            ]);
        }
    }
    print_table(
        &format!(
            "{figure}: {} end-to-end on cluster A ({devices} GPUs)",
            model.name()
        ),
        &["seq", "method", "iter time (s)", "vs best DAPPLE"],
        &rows,
    );
    println!(
        "\nExpected shape: -Non baselines OOM as the sequence grows; Chimera trails \
         DAPPLE when n >> p; AdaPipe >= Even Partitioning >= best DAPPLE, with the \
         gap widening at long sequences (paper: up to 1.32x GPT-3, 1.23x Llama 2)."
    );
}
