//! Extension: cost of the optimality-verification machinery.
//!
//! `adapipe verify --optimality` buys its guarantees with brute force:
//! exhaustive partition enumeration on small instances and 2^free
//! subset enumeration inside each window. This bench measures what that
//! costs next to the production DP stack and how tight the planner
//! actually is — the observed DP-over-oracle gap across the pinned
//! grids and a seeded random sweep, plus the certificate gap on a real
//! GPT-2 plan. CI's `optimality` job regenerates `BENCH_oracle.json`
//! from this binary and `xtask bench-diff` tracks drift.

use adapipe::oracle::{
    check_grid_agreement, check_model_grid, pinned_grid, search_counterexamples, OracleBounds,
};
use adapipe::{Method, OptimalityOptions, Planner};
use adapipe_bench::{emit_bench_json, print_table};
use adapipe_hw::presets as hw;
use adapipe_model::{presets, ParallelConfig, TrainConfig};
use adapipe_obs::{keys, Recorder};

fn main() {
    let rec = Recorder::new();
    let t0 = std::time::Instant::now();
    let mut rows = Vec::new();

    // Pinned synthetic grid: per-instance DP and oracle wall-clock.
    let grid = pinned_grid();
    let start = std::time::Instant::now();
    for inst in &grid {
        let _ = inst.dp_time();
    }
    let dp_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = std::time::Instant::now();
    for inst in &grid {
        let _ = inst.oracle_time();
    }
    let oracle_ms = start.elapsed().as_secs_f64() * 1e3;
    rec.gauge("bench.oracle.grid.dp_ms", dp_ms);
    rec.gauge("bench.oracle.grid.oracle_ms", oracle_ms);
    rows.push(vec![
        format!("synthetic grid ({} instances)", grid.len()),
        format!("{dp_ms:.2}"),
        format!("{oracle_ms:.2}"),
    ]);

    // Agreement sweeps populate oracle.instances / oracle.gap.pct.
    let diags = check_grid_agreement(&rec);
    assert!(diags.is_empty(), "pinned grid disagreement: {diags:?}");
    let start = std::time::Instant::now();
    let diags = check_model_grid(&rec);
    assert!(diags.is_empty(), "model grid disagreement: {diags:?}");
    let model_ms = start.elapsed().as_secs_f64() * 1e3;
    rec.gauge("bench.oracle.model_grid.ms", model_ms);
    rows.push(vec![
        "tiny-gpt joint oracle grid".to_string(),
        "-".to_string(),
        format!("{model_ms:.2}"),
    ]);

    // Seeded random sweep: the same search CI runs at ≥1000 instances.
    const SWEEP: usize = 256;
    let start = std::time::Instant::now();
    let hits = search_counterexamples(2024, SWEEP, &OracleBounds::default(), &rec);
    let sweep_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(hits.is_empty(), "counterexamples found: {hits:?}");
    rec.gauge("bench.oracle.sweep.ms", sweep_ms);
    rec.gauge("bench.oracle.sweep.instances", SWEEP as f64);
    rows.push(vec![
        format!("random sweep ({SWEEP} instances)"),
        "-".to_string(),
        format!("{sweep_ms:.2}"),
    ]);

    // Certificate on a real plan: gap and derivation cost.
    let planner = Planner::new(presets::gpt2_small(), hw::cluster_a()).with_recorder(rec.clone());
    let parallel = ParallelConfig::new(2, 4, 1).expect("valid");
    let train = TrainConfig::new(1, 1024, 32).expect("valid");
    let plan = planner
        .plan(Method::AdaPipe, parallel, train)
        .expect("feasible");
    let start = std::time::Instant::now();
    let report = planner.verify_optimality(
        &plan,
        &OptimalityOptions {
            search_iterations: 64,
            ..OptimalityOptions::default()
        },
    );
    let verify_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(!report.has_errors(), "{report}");
    let cert = planner.certificate(&plan).expect("certifiable");
    rec.gauge("bench.oracle.verify_optimality.ms", verify_ms);
    rec.gauge("bench.oracle.certificate.gap_pct", cert.gap() * 100.0);
    rows.push(vec![
        "verify --optimality (gpt2, AdaPipe)".to_string(),
        "-".to_string(),
        format!("{verify_ms:.2}"),
    ]);

    print_table(
        "Optimality-verification cost (DP vs brute-force oracles)",
        &["workload", "dp ms", "oracle ms"],
        &rows,
    );
    let snap = rec.snapshot();
    println!(
        "\n{} instances checked, {} disagreements; GPT-2 certificate gap {:.2}% \
         (bound {:.3}ms ≤ cost {:.3}ms)",
        snap.counters
            .get(keys::ORACLE_INSTANCES)
            .copied()
            .unwrap_or(0),
        snap.counters
            .get(keys::ORACLE_DISAGREEMENTS)
            .copied()
            .unwrap_or(0),
        cert.gap() * 100.0,
        cert.lower_bound.as_millis(),
        cert.plan_cost.as_millis(),
    );
    println!(
        "Expected shape: zero disagreements everywhere; the exhaustive oracle is \
         orders of magnitude slower than the DP, which is why it only guards small \
         instances while the certificate covers real ones."
    );

    rec.gauge(keys::BENCH_WALL_S, t0.elapsed().as_secs_f64());
    emit_bench_json(
        "oracle",
        &rec,
        &[
            ("extension", "optimality-verification"),
            ("sweep_seed", "2024"),
        ],
    );
}
