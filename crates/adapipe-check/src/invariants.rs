//! The plan-level invariant catalog: partitioning (§5), per-stage
//! recomputation cost and memory (Eq. (1)-(2), §4.2-4.3) and the
//! analytic 1F1B iteration breakdown (Eq. (3), §5.1).

use crate::diag::{CheckCode, Diagnostic, Severity};
use adapipe_memory::StageMemory;
use adapipe_model::LayerRange;
use adapipe_partition::{f1b_iteration_time, F1bBreakdown, StageTimes};
use adapipe_profiler::UnitProfile;
use adapipe_recompute::{strategy, RecomputeStrategy, StageCost};
use adapipe_units::Bytes;

/// Relative comparison tolerance for `f64` quantities that round-trip
/// through text serialization: `17` significant digits survive the trip,
/// so anything beyond float noise is a real inconsistency.
pub const DEFAULT_TOLERANCE: f64 = 1e-9;

/// Whether `a` and `b` agree within relative tolerance `tol`
/// (absolute near zero).
#[must_use]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= tol * scale
}

/// Checks that `ranges` is a contiguous, monotone partition of layers
/// `0..num_layers` (§5: "partitioning the model into contiguous stages").
#[must_use]
pub fn check_partition(ranges: &[LayerRange], num_layers: usize) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Some(first) = ranges.first() else {
        out.push(Diagnostic::error(
            CheckCode::StageCount,
            None,
            "plan has no stages",
        ));
        return out;
    };
    if first.first != 0 {
        out.push(Diagnostic::error(
            CheckCode::PartitionCoverage,
            Some(0),
            format!("partition starts at layer {}, expected 0", first.first),
        ));
    }
    for (s, r) in ranges.iter().enumerate() {
        if r.last < r.first {
            out.push(Diagnostic::error(
                CheckCode::PartitionGap,
                Some(s),
                format!("range {r} is inverted"),
            ));
        }
        if r.last >= num_layers {
            out.push(Diagnostic::error(
                CheckCode::PartitionCoverage,
                Some(s),
                format!("range {r} exceeds the model's {num_layers} layers"),
            ));
        }
    }
    for (s, pair) in ranges.windows(2).enumerate() {
        let &[prev, next] = pair else { continue };
        if next.first != prev.last + 1 {
            let kind = if next.first > prev.last + 1 {
                "gap"
            } else {
                "overlap"
            };
            out.push(Diagnostic::error(
                CheckCode::PartitionGap,
                Some(s + 1),
                format!(
                    "{kind} between stage {s} ({prev}) and stage {} ({next})",
                    s + 1
                ),
            ));
        }
    }
    if let Some(last) = ranges.last() {
        if last.last + 1 != num_layers {
            out.push(Diagnostic::error(
                CheckCode::PartitionCoverage,
                Some(ranges.len() - 1),
                format!(
                    "partition ends at layer {}, expected {} (model has {num_layers} layers)",
                    last.last,
                    num_layers - 1
                ),
            ));
        }
    }
    out
}

/// Checks a stage's strategy against its unit profiles: one flag per
/// unit, pinned units (layer outputs) saved (§4.2).
#[must_use]
pub fn check_strategy(
    stage: usize,
    units: &[UnitProfile],
    strat: &RecomputeStrategy,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if strat.len() != units.len() {
        out.push(Diagnostic::error(
            CheckCode::StrategyArity,
            Some(stage),
            format!(
                "strategy covers {} units but the stage has {}",
                strat.len(),
                units.len()
            ),
        ));
        return out;
    }
    for (i, u) in units.iter().enumerate() {
        if u.is_pinned() && !strat.is_saved(i) {
            out.push(Diagnostic::error(
                CheckCode::PinnedUnitRecomputed,
                Some(stage),
                format!("pinned unit {} is marked recomputed", u.unit),
            ));
        }
    }
    out
}

/// Checks a stage's stored [`StageCost`] against the cost recomputed from
/// the unit profiles under the same strategy (the Eq. (1)-(2) leaf cost).
/// A mismatch means the plan carries stale numbers — e.g. an isomorphism
/// cache entry that no longer matches its window.
///
/// The strategy length must match `units` (run [`check_strategy`] first).
#[must_use]
pub fn check_stage_cost(
    stage: usize,
    units: &[UnitProfile],
    strat: &RecomputeStrategy,
    stored: &StageCost,
    tol: f64,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let fresh = strategy::cost_of(units, strat);
    if !approx_eq(fresh.time_f.as_micros(), stored.time_f.as_micros(), tol) {
        out.push(Diagnostic::error(
            CheckCode::CostDrift,
            Some(stage),
            format!(
                "forward time {} disagrees with recomputed {} (stale cost)",
                stored.time_f, fresh.time_f
            ),
        ));
    }
    if !approx_eq(fresh.time_b.as_micros(), stored.time_b.as_micros(), tol) {
        out.push(Diagnostic::error(
            CheckCode::CostDrift,
            Some(stage),
            format!(
                "backward time {} disagrees with recomputed {} (stale cost)",
                stored.time_b, fresh.time_b
            ),
        ));
    }
    if fresh.saved_bytes_per_mb != stored.saved_bytes_per_mb {
        out.push(Diagnostic::error(
            CheckCode::CostDrift,
            Some(stage),
            format!(
                "saved bytes {} disagree with the strategy's {}",
                stored.saved_bytes_per_mb, fresh.saved_bytes_per_mb
            ),
        ));
    }
    out
}

/// Checks a stage's stored memory breakdown against the expected one
/// (static from the §4.2 model, buffer from the strategy, intermediates
/// from the schedule's live-micro-batch law).
#[must_use]
pub fn check_memory_accounting(
    stage: usize,
    expected: &StageMemory,
    stored: &StageMemory,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let fields = [
        ("static", expected.static_bytes, stored.static_bytes),
        ("buffer", expected.buffer_bytes, stored.buffer_bytes),
        (
            "intermediate",
            expected.intermediate_bytes,
            stored.intermediate_bytes,
        ),
    ];
    for (name, want, got) in fields {
        if want != got {
            out.push(Diagnostic::error(
                CheckCode::MemoryAccounting,
                Some(stage),
                format!("{name} bytes {got} disagree with the memory model's {want}"),
            ));
        }
    }
    out
}

/// Checks a stage's total memory against device capacity (Eq. (2): every
/// stage must fit). `severity` lets callers keep baselines reportable —
/// the paper shows OOM baselines as bars — while adaptive plans, which
/// searched under the constraint, must treat overflow as an error.
#[must_use]
pub fn check_capacity(
    stage: usize,
    memory: &StageMemory,
    capacity: Bytes,
    severity: Severity,
) -> Vec<Diagnostic> {
    if memory.fits(capacity) {
        return Vec::new();
    }
    let diag = format!(
        "stage needs {:.2} GB but the device caps at {:.2} GB ({memory})",
        memory.total().as_f64() / 1e9,
        capacity.as_f64() / 1e9
    );
    vec![match severity {
        Severity::Error => Diagnostic::error(CheckCode::BudgetOverflow, Some(stage), diag),
        Severity::Warning => Diagnostic::warning(CheckCode::BudgetOverflow, Some(stage), diag),
    }]
}

/// Checks a stored Eq. (3) breakdown against the recurrences re-evaluated
/// from the per-stage times: `T = W₀ + E₀ + (n − p)·M₀`.
#[must_use]
pub fn check_breakdown(
    times: &[StageTimes],
    n: usize,
    stored: &F1bBreakdown,
    tol: f64,
) -> Vec<Diagnostic> {
    let p = times.len();
    if p == 0 || n < p {
        return vec![Diagnostic::error(
            CheckCode::MicrobatchCount,
            None,
            format!("1F1B needs at least p micro-batches (n={n}, p={p})"),
        )];
    }
    let fresh = f1b_iteration_time(times, n);
    let mut out = Vec::new();
    let phases = [
        ("warmup W0", fresh.warmup, stored.warmup),
        ("steady (n-p)*M0", fresh.steady, stored.steady),
        ("ending E0", fresh.ending, stored.ending),
        ("bottleneck M0", fresh.bottleneck, stored.bottleneck),
        ("total T", fresh.total(), stored.total()),
    ];
    for (name, want, got) in phases {
        if !approx_eq(want.as_micros(), got.as_micros(), tol) {
            out.push(Diagnostic::error(
                CheckCode::BreakdownDrift,
                None,
                format!("{name} = {got} disagrees with the Eq. (3) recurrence value {want}"),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapipe_units::MicroSecs;

    fn r(first: usize, last: usize) -> LayerRange {
        LayerRange { first, last }
    }

    #[test]
    fn valid_partition_passes() {
        let ranges = [r(0, 3), r(4, 9), r(10, 11)];
        assert!(check_partition(&ranges, 12).is_empty());
    }

    #[test]
    fn gap_overlap_and_coverage_are_flagged() {
        let gap = [r(0, 3), r(5, 11)];
        let diags = check_partition(&gap, 12);
        assert!(diags.iter().any(|d| d.code == CheckCode::PartitionGap));
        assert!(diags[0].message.contains("gap"), "{}", diags[0].message);

        let overlap = [r(0, 5), r(4, 11)];
        let diags = check_partition(&overlap, 12);
        assert!(diags.iter().any(|d| d.code == CheckCode::PartitionGap));
        assert!(diags[0].message.contains("overlap"), "{}", diags[0].message);

        let short = [r(0, 3), r(4, 9)];
        let diags = check_partition(&short, 12);
        assert!(diags.iter().any(|d| d.code == CheckCode::PartitionCoverage));

        let empty: [LayerRange; 0] = [];
        assert!(check_partition(&empty, 12)[0].code == CheckCode::StageCount);
    }

    #[test]
    fn breakdown_drift_is_detected() {
        let times = vec![
            StageTimes {
                f: MicroSecs::new(1.0),
                b: MicroSecs::new(2.0)
            };
            4
        ];
        let good = f1b_iteration_time(&times, 16);
        assert!(check_breakdown(&times, 16, &good, 1e-9).is_empty());

        let mut bad = good;
        bad.steady = bad.steady * 1.5;
        let diags = check_breakdown(&times, 16, &bad, 1e-9);
        assert!(diags.iter().any(|d| d.code == CheckCode::BreakdownDrift));

        let underfilled = check_breakdown(&times, 2, &good, 1e-9);
        assert!(underfilled[0].code == CheckCode::MicrobatchCount);
    }

    #[test]
    fn capacity_overflow_respects_severity() {
        let mem = StageMemory {
            static_bytes: Bytes::new(10),
            buffer_bytes: Bytes::ZERO,
            intermediate_bytes: Bytes::ZERO,
        };
        assert!(check_capacity(0, &mem, Bytes::new(10), Severity::Error).is_empty());
        let err = check_capacity(0, &mem, Bytes::new(9), Severity::Error);
        assert_eq!(err[0].severity, Severity::Error);
        let warn = check_capacity(0, &mem, Bytes::new(9), Severity::Warning);
        assert_eq!(warn[0].severity, Severity::Warning);
        assert_eq!(warn[0].code, CheckCode::BudgetOverflow);
    }

    #[test]
    fn memory_accounting_flags_each_field() {
        let want = StageMemory {
            static_bytes: Bytes::new(1),
            buffer_bytes: Bytes::new(2),
            intermediate_bytes: Bytes::new(3),
        };
        assert!(check_memory_accounting(0, &want, &want).is_empty());
        let got = StageMemory {
            static_bytes: Bytes::new(9),
            buffer_bytes: Bytes::new(2),
            intermediate_bytes: Bytes::new(7),
        };
        let diags = check_memory_accounting(0, &want, &got);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.code == CheckCode::MemoryAccounting));
    }

    #[test]
    fn approx_eq_is_relative() {
        assert!(approx_eq(1e6, 1e6 + 1e-4, 1e-9));
        assert!(!approx_eq(1e6, 1e6 + 1.0, 1e-9));
        assert!(approx_eq(0.0, 1e-12, 1e-9));
    }
}
