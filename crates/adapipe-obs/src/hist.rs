//! Bounded streaming histograms: log-scaled fixed buckets replacing the
//! raw-sample `Vec<f64>` backend.
//!
//! The old backend kept every observation, so a daemon observing one
//! histogram value per request grew without bound — exactly the
//! sustained-traffic workload `adapipe-serve` created. A
//! [`StreamingHistogram`] instead keeps a **fixed** array of
//! logarithmically spaced buckets plus exact `count`/`sum`/`min`/`max`
//! accumulators: memory is `O(buckets)` no matter how many samples are
//! recorded, and two histograms (from different worker threads or cache
//! shards) merge by adding bucket counts.
//!
//! ## Bucket layout and error bound
//!
//! Positive values are bucketed at [`BUCKETS_PER_OCTAVE`] buckets per
//! power of two, covering `2^-32 .. 2^32` (values outside that range
//! clamp into the edge buckets; `min`/`max`/`sum` stay exact). A
//! quantile is reported as the geometric midpoint of its bucket, so its
//! relative error is at most half a bucket width:
//! `2^(1/(2·BUCKETS_PER_OCTAVE)) − 1 ≈ 4.4 %` for the default 8
//! buckets/octave. Non-positive and non-finite values land in a
//! dedicated underflow bucket whose representative is the exact
//! minimum. The error bound is asserted by tests against an exact
//! sorted-sample computation (see `quantiles_within_documented_bound`).

use crate::recorder::HistogramSummary;

/// Buckets per power of two. 8 gives a ≤ 4.4 % relative quantile error.
pub const BUCKETS_PER_OCTAVE: usize = 8;

/// Octaves covered: `2^-32 .. 2^32` (≈ 2.3e-10 .. 4.3e9 in whatever
/// unit the caller observes — for microsecond timings, sub-nanosecond
/// to over an hour).
const OCTAVES: usize = 64;

/// Exponent offset mapping `log2(v) = -32` to bucket 0.
const EXP_OFFSET: f64 = 32.0;

/// Total positive-value buckets; the histogram's memory is this many
/// `u64`s plus a handful of scalars, independent of the sample count.
pub const BUCKET_COUNT: usize = BUCKETS_PER_OCTAVE * OCTAVES;

/// The documented worst-case relative quantile error for in-range
/// positive values: half a bucket width.
#[must_use]
pub fn quantile_error_bound() -> f64 {
    2f64.powf(1.0 / (2.0 * BUCKETS_PER_OCTAVE as f64)) - 1.0
}

/// A bounded, mergeable, log-bucketed histogram.
#[derive(Debug, Clone)]
pub struct StreamingHistogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Non-positive or non-finite observations (counted exactly; their
    /// representative value is `min`).
    underflow: u64,
    buckets: Box<[u64]>,
}

impl Default for StreamingHistogram {
    fn default() -> Self {
        StreamingHistogram::new()
    }
}

impl StreamingHistogram {
    /// An empty histogram. Allocates the fixed bucket array once.
    #[must_use]
    pub fn new() -> Self {
        StreamingHistogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            underflow: 0,
            buckets: vec![0u64; BUCKET_COUNT].into_boxed_slice(),
        }
    }

    /// The bucket index of a positive, finite `v`, clamped into range.
    fn bucket_of(v: f64) -> usize {
        let exp = v.log2() + EXP_OFFSET;
        let idx = (exp * BUCKETS_PER_OCTAVE as f64).floor();
        if idx < 0.0 {
            0
        } else if idx >= BUCKET_COUNT as f64 {
            BUCKET_COUNT - 1
        } else {
            idx as usize
        }
    }

    /// The geometric midpoint of bucket `i` — the value a quantile
    /// landing in this bucket is reported as.
    fn representative(i: usize) -> f64 {
        2f64.powf((i as f64 + 0.5) / BUCKETS_PER_OCTAVE as f64 - EXP_OFFSET)
    }

    /// Records one observation. `O(1)`, no allocation.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v.is_finite() {
            if v < self.min {
                self.min = v;
            }
            if v > self.max {
                self.max = v;
            }
        }
        if v.is_finite() && v > 0.0 {
            let i = Self::bucket_of(v);
            if let Some(b) = self.buckets.get_mut(i) {
                *b += 1;
            }
        } else {
            self.underflow += 1;
        }
    }

    /// Folds `other` into `self` — the merge is exact for
    /// count/sum/min/max and bucket-exact for quantiles, so per-thread
    /// histograms can be combined into one registry without re-observing
    /// samples.
    pub fn merge(&mut self, other: &StreamingHistogram) {
        self.count += other.count;
        self.sum += other.sum;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        self.underflow += other.underflow;
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += *src;
        }
    }

    /// Number of observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether anything has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The fixed number of buckets backing this histogram — its memory
    /// footprint in `u64`s, independent of [`StreamingHistogram::count`].
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The `q`-quantile (`q` in `[0, 1]`) by nearest rank over buckets,
    /// reported as the landing bucket's geometric midpoint clamped into
    /// the exact `[min, max]` envelope. Returns 0.0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        // Nearest-rank, matching the old sorted-sample convention:
        // rank = round(q · (n−1)), 0-based.
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let clamp = |v: f64| v.clamp(self.min, self.max);
        // Underflow sorts first; everything in it reports the exact min.
        if rank < self.underflow {
            return self.min;
        }
        let mut seen = self.underflow;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if n > 0 && rank < seen {
                return clamp(Self::representative(i));
            }
        }
        self.max
    }

    /// Summarizes into the stable snapshot shape (`/metrics` schema).
    /// `sum`/`count`/`max` are exact; quantiles carry the documented
    /// bucket error.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        if self.count == 0 {
            return HistogramSummary {
                count: 0,
                sum: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: if self.max.is_finite() { self.max } else { 0.0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift for reference distributions — no external
    /// RNG dependency, stable across runs.
    struct XorShift(u64);
    impl XorShift {
        fn next_f64(&mut self) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            (self.0 >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = (q * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    #[test]
    fn exact_fields_are_exact() {
        let mut h = StreamingHistogram::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert!((s.sum - 10.0).abs() < 1e-12);
        assert_eq!(s.max, 4.0);
        assert!(s.p50 >= 1.0 && s.p50 <= 3.0, "p50 = {}", s.p50);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn quantiles_within_documented_bound() {
        // A log-uniform reference distribution spanning 6 decades —
        // the shape bucket error is worst at.
        let mut rng = XorShift(0x9e37_79b9_7f4a_7c15);
        let mut h = StreamingHistogram::new();
        let mut samples = Vec::new();
        for _ in 0..50_000 {
            let v = 10f64.powf(rng.next_f64() * 6.0 - 1.0);
            h.record(v);
            samples.push(v);
        }
        samples.sort_by(f64::total_cmp);
        let bound = quantile_error_bound();
        for q in [0.5, 0.95, 0.99] {
            let exact = exact_quantile(&samples, q);
            let approx = h.quantile(q);
            let rel = (approx - exact).abs() / exact;
            assert!(
                rel <= bound + 1e-9,
                "q={q}: approx {approx} vs exact {exact} (rel {rel:.4} > bound {bound:.4})"
            );
        }
    }

    #[test]
    fn memory_is_o_buckets_regardless_of_sample_count() {
        let mut h = StreamingHistogram::new();
        let before = h.bucket_count();
        for i in 0..1_000_000u64 {
            h.record((i % 10_000) as f64 + 0.5);
        }
        // The backing store never grows: same fixed bucket array, plus
        // O(1) scalars. (The old Vec<f64> backend would hold 8 MB here.)
        assert_eq!(h.bucket_count(), before);
        assert_eq!(h.bucket_count(), BUCKET_COUNT);
        assert_eq!(h.count(), 1_000_000);
        assert_eq!(
            std::mem::size_of::<StreamingHistogram>(),
            std::mem::size_of::<StreamingHistogram>(),
        );
    }

    #[test]
    fn merge_equals_observing_everything_in_one() {
        let mut a = StreamingHistogram::new();
        let mut b = StreamingHistogram::new();
        let mut whole = StreamingHistogram::new();
        let mut rng = XorShift(42);
        for i in 0..2_000 {
            let v = rng.next_f64() * 1e4 + 0.1;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        let (m, w) = (a.summary(), whole.summary());
        assert_eq!(m.count, w.count);
        assert!((m.sum - w.sum).abs() < 1e-6);
        assert_eq!(m.max, w.max);
        assert_eq!(m.p50, w.p50);
        assert_eq!(m.p95, w.p95);
        assert_eq!(m.p99, w.p99);
    }

    #[test]
    fn non_positive_and_non_finite_values_are_counted_not_bucketed() {
        let mut h = StreamingHistogram::new();
        h.record(0.0);
        h.record(-5.0);
        h.record(f64::NAN);
        h.record(2.0);
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.max, 2.0);
        // Low quantiles report the exact minimum.
        assert_eq!(h.quantile(0.0), -5.0);
        assert!(s.p50 >= -5.0 && s.p50 <= 2.0);
    }

    #[test]
    fn out_of_range_values_clamp_but_keep_exact_envelope() {
        let mut h = StreamingHistogram::new();
        h.record(1e300);
        h.record(1e-300);
        let s = h.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, 1e300);
        // Quantiles stay inside the exact [min, max] envelope even
        // though both samples landed in clamped edge buckets.
        assert!(h.quantile(0.0) >= 1e-300);
        assert!(h.quantile(1.0) <= 1e300);
    }

    #[test]
    fn empty_histogram_summarizes_to_zeros() {
        let s = StreamingHistogram::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!(
            (s.sum, s.p50, s.p95, s.p99, s.max),
            (0.0, 0.0, 0.0, 0.0, 0.0)
        );
    }

    #[test]
    fn single_sample_quantiles_are_near_exact() {
        let mut h = StreamingHistogram::new();
        h.record(17.5);
        let s = h.summary();
        // One sample: every quantile clamps into [min, max] = [17.5, 17.5].
        assert_eq!((s.p50, s.p95, s.p99, s.max), (17.5, 17.5, 17.5, 17.5));
    }
}
