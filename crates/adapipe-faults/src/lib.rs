//! # adapipe-faults: deterministic fault injection for the AdaPipe stack
//!
//! AdaPipe's planner, simulator and trainer all assume the hardware
//! profile measured up front holds forever. Real clusters disagree: a
//! device throttles, a link degrades, a neighbouring job eats memory, a
//! network hiccup stalls one micro-batch. This crate models those
//! events as data — a seeded, reproducible [`FaultPlan`] — and provides
//! the machinery the rest of the workspace uses to *inject* them into a
//! simulated run, *detect* the resulting violations, and hand typed
//! [`DegradationEvent`]s to the replanner instead of panicking.
//!
//! Everything here is deterministic by construction: fault timing is
//! driven by the logical [`FaultClock`] (training steps, never wall
//! clock), and any randomness (the fire step of a transient stall) is
//! derived from the plan's seed with splitmix64. The same plan text and
//! seed always reproduce the same perturbed world, byte for byte.
//!
//! The four fault archetypes (§ docs/robustness.md):
//!
//! * **Straggler** — a device computes at `factor` × its healthy speed
//!   from step `k` on (persistent).
//! * **Link degradation** — every inter-stage link moves bytes at
//!   `bandwidth_factor` × its healthy rate (persistent).
//! * **Memory pressure** — a stage loses part of its activation budget
//!   (Eq. 1–2's right-hand side shrinks; persistent).
//! * **Transient stall** — one micro-batch on one device takes a
//!   one-shot extra delay, then the world heals (transient).
//!
//! [`DegradedCluster`] presents the persistent faults as a view over
//! `adapipe-hw`, so the profiler, simulator and trainer all see the
//! same perturbed hardware.

#![forbid(unsafe_code)]

pub mod backoff;
pub mod clock;
pub mod degraded;
pub mod events;
pub mod inject;
pub mod plan;
pub mod watchdog;

pub use backoff::{run_retries, RetryOutcome, RetryPolicy};
pub use clock::{FaultClock, PendingStall};
pub use degraded::DegradedCluster;
pub use events::DegradationEvent;
pub use inject::{apply_stalls, degraded_stage_execs};
pub use plan::{Fault, FaultParseError, FaultPlan};
pub use watchdog::{Diagnosis, Watchdog};
