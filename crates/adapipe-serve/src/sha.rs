//! SHA-256 content addressing for canonical plan requests.
//!
//! The implementation moved to [`adapipe_exec::sha`] so the serve plan
//! cache and the partition subproblem cache share one digest; this
//! module re-exports it to keep `crate::sha::sha256_hex` call sites and
//! the public `adapipe_serve::sha` path stable.

pub use adapipe_exec::{sha256, sha256_hex};

#[cfg(test)]
mod tests {
    use super::*;

    /// The NIST "abc" vector still holds through the re-export (the
    /// full vector suite lives with the implementation in
    /// `adapipe-exec`).
    #[test]
    fn nist_abc_vector_survives_the_move() {
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(sha256(b"abc").len(), 32);
    }
}
