//! The §7.3 parallel-strategy sweep: iterate all legal `(t, p, d)`
//! triples for a device count and report each method's iteration time or
//! OOM verdict — the driver behind Table 3.

use crate::error::PlanError;
use crate::evaluate::Evaluation;
use crate::method::Method;
use crate::planner::Planner;
use adapipe_model::{ParallelConfig, TrainConfig};
use adapipe_units::MicroSecs;
use std::fmt;

/// Outcome of one `(method, parallel strategy)` cell of Table 3.
#[derive(Debug, Clone)]
pub struct StrategyOutcome {
    /// The parallel strategy evaluated.
    pub parallel: ParallelConfig,
    /// The evaluation, or the reason the cell is empty.
    pub result: Result<Evaluation, PlanError>,
}

impl StrategyOutcome {
    /// Iteration time if the strategy both planned and fit in memory.
    #[must_use]
    pub fn time(&self) -> Option<MicroSecs> {
        match &self.result {
            Ok(e) if e.fits => Some(e.iteration_time),
            _ => None,
        }
    }
}

impl fmt::Display for StrategyOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.time() {
            Some(t) => write!(f, "{} {:.3}s", self.parallel, t.as_secs()),
            None => write!(f, "{} OOM", self.parallel),
        }
    }
}

/// Evaluates `method` under every `(t, p, d)` combination using exactly
/// `devices` devices (tensor parallelism capped at `max_tensor`, pipeline
/// size at least `min_pipeline`), returning one outcome per strategy.
///
/// The workload's *global* batch is fixed; the per-replica micro-batch
/// count follows from each strategy's data-parallel size, exactly as in
/// the paper's sweep.
#[must_use]
pub fn sweep_parallel_strategies(
    planner: &Planner,
    method: Method,
    devices: usize,
    train: TrainConfig,
    max_tensor: usize,
    min_pipeline: usize,
) -> Vec<StrategyOutcome> {
    ParallelConfig::enumerate(devices, max_tensor, min_pipeline)
        .into_iter()
        .map(|parallel| {
            let result = planner
                .plan(method, parallel, train)
                .map(|plan| planner.evaluate(&plan));
            StrategyOutcome { parallel, result }
        })
        .collect()
}

/// The best (fastest, memory-feasible) outcome of a sweep, if any.
#[must_use]
pub fn best_outcome(outcomes: &[StrategyOutcome]) -> Option<&StrategyOutcome> {
    outcomes
        .iter()
        .filter(|o| o.time().is_some())
        .min_by_key(|o| adapipe_units::Cost::of(o.time().unwrap_or(MicroSecs::new(f64::INFINITY))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapipe_hw::presets as hw;
    use adapipe_model::presets;

    #[test]
    fn sweep_covers_every_strategy() {
        let planner = Planner::new(presets::gpt2_small(), hw::cluster_a());
        let train = TrainConfig::new(1, 512, 32).unwrap();
        let outcomes = sweep_parallel_strategies(&planner, Method::AdaPipe, 8, train, 4, 2);
        assert_eq!(outcomes.len(), ParallelConfig::enumerate(8, 4, 2).len());
        assert!(best_outcome(&outcomes).is_some());
    }

    #[test]
    fn best_outcome_is_minimum_feasible() {
        let planner = Planner::new(presets::gpt2_small(), hw::cluster_a());
        let train = TrainConfig::new(1, 512, 32).unwrap();
        let outcomes = sweep_parallel_strategies(&planner, Method::DappleFull, 8, train, 4, 2);
        let best = best_outcome(&outcomes).unwrap();
        for o in &outcomes {
            if let Some(t) = o.time() {
                assert!(best.time().unwrap() <= t);
            }
        }
    }

    #[test]
    fn empty_sweep_has_no_best() {
        assert!(best_outcome(&[]).is_none());
    }
}
