//! Recomputation strategies and their exact cost accounting.

use adapipe_model::UnitKind;
use adapipe_profiler::UnitProfile;
use adapipe_units::{Bytes, MicroSecs};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A per-stage recomputation strategy: for each computation unit of the
/// stage (in execution order), whether its intermediates are *saved*.
///
/// This is the set complement of the paper's `R` (the recomputed set);
/// pinned units are always saved.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RecomputeStrategy {
    saved: Vec<bool>,
}

impl RecomputeStrategy {
    /// Builds a strategy from per-unit saved flags.
    ///
    /// Saved flags are also the *portable* form of a knapsack solution:
    /// the cross-request subproblem cache (`adapipe_partition::subcache`)
    /// stores only these flags and replays them through
    /// [`RecomputeStrategy::from_flags`] against the requesting window,
    /// so a cache hit re-derives costs rather than trusting stored ones.
    ///
    /// # Panics
    ///
    /// Panics if `saved` marks a pinned unit as recomputed — pinned units
    /// (layer outputs) are saved by construction (§4.2).
    #[must_use]
    pub fn from_flags(units: &[UnitProfile], saved: Vec<bool>) -> Self {
        assert_eq!(units.len(), saved.len(), "one flag per unit");
        for (u, &s) in units.iter().zip(&saved) {
            assert!(
                s || !u.is_pinned(),
                "pinned unit {} cannot be recomputed",
                u.unit
            );
        }
        RecomputeStrategy { saved }
    }

    /// Builds a strategy from bare flags without checking them against
    /// unit profiles — for deserialization, where the unit table is not
    /// at hand. Prefer [`RecomputeStrategy::from_flags`] when it is.
    #[must_use]
    pub fn from_raw_flags(saved: Vec<bool>) -> Self {
        RecomputeStrategy { saved }
    }

    /// Number of units covered by the strategy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.saved.len()
    }

    /// Whether the strategy covers zero units.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.saved.is_empty()
    }

    /// Whether unit `i` is saved.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn is_saved(&self, i: usize) -> bool {
        self.saved[i]
    }

    /// Number of saved units — the quantity Table 4 reports per stage.
    #[must_use]
    pub fn saved_count(&self) -> usize {
        self.saved.iter().filter(|&&s| s).count()
    }

    /// Number of recomputed units (`|R|`).
    #[must_use]
    pub fn recomputed_count(&self) -> usize {
        self.len() - self.saved_count()
    }

    /// Iterates over the saved flags in unit order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        self.saved.iter().copied()
    }
}

impl fmt::Display for RecomputeStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} saved / {} units", self.saved_count(), self.len())
    }
}

/// Aggregate forward/backward cost and memory footprint of one stage
/// under a concrete strategy: the `F_{G,s}` and `B_{G,s}` of §4.3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageCost {
    /// Forward time of the stage (independent of recomputation).
    pub time_f: MicroSecs,
    /// Backward time including re-running the forward of recomputed units.
    pub time_b: MicroSecs,
    /// Saved intermediates per micro-batch.
    pub saved_bytes_per_mb: Bytes,
}

/// Exact cost of applying `strategy` to `units`.
///
/// # Panics
///
/// Panics if the strategy length does not match the unit count.
#[must_use]
pub fn cost_of(units: &[UnitProfile], strategy: &RecomputeStrategy) -> StageCost {
    assert_eq!(units.len(), strategy.len(), "strategy/unit length mismatch");
    let mut time_f = MicroSecs::ZERO;
    let mut time_b = MicroSecs::ZERO;
    let mut saved_bytes = Bytes::ZERO;
    for (i, u) in units.iter().enumerate() {
        time_f += u.time_f;
        time_b += u.time_b;
        if strategy.is_saved(i) {
            saved_bytes = saved_bytes.saturating_add(u.mem_saved);
        } else {
            // Recomputed units repeat their forward pass during backward.
            time_b += u.time_f;
        }
    }
    StageCost {
        time_f,
        time_b,
        saved_bytes_per_mb: saved_bytes,
    }
}

/// Recompute-buffer size implied by `strategy`: the backward pass
/// rematerializes, one layer at a time, the recomputed units of that
/// layer — the buffer must hold the largest such per-layer sum (§4.2).
/// Zero when nothing is recomputed.
///
/// # Panics
///
/// Panics if the strategy length does not match the unit count.
#[must_use]
pub fn buffer_bytes_of(units: &[UnitProfile], strategy: &RecomputeStrategy) -> Bytes {
    assert_eq!(units.len(), strategy.len(), "strategy/unit length mismatch");
    let mut max = Bytes::ZERO;
    let mut cur = Bytes::ZERO;
    let mut cur_layer = usize::MAX;
    for (i, u) in units.iter().enumerate() {
        if u.unit.layer != cur_layer {
            max = max.max(cur);
            cur = Bytes::ZERO;
            cur_layer = u.unit.layer;
        }
        if !strategy.is_saved(i) {
            cur = cur.saturating_add(u.mem_saved);
        }
    }
    max.max(cur)
}

/// *Full recomputation*: save only the pinned layer outputs, recompute
/// everything else (the `-Full` baselines of the evaluation).
#[must_use]
pub fn full(units: &[UnitProfile]) -> RecomputeStrategy {
    RecomputeStrategy {
        saved: units.iter().map(UnitProfile::is_pinned).collect(),
    }
}

/// *No recomputation*: save every unit (the `-Non` baselines).
#[must_use]
pub fn none(units: &[UnitProfile]) -> RecomputeStrategy {
    RecomputeStrategy {
        saved: vec![true; units.len()],
    }
}

/// Megatron-style *selective recomputation*: recompute only the attention
/// core (the memory-heavy softmax/dropout/bmm group that FlashAttention
/// fuses), save everything else.
#[must_use]
pub fn selective(units: &[UnitProfile]) -> RecomputeStrategy {
    RecomputeStrategy {
        saved: units
            .iter()
            .map(|u| u.unit.kind != UnitKind::CoreAttention)
            .collect(),
    }
}

/// *Uniform* recomputation: save every `k`-th free unit (plus all pinned
/// units) — the inflexible middle ground the paper contrasts against.
///
/// # Panics
///
/// Panics if `k` is zero.
#[must_use]
pub fn uniform(units: &[UnitProfile], k: usize) -> RecomputeStrategy {
    assert!(k > 0, "uniform stride must be positive");
    let mut free_seen = 0usize;
    RecomputeStrategy {
        saved: units
            .iter()
            .map(|u| {
                if u.is_pinned() {
                    true
                } else {
                    free_seen += 1;
                    free_seen.is_multiple_of(k)
                }
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapipe_hw::presets as hw;
    use adapipe_model::{presets, LayerRange, ParallelConfig, TrainConfig};
    use adapipe_profiler::Profiler;

    fn units() -> Vec<UnitProfile> {
        let model = presets::gpt2_small();
        let parallel = ParallelConfig::new(2, 4, 1).unwrap();
        let train = TrainConfig::new(1, 1024, 16).unwrap();
        let table = Profiler::new(hw::cluster_a()).profile(&model, &parallel, &train);
        table.units_in(LayerRange::new(1, 4))
    }

    #[test]
    fn full_saves_exactly_pinned() {
        let us = units();
        let s = full(&us);
        assert_eq!(s.saved_count(), us.iter().filter(|u| u.is_pinned()).count());
    }

    #[test]
    fn none_saves_everything_and_minimizes_backward() {
        let us = units();
        let all = cost_of(&us, &none(&us));
        let fullc = cost_of(&us, &full(&us));
        assert!(all.time_b < fullc.time_b);
        assert!(all.saved_bytes_per_mb > fullc.saved_bytes_per_mb);
        // Forward time is invariant under the strategy.
        assert!((all.time_f - fullc.time_f).abs() < MicroSecs::new(1e-9));
    }

    #[test]
    fn full_backward_pays_whole_forward_of_free_units() {
        let us = units();
        let s = full(&us);
        let c = cost_of(&us, &s);
        let base_b: MicroSecs = us.iter().map(|u| u.time_b).sum();
        let free_f: MicroSecs = us.iter().filter(|u| !u.is_pinned()).map(|u| u.time_f).sum();
        assert!((c.time_b - base_b - free_f).abs() < MicroSecs::new(1e-6));
    }

    #[test]
    fn selective_recomputes_only_core_attention() {
        let us = units();
        let s = selective(&us);
        for (i, u) in us.iter().enumerate() {
            assert_eq!(s.is_saved(i), u.unit.kind != UnitKind::CoreAttention);
        }
    }

    #[test]
    fn uniform_respects_pins() {
        let us = units();
        let s = uniform(&us, 3);
        for (i, u) in us.iter().enumerate() {
            if u.is_pinned() {
                assert!(s.is_saved(i));
            }
        }
        assert!(s.saved_count() < us.len());
    }

    #[test]
    #[should_panic(expected = "pinned unit")]
    fn from_flags_rejects_recomputed_pins() {
        let us = units();
        let flags = vec![false; us.len()];
        let _ = RecomputeStrategy::from_flags(&us, flags);
    }

    #[test]
    fn buffer_is_zero_without_recomputation() {
        let us = units();
        assert_eq!(buffer_bytes_of(&us, &none(&us)), Bytes::ZERO);
        // Full recomputation buffers the heaviest single layer.
        let full_buf = buffer_bytes_of(&us, &full(&us));
        assert!(full_buf > Bytes::ZERO);
        let per_layer_max = us
            .iter()
            .filter(|u| !u.is_pinned())
            .map(|u| u.mem_saved)
            .max()
            .unwrap();
        assert!(full_buf >= per_layer_max);
    }

    #[test]
    fn strategy_ordering_invariant() {
        // Saving strictly more units never increases backward time.
        let us = units();
        let less = full(&us);
        let more = none(&us);
        assert!(cost_of(&us, &more).time_b <= cost_of(&us, &less).time_b);
    }
}
