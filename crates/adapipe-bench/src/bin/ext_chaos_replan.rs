//! Extension: replan latency after a detected straggler, cold vs
//! warm-started through the §5.3 isomorphism cache.
//!
//! AdaPipe's search is offline in the paper; once a straggler is
//! detected at runtime the re-run of Algorithm 1 sits on the recovery
//! critical path, so its latency decides how long the pipeline trains
//! on a stale plan. The iso-cache warm start reuses window costs whose
//! (shape, budget) signature survives the degradation, cutting the
//! re-solve cost without changing the chosen plan.

use adapipe::{Planner, ReplanConfig};
use adapipe_bench::{emit_bench_json, print_table};
use adapipe_faults::{DegradedCluster, Diagnosis, Fault, FaultPlan};
use adapipe_hw::presets as hw;
use adapipe_model::{presets, ParallelConfig, TrainConfig};
use adapipe_obs::{keys, Recorder};

fn main() {
    let rec = Recorder::new();
    let t0 = std::time::Instant::now();
    let planner =
        Planner::new(presets::gpt2_small(), hw::cluster_a_with_nodes(1)).with_recorder(rec.clone());
    let parallel = ParallelConfig::new(2, 4, 1).expect("valid");
    let train = TrainConfig::new(1, 1024, 32).expect("valid");
    let stale = planner
        .plan(adapipe::Method::AdaPipe, parallel, train)
        .expect("healthy plan");

    let faults = FaultPlan::new(42).with(Fault::Straggler {
        device: 2,
        factor: 0.6,
        from_step: 0,
    });
    let degraded = DegradedCluster::new(hw::cluster_a_with_nodes(1), faults);
    let diagnosis = Diagnosis {
        transient_stalls: vec![],
        persistent_stragglers: vec![2],
        budget_exceeded: vec![],
    };
    let mut rows = Vec::new();
    let mut wall = [0.0f64; 2];
    let mut texts: Vec<String> = Vec::new();
    for (i, (label, iso_cache)) in [("cold", false), ("warm (iso-cache)", true)]
        .into_iter()
        .enumerate()
    {
        const REPS: u32 = 20;
        let cfg = ReplanConfig {
            iso_cache,
            ..ReplanConfig::default()
        };
        let mut outcome = None;
        let start = std::time::Instant::now();
        for _ in 0..REPS {
            outcome = Some(
                planner
                    .replan(&stale, &degraded, &diagnosis, &cfg)
                    .expect("replan succeeds"),
            );
        }
        let per_solve_ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(REPS);
        wall[i] = per_solve_ms;
        let outcome = outcome.expect("ran at least once");
        let plan = outcome.plan.as_ref().expect("straggler forces a replan");
        texts.push(adapipe::plan_io::to_text(plan));
        rows.push(vec![
            label.to_string(),
            format!("{per_solve_ms:.2}"),
            format!("{}", outcome.cache_hits),
            format!("{}", outcome.cache_misses),
            format!(
                "{:.3}",
                outcome
                    .replanned_time
                    .expect("replanned time present")
                    .as_secs()
            ),
        ]);
        rec.gauge(
            &format!(
                "bench.chaos_replan.{}.ms",
                if iso_cache { "warm" } else { "cold" }
            ),
            per_solve_ms,
        );
    }
    assert_eq!(
        texts[0], texts[1],
        "warm start must not change the chosen plan"
    );

    print_table(
        "Replan latency after a stage-2 straggler (0.6x) — GPT-2, (2,4,1)",
        &["start", "ms/solve", "iso hits", "iso misses", "T (s)"],
        &rows,
    );
    println!(
        "\nExpected shape: the warm start reports nonzero iso-cache hits and is \
         no slower than the cold re-solve; both emit byte-identical plans."
    );

    rec.gauge(keys::BENCH_WALL_S, t0.elapsed().as_secs_f64());
    emit_bench_json(
        "chaos_replan",
        &rec,
        &[("extension", "fault-recovery"), ("scenario", "straggler")],
    );
}
