//! Tier-1 optimality-verification suite: the planner's DPs against the
//! brute-force oracles, the lower-bound certificate against every plan,
//! and the golden counterexample corpus replayed as regression tests.
//!
//! The contract under test (see `docs/verification.md`): Algorithm 1
//! must stay within the calibrated gap band of the exhaustive partition
//! search and must never *beat* it (the two share one cost model, so
//! "better than brute force" means the model diverged), and the
//! `adapipe-certificate v1` lower bound must never exceed the cost of
//! any memory-feasible Eq. (3) plan.

use adapipe::oracle::{
    check_grid_agreement, check_model_grid, gap_band, search_counterexamples, OracleBounds,
    SyntheticInstance,
};
use adapipe::{
    check_certificate, Certificate, Counterexample, Method, OptimalityOptions, Planner, Recorder,
    DEFAULT_EPSILON,
};
use adapipe_check::DEFAULT_TOLERANCE;
use adapipe_hw::presets as hw;
use adapipe_model::{presets, ParallelConfig, TrainConfig};
use adapipe_units::MicroSecs;
use proptest::prelude::*;
use std::path::Path;

type TestResult = Result<(), Box<dyn std::error::Error>>;

// ---------------------------------------------------------------------
// Pinned grids: the DP agrees with brute force everywhere we can afford
// brute force.

#[test]
fn pinned_synthetic_grid_has_no_disagreements() {
    let diags = check_grid_agreement(&Recorder::disabled());
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn tiny_gpt_model_grid_has_no_disagreements() {
    let diags = check_model_grid(&Recorder::disabled());
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------
// Golden corpus: every committed counterexample must stay fixed.

#[test]
fn golden_counterexamples_replay_clean() -> TestResult {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/counterexamples");
    let mut replayed = 0usize;
    for entry in std::fs::read_dir(&dir)? {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) != Some("cx") {
            continue;
        }
        let text = std::fs::read_to_string(&path)?;
        let cx =
            Counterexample::from_text(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        assert!(
            !cx.instance.violates(),
            "{}: committed counterexample violates again (dp {:?} vs oracle {:?})",
            path.display(),
            cx.instance.dp_time(),
            cx.instance.oracle_time()
        );
        replayed += 1;
    }
    // An empty corpus is the expected passing state; the README must be
    // there so the directory survives checkouts.
    assert!(dir.join("README.md").exists());
    println!("replayed {replayed} golden counterexample(s)");
    Ok(())
}

#[test]
fn seeded_search_finds_no_counterexamples() {
    let hits = search_counterexamples(2024, 128, &OracleBounds::default(), &Recorder::disabled());
    assert!(hits.is_empty(), "new counterexamples: {hits:?}");
}

// ---------------------------------------------------------------------
// Certificates: golden plans and freshly planned artifacts certify.

#[test]
fn golden_adapipe_plan_certifies_within_epsilon() -> TestResult {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/gpt2_adapipe.plan");
    let text = std::fs::read_to_string(path)?;
    let (plan, _) = adapipe::plan_io::from_text_with_warnings(&text)?;
    let planner = Planner::new(presets::gpt2_small(), hw::cluster_a());
    let cert = planner
        .certificate(&plan)
        .ok_or("golden plan must certify")?;
    assert!(cert.lower_bound > MicroSecs::ZERO);
    let diags = check_certificate(&cert, DEFAULT_EPSILON, DEFAULT_TOLERANCE);
    assert!(diags.is_empty(), "gap {:.3}: {diags:?}", cert.gap());
    // And the artifact format round-trips bit-exactly.
    assert_eq!(Certificate::from_text(&cert.to_text())?, cert);
    Ok(())
}

#[test]
fn verify_optimality_accepts_fresh_adapipe_plans() -> TestResult {
    let planner = Planner::new(presets::gpt2_small(), hw::cluster_a());
    let plan = planner.plan(
        Method::AdaPipe,
        ParallelConfig::new(2, 4, 1)?,
        TrainConfig::new(1, 1024, 32)?,
    )?;
    let opts = OptimalityOptions {
        search_iterations: 16,
        ..OptimalityOptions::default()
    };
    let report = planner.verify_optimality(&plan, &opts);
    assert!(!report.has_errors(), "{report}");
    Ok(())
}

// ---------------------------------------------------------------------
// Agreement laws, property-tested over random small instances.

// The vec's 4-layer floor keeps every drawn instance feasible (p ≤ 4
// stages never exceeds the layer count).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The DP never beats brute force: both searches price partitions
    /// with the same Eq. (3) evaluator, so a "better" DP result means
    /// the cost model forked.
    #[test]
    fn dp_never_beats_the_oracle(
        p in 2usize..5,
        extra in 0usize..11,
        layer_times in proptest::collection::vec((0.2f64..3.0, 0.2f64..3.0), 4..10),
    ) {
        let inst = SyntheticInstance { stages: p, micro_batches: p + extra, layer_times };
        let dp = inst.dp_time().expect("synthetic instances are feasible");
        let oracle = inst.oracle_time().expect("synthetic instances are feasible");
        prop_assert!(
            dp >= oracle - MicroSecs::new(1e-9 * oracle.as_micros().max(1.0)),
            "dp {dp} beats oracle {oracle}"
        );
    }

    /// The DP stays inside the calibrated band of the optimum.
    #[test]
    fn dp_stays_in_the_calibrated_band(
        p in 2usize..5,
        extra in 0usize..11,
        layer_times in proptest::collection::vec((0.2f64..3.0, 0.2f64..3.0), 4..10),
    ) {
        let inst = SyntheticInstance { stages: p, micro_batches: p + extra, layer_times };
        let dp = inst.dp_time().expect("feasible");
        let oracle = inst.oracle_time().expect("feasible");
        let band = gap_band(inst.stages, inst.micro_batches);
        prop_assert!(
            dp <= oracle * band + MicroSecs::new(1e-9),
            "dp {dp} vs oracle {oracle} (band {band})"
        );
        prop_assert!(!inst.violates());
    }

    /// Counterexample artifacts round-trip through their text format.
    #[test]
    fn counterexample_text_round_trips(
        p in 2usize..5,
        extra in 0usize..11,
        layer_times in proptest::collection::vec((0.2f64..3.0, 0.2f64..3.0), 4..10),
        seed in 0u64..1_000_000,
    ) {
        let inst = SyntheticInstance { stages: p, micro_batches: p + extra, layer_times };
        let cx = Counterexample {
            dp_time: inst.dp_time().expect("feasible"),
            oracle_time: inst.oracle_time().expect("feasible"),
            instance: inst,
            seed,
        };
        prop_assert_eq!(Counterexample::from_text(&cx.to_text()).unwrap(), cx);
    }
}
