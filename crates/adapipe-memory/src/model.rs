use crate::optimizer::OptimizerSpec;
use adapipe_model::{LayerRange, LayerSeq, ModelSpec, ParallelConfig};
use adapipe_profiler::ProfileTable;
use adapipe_units::{convert, Bytes};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of micro-batches whose activations stage `s` (0-based) of a
/// `p`-stage 1F1B pipeline holds simultaneously: `p − s` (§2.1).
///
/// # Panics
///
/// Panics if `stage >= pipeline`.
#[must_use]
pub fn f1b_live_microbatches(pipeline: usize, stage: usize) -> usize {
    assert!(
        stage < pipeline,
        "stage {stage} out of range for p={pipeline}"
    );
    pipeline - stage
}

/// Full memory breakdown of one pipeline stage on one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageMemory {
    /// Parameters + gradients + ZeRO-sharded optimizer states.
    pub static_bytes: Bytes,
    /// Recompute buffer: intermediates of one decoder layer (§4.2).
    pub buffer_bytes: Bytes,
    /// Saved intermediates: per-micro-batch saved bytes times the number
    /// of live micro-batches.
    pub intermediate_bytes: Bytes,
}

impl StageMemory {
    /// Total bytes used on the device.
    #[must_use]
    pub fn total(&self) -> Bytes {
        self.static_bytes
            .saturating_add(self.buffer_bytes)
            .saturating_add(self.intermediate_bytes)
    }

    /// Whether the stage fits in `capacity`.
    #[must_use]
    pub fn fits(&self, capacity: Bytes) -> bool {
        self.total().fits(capacity)
    }
}

impl fmt::Display for StageMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "static {:.2} GB + buffer {:.2} GB + intermediates {:.2} GB = {:.2} GB",
            self.static_bytes.as_f64() / 1e9,
            self.buffer_bytes.as_f64() / 1e9,
            self.intermediate_bytes.as_f64() / 1e9,
            self.total().as_f64() / 1e9,
        )
    }
}

/// The §4.2 memory model: computes static memory, recompute buffers and
/// the activation budget handed to the recomputation knapsack.
#[derive(Debug, Clone)]
pub struct MemoryModel {
    model: ModelSpec,
    parallel: ParallelConfig,
    optimizer: OptimizerSpec,
}

impl MemoryModel {
    /// Creates a memory model for `model` trained under `parallel` with
    /// `optimizer`.
    #[must_use]
    pub fn new(model: ModelSpec, parallel: ParallelConfig, optimizer: OptimizerSpec) -> Self {
        MemoryModel {
            model,
            parallel,
            optimizer,
        }
    }

    /// The model being described.
    #[must_use]
    pub fn model(&self) -> &ModelSpec {
        &self.model
    }

    /// The parallel configuration.
    #[must_use]
    pub fn parallel(&self) -> &ParallelConfig {
        &self.parallel
    }

    /// Static bytes for a stage holding the layers of `range`:
    /// `params·dtype/t + params·grad_bytes/t + params·(state+master)/(t·d)`.
    #[must_use]
    pub fn static_bytes(&self, seq: &LayerSeq, range: LayerRange) -> Bytes {
        let (pg, opt) = self.static_bytes_split(seq, range);
        pg.saturating_add(opt)
    }

    /// Static bytes split into the replicated part (parameters +
    /// gradients) and the ZeRO-sharded part (optimizer states + master
    /// copy). Bidirectional schedules like Chimera replicate the former
    /// per hosted pipeline but shard the latter across the replica pair.
    #[must_use]
    pub fn static_bytes_split(&self, seq: &LayerSeq, range: LayerRange) -> (Bytes, Bytes) {
        let n = self.model.range_params(seq, range);
        let t = convert::usize_u64(self.parallel.tensor());
        let d = convert::usize_u64(self.parallel.data());
        let params = n * convert::usize_u64(self.model.dtype_bytes()) / t;
        let grads = n * self.optimizer.grad_bytes_per_param / t;
        let opt = n
            * (self.optimizer.state_bytes_per_param + self.optimizer.master_bytes_per_param)
            / (t * d);
        (Bytes::new(params + grads), Bytes::new(opt))
    }

    /// Full breakdown for stage `stage` of a 1F1B pipeline whose
    /// per-micro-batch saved intermediates occupy `saved_bytes_per_mb`.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range for the pipeline size.
    #[must_use]
    pub fn stage_breakdown(
        &self,
        table: &ProfileTable,
        seq: &LayerSeq,
        range: LayerRange,
        stage: usize,
        saved_bytes_per_mb: Bytes,
    ) -> StageMemory {
        let live = convert::usize_u64(f1b_live_microbatches(self.parallel.pipeline(), stage));
        StageMemory {
            static_bytes: self.static_bytes(seq, range),
            buffer_bytes: table.recompute_buffer_bytes(range),
            intermediate_bytes: saved_bytes_per_mb * live,
        }
    }

    /// Breakdown with an explicit live-micro-batch count, for non-1F1B
    /// schedules (GPipe holds all `n`; Chimera holds direction-dependent
    /// counts).
    #[must_use]
    pub fn stage_breakdown_with_live(
        &self,
        table: &ProfileTable,
        seq: &LayerSeq,
        range: LayerRange,
        live_microbatches: usize,
        saved_bytes_per_mb: Bytes,
    ) -> StageMemory {
        StageMemory {
            static_bytes: self.static_bytes(seq, range),
            buffer_bytes: table.recompute_buffer_bytes(range),
            intermediate_bytes: saved_bytes_per_mb * convert::usize_u64(live_microbatches),
        }
    }

    /// The per-micro-batch activation budget the recomputation knapsack
    /// may spend for stage `stage` holding `range`, under device capacity
    /// `capacity`: `(capacity − static − buffer) / (p − s)`.
    ///
    /// Returns `None` when static memory plus the recompute buffer already
    /// exceed the capacity — the stage cannot run at all (the OOM cases in
    /// Table 3).
    #[must_use]
    pub fn activation_budget(
        &self,
        table: &ProfileTable,
        seq: &LayerSeq,
        range: LayerRange,
        stage: usize,
        capacity: Bytes,
    ) -> Option<Bytes> {
        let fixed = self
            .static_bytes(seq, range)
            .saturating_add(table.recompute_buffer_bytes(range));
        let free = capacity.checked_sub(fixed)?;
        let live = convert::usize_u64(f1b_live_microbatches(self.parallel.pipeline(), stage));
        Some(free / live)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adapipe_hw::presets as hw;
    use adapipe_model::{presets, TrainConfig};
    use adapipe_profiler::Profiler;

    fn setup() -> (ModelSpec, ParallelConfig, ProfileTable, LayerSeq) {
        let model = presets::gpt3_175b();
        let parallel = ParallelConfig::new(8, 8, 1).unwrap();
        let train = TrainConfig::new(1, 4096, 128).unwrap();
        let table = Profiler::new(hw::cluster_a()).profile(&model, &parallel, &train);
        let seq = LayerSeq::for_model(&model);
        (model, parallel, table, seq)
    }

    #[test]
    fn live_microbatches_decrease_along_pipeline() {
        assert_eq!(f1b_live_microbatches(8, 0), 8);
        assert_eq!(f1b_live_microbatches(8, 7), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn live_microbatches_rejects_bad_stage() {
        let _ = f1b_live_microbatches(4, 4);
    }

    #[test]
    fn gpt3_static_memory_matches_back_of_envelope() {
        // A GPT-3 stage of 12 decoder blocks at t=8, d=1 holds ~2.7B
        // params/device: 5.5 GB params + 5.5 GB grads + 33 GB optimizer.
        let (_, parallel, _, seq) = setup();
        let mem = MemoryModel::new(presets::gpt3_175b(), parallel, OptimizerSpec::adam_fp32());
        let parts = seq.even_partition(8);
        let gb = mem.static_bytes(&seq, parts[3]).as_f64() / 1e9;
        assert!((35.0..55.0).contains(&gb), "static = {gb:.1} GB");
    }

    #[test]
    fn budget_shrinks_for_earlier_stages() {
        let (model, parallel, table, seq) = setup();
        let mem = MemoryModel::new(model, parallel, OptimizerSpec::adam_fp32());
        let range = seq.even_partition(8)[3];
        let cap = Bytes::from_gib(80);
        let b0 = mem.activation_budget(&table, &seq, range, 0, cap).unwrap();
        let b7 = mem.activation_budget(&table, &seq, range, 7, cap).unwrap();
        assert!(b0 < b7);
        assert_eq!(b0 * 8, Bytes::new(b7.get() - b7.get() % 8));
    }

    #[test]
    fn budget_none_when_static_exceeds_capacity() {
        let (model, parallel, table, seq) = setup();
        let mem = MemoryModel::new(model, parallel, OptimizerSpec::adam_fp32());
        let whole = LayerRange::new(0, seq.len() - 1);
        assert!(mem
            .activation_budget(&table, &seq, whole, 0, Bytes::from_gib(8))
            .is_none());
    }

    #[test]
    fn breakdown_total_is_sum_of_parts() {
        let (model, parallel, table, seq) = setup();
        let mem = MemoryModel::new(model, parallel, OptimizerSpec::adam_fp32());
        let range = seq.even_partition(8)[0];
        let bd = mem.stage_breakdown(&table, &seq, range, 0, Bytes::new(123_456_789));
        assert_eq!(
            bd.total(),
            bd.static_bytes
                .saturating_add(bd.buffer_bytes)
                .saturating_add(bd.intermediate_bytes)
        );
        assert_eq!(bd.intermediate_bytes, Bytes::new(8 * 123_456_789));
        assert!(bd.fits(Bytes::new(u64::MAX)));
        assert!(!bd.fits(Bytes::new(1)));
    }

    #[test]
    fn explicit_live_counts_cover_gpipe_and_chimera() {
        let (model, parallel, table, seq) = setup();
        let mem = MemoryModel::new(model, parallel, OptimizerSpec::adam_fp32());
        let range = seq.even_partition(8)[0];
        let saved = Bytes::new(1_000_000);
        // GPipe holds all n micro-batches; 1F1B stage 0 holds p.
        let gpipe = mem.stage_breakdown_with_live(&table, &seq, range, 128, saved);
        let f1b = mem.stage_breakdown(&table, &seq, range, 0, saved);
        assert_eq!(gpipe.intermediate_bytes, saved * 128);
        assert_eq!(f1b.intermediate_bytes, saved * 8);
        assert_eq!(gpipe.static_bytes, f1b.static_bytes);
    }

    #[test]
    fn split_static_parts_sum_to_total() {
        let (model, parallel, _, seq) = setup();
        let mem = MemoryModel::new(model, parallel, OptimizerSpec::adam_fp32());
        for range in seq.even_partition(8) {
            let (pg, opt) = mem.static_bytes_split(&seq, range);
            assert_eq!(pg.saturating_add(opt), mem.static_bytes(&seq, range));
            assert!(pg > Bytes::ZERO && opt > Bytes::ZERO);
        }
    }

    #[test]
    fn zero2_style_sharding_reduces_optimizer_share() {
        let (model, _, _, seq) = setup();
        let p1 = ParallelConfig::new(8, 8, 1).unwrap();
        let p4 = ParallelConfig::new(8, 8, 4).unwrap();
        let m1 = MemoryModel::new(model.clone(), p1, OptimizerSpec::adam_fp32());
        let m4 = MemoryModel::new(model, p4, OptimizerSpec::adam_fp32());
        let range = seq.even_partition(8)[0];
        assert!(m4.static_bytes(&seq, range) < m1.static_bytes(&seq, range));
    }
}
