//! Figure 6: GPT-3 (175B) end-to-end performance on cluster A
//! (64 A100 GPUs), all methods, sequence lengths 4096/8192/16384.

fn main() {
    adapipe_bench::cluster_a::run(adapipe_model::presets::gpt3_175b(), 64, "Figure 6");
}
