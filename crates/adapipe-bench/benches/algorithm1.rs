//! Scaling of Algorithm 1 (adaptive partitioning), including the §5.3
//! isomorphism-cache ablation: the identical search with and without
//! reusing knapsack results across isomorphic layer windows.

use adapipe_hw::presets as hw;
use adapipe_memory::{MemoryModel, OptimizerSpec};
use adapipe_model::{presets, LayerSeq, ParallelConfig, TrainConfig};
use adapipe_partition::{algorithm1, KnapsackCostProvider};
use adapipe_profiler::Profiler;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_algorithm1(c: &mut Criterion) {
    let model = presets::gpt3_175b();
    let parallel = ParallelConfig::new(8, 8, 1).unwrap();
    let train = TrainConfig::new(1, 4096, 128).unwrap();
    let table = Profiler::new(hw::cluster_a()).profile(&model, &parallel, &train);
    let seq = LayerSeq::for_model(&model);
    let mem = MemoryModel::new(model, parallel, OptimizerSpec::adam_fp32());
    let capacity =
        adapipe_units::Bytes::new((hw::a100_80gb().usable_bytes().as_f64() * 0.875) as u64);
    let n = train.micro_batches(&parallel);

    let mut group = c.benchmark_group("algorithm1");
    group.sample_size(10);
    for iso_cache in [true, false] {
        let label = if iso_cache { "iso_cache" } else { "no_cache" };
        group.bench_function(BenchmarkId::new(label, "gpt3_p8"), |b| {
            b.iter(|| {
                let provider = KnapsackCostProvider::new(&seq, &table, &mem, capacity)
                    .with_isomorphism_cache(iso_cache);
                algorithm1::solve(black_box(&provider), seq.len(), 8, n).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithm1);
criterion_main!(benches);
