//! The seeded, deterministic work-stealing fork-join pool.
//!
//! Design constraints, in order:
//!
//! 1. **Byte-identical results at any thread count.** [`ExecPool::map`]
//!    only ever distributes *indices* into a pre-enumerated task slice
//!    and writes each result into its own output slot, so scheduling
//!    (worker count, steal order, seed) can reorder *execution* but
//!    never the *result vector*. Callers that need full determinism
//!    must pass pure tasks; the pool guarantees the rest.
//! 2. **No `unsafe`.** Workers are scoped threads
//!    (`std::thread::scope`), so they may borrow the task slice and
//!    the closure directly; the deques are plain
//!    `Mutex<VecDeque<usize>>` and batch completion is a
//!    `Mutex`/`Condvar` latch. This costs a lock per pop — irrelevant
//!    against multi-microsecond knapsack leaves — and keeps the crate
//!    inside the workspace-wide `#![forbid(unsafe_code)]` law.
//! 3. **Panic containment.** Every task runs under
//!    `catch_unwind`; a panicking task records a typed failure for its
//!    slot and the batch *keeps draining*, so the scope always joins
//!    and shutdown cannot deadlock. The first failing index (lowest,
//!    for determinism) is reported as [`ExecError::TaskPanicked`].
//!
//! The pool is a configuration object: threads are spawned per batch
//! and joined before [`ExecPool::map`] returns, so constructing one is
//! free and a pool embedded in a long-lived daemon holds no idle
//! threads. With one worker (or one task) the batch runs inline on the
//! caller with zero spawns.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};

/// Environment variable selecting the worker count for
/// [`ExecPool::from_env`]. Unset or unparsable values fall back to the
/// machine's available parallelism.
pub const THREADS_ENV: &str = "ADAPIPE_THREADS";

/// Typed failure of a pool batch.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecError {
    /// A task panicked; `index` is the lowest failing input index and
    /// `detail` the stringified panic payload.
    TaskPanicked {
        /// Input index of the failing task.
        index: usize,
        /// Panic payload, when it was a string.
        detail: String,
    },
    /// A slot was never filled — a pool invariant was broken (never
    /// expected; reported as an error instead of a panic so the
    /// planner degrades instead of aborting).
    LostTask {
        /// Input index whose result went missing.
        index: usize,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::TaskPanicked { index, detail } => {
                write!(f, "pool task {index} panicked: {detail}")
            }
            ExecError::LostTask { index } => write!(f, "pool task {index} produced no result"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Cumulative pool counters, snapshotted by [`ExecPool::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Configured worker count.
    pub workers: u64,
    /// Fork-join batches executed.
    pub batches: u64,
    /// Tasks executed across all batches.
    pub tasks: u64,
    /// Tasks obtained by stealing from another worker's deque.
    pub steals: u64,
    /// High watermark of any worker's initial queue depth.
    pub max_queue_depth: u64,
}

/// A deterministic work-stealing fork-join pool.
///
/// See the module docs for the design. Cheap to construct and clone
/// counters are interior, so a daemon can share one pool behind an
/// `Arc` across request workers.
#[derive(Debug)]
pub struct ExecPool {
    threads: usize,
    seed: u64,
    batches: AtomicU64,
    tasks: AtomicU64,
    steals: AtomicU64,
    max_queue_depth: AtomicU64,
}

impl ExecPool {
    /// A pool with `threads` workers (floored at 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        ExecPool {
            threads: threads.max(1),
            seed: 0x00ad_a91e,
            batches: AtomicU64::new(0),
            tasks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
        }
    }

    /// A pool sized by `ADAPIPE_THREADS`, falling back to the
    /// machine's available parallelism (and then to 1).
    #[must_use]
    pub fn from_env() -> Self {
        let threads = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            });
        ExecPool::new(threads)
    }

    /// Overrides the steal-order seed (determinism never depends on
    /// it; it only varies which victim a starved worker tries first).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Snapshot of the cumulative counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: to_u64(self.threads),
            batches: self.batches.load(Ordering::Relaxed),
            tasks: self.tasks.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
        }
    }

    /// Applies `f` to every item, in parallel across the pool's
    /// workers, returning the results **in input order**.
    ///
    /// # Errors
    ///
    /// [`ExecError::TaskPanicked`] if any task panicked (the batch
    /// still drains fully first, so the pool stays usable).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>, ExecError>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let n = items.len();
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.tasks.fetch_add(to_u64(n), Ordering::Relaxed);
        if n == 0 {
            return Ok(Vec::new());
        }
        let workers = self.threads.min(n);
        self.max_queue_depth
            .fetch_max(to_u64(n.div_ceil(workers)), Ordering::Relaxed);
        if workers <= 1 {
            return map_inline(items, &f);
        }

        // Pre-distribute indices round-robin; workers steal from the
        // back of other deques once their own drains.
        let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| {
                let mut q = VecDeque::with_capacity(n.div_ceil(workers));
                q.extend((w..n).step_by(workers));
                Mutex::new(q)
            })
            .collect();
        let slots: Vec<Mutex<Option<Result<R, String>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let latch = Latch::new(n);
        let steals = AtomicU64::new(0);

        std::thread::scope(|scope| {
            for w in 1..workers {
                let (deques, slots, latch, steals, f) = (&deques, &slots, &latch, &steals, &f);
                scope.spawn(move || {
                    worker_loop(w, self.seed, deques, items, slots, f, latch, steals);
                });
            }
            // The caller is worker 0; when its loop drains it waits on
            // the latch so the batch is complete before the scope even
            // begins joining.
            worker_loop(0, self.seed, &deques, items, &slots, &f, &latch, &steals);
            latch.wait();
        });
        self.steals
            .fetch_add(steals.load(Ordering::Relaxed), Ordering::Relaxed);

        let mut out = Vec::with_capacity(n);
        for (index, slot) in slots.into_iter().enumerate() {
            match slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
                Some(Ok(value)) => out.push(value),
                Some(Err(detail)) => return Err(ExecError::TaskPanicked { index, detail }),
                None => return Err(ExecError::LostTask { index }),
            }
        }
        Ok(out)
    }
}

impl Default for ExecPool {
    fn default() -> Self {
        ExecPool::from_env()
    }
}

/// Serial fallback used when one worker (or one task) makes spawning
/// pointless; semantics — including panic containment and
/// lowest-failing-index reporting — match the parallel path.
fn map_inline<T, R, F>(items: &[T], f: &F) -> Result<Vec<R>, ExecError>
where
    F: Fn(&T) -> R,
{
    let mut out = Vec::with_capacity(items.len());
    for (index, item) in items.iter().enumerate() {
        match catch_unwind(AssertUnwindSafe(|| f(item))) {
            Ok(value) => out.push(value),
            Err(payload) => {
                return Err(ExecError::TaskPanicked {
                    index,
                    detail: payload_text(payload.as_ref()),
                })
            }
        }
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn worker_loop<T, R, F>(
    w: usize,
    seed: u64,
    deques: &[Mutex<VecDeque<usize>>],
    items: &[T],
    slots: &[Mutex<Option<Result<R, String>>>],
    f: &F,
    latch: &Latch,
    steals: &AtomicU64,
) where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = deques.len();
    // Seeded permutation start: which victim this worker tries first.
    let start = 1 + usize_mod(
        splitmix64(seed ^ to_u64(w)),
        workers.saturating_sub(1).max(1),
    );
    loop {
        // Own deque first, front-to-back (cache-friendly order).
        let own = lock(&deques[w]).pop_front();
        let job = match own {
            Some(i) => Some(i),
            None => {
                // Steal from the back of the first non-empty victim,
                // visiting victims in the seeded rotation.
                let mut stolen = None;
                for off in 0..workers {
                    let victim = (w + start + off) % workers;
                    if victim == w {
                        continue;
                    }
                    if let Some(i) = lock(&deques[victim]).pop_back() {
                        steals.fetch_add(1, Ordering::Relaxed);
                        stolen = Some(i);
                        break;
                    }
                }
                stolen
            }
        };
        // All deques empty: no new work ever arrives mid-batch, so
        // this worker is done (others may still be executing).
        let Some(i) = job else { break };
        let outcome =
            catch_unwind(AssertUnwindSafe(|| f(&items[i]))).map_err(|p| payload_text(p.as_ref()));
        *lock(&slots[i]) = Some(outcome);
        latch.done_one();
    }
}

/// Batch-completion latch: counts outstanding tasks down to zero.
/// This is the `Condvar` side of the pool — worker *exit* only means a
/// worker found every deque empty, while the latch means every task
/// has actually finished (a stolen task can still be running after
/// the thief's queues drain).
#[derive(Debug)]
struct Latch {
    remaining: Mutex<usize>,
    zero: Condvar,
}

impl Latch {
    fn new(n: usize) -> Self {
        Latch {
            remaining: Mutex::new(n),
            zero: Condvar::new(),
        }
    }

    fn done_one(&self) {
        let mut left = lock(&self.remaining);
        *left = left.saturating_sub(1);
        if *left == 0 {
            self.zero.notify_all();
        }
    }

    fn wait(&self) {
        let mut left = lock(&self.remaining);
        while *left > 0 {
            left = self.zero.wait(left).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Locks a mutex, treating poisoning as recovered: a panicked task is
/// already contained by `catch_unwind`, so the data a poisoned lock
/// guards is still valid.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// SplitMix64: the standard 64-bit finalizer, used only to seed the
/// steal rotation.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `usize` → `u64` without a bare `as` cast (lossless on every
/// supported platform; saturates if `usize` ever exceeds 64 bits).
fn to_u64(v: usize) -> u64 {
    u64::try_from(v).unwrap_or(u64::MAX)
}

/// `u64 % usize-count` as a `usize` (the modulus makes it fit).
fn usize_mod(v: u64, m: usize) -> usize {
    usize::try_from(v % to_u64(m.max(1))).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_batch_is_ok() {
        let pool = ExecPool::new(4);
        let out: Vec<u32> = pool.map(&[] as &[u32], |x| *x).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn results_are_in_input_order() {
        let pool = ExecPool::new(4);
        let items: Vec<usize> = (0..103).collect();
        let out = pool.map(&items, |&i| i * 2).unwrap();
        assert_eq!(out, (0..103).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|&i| splitmix64(i)).collect();
        for threads in [1, 2, 3, 8, 32] {
            let pool = ExecPool::new(threads);
            assert_eq!(pool.map(&items, |&i| splitmix64(i)).unwrap(), expect);
        }
    }

    #[test]
    fn seed_does_not_change_results() {
        let items: Vec<u64> = (0..64).collect();
        let a = ExecPool::new(4)
            .with_seed(1)
            .map(&items, |&i| i + 1)
            .unwrap();
        let b = ExecPool::new(4)
            .with_seed(99)
            .map(&items, |&i| i + 1)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn panicking_task_reports_lowest_index_and_pool_survives() {
        let pool = ExecPool::new(4);
        let items: Vec<usize> = (0..40).collect();
        let err = pool
            .map(&items, |&i| {
                assert!(!(i == 7 || i == 23), "boom at {i}");
                i
            })
            .unwrap_err();
        match err {
            ExecError::TaskPanicked { index, detail } => {
                assert_eq!(index, 7);
                assert!(detail.contains("boom"), "{detail}");
            }
            other => panic!("unexpected error {other:?}"),
        }
        // The pool is still usable after a contained panic.
        assert_eq!(pool.map(&items, |&i| i).unwrap(), items);
    }

    #[test]
    fn inline_path_contains_panics_too() {
        let pool = ExecPool::new(1);
        let err = pool
            .map(&[1, 2, 3], |&i: &i32| assert_ne!(i, 2))
            .unwrap_err();
        assert!(matches!(err, ExecError::TaskPanicked { index: 1, .. }));
    }

    #[test]
    fn stats_count_batches_and_tasks_exactly() {
        let pool = ExecPool::new(3);
        let items: Vec<usize> = (0..50).collect();
        for _ in 0..4 {
            pool.map(&items, |&i| i).unwrap();
        }
        let stats = pool.stats();
        assert_eq!(stats.workers, 3);
        assert_eq!(stats.batches, 4);
        assert_eq!(stats.tasks, 200);
        assert!(stats.max_queue_depth >= 17);
    }

    #[test]
    fn from_env_reads_thread_override() {
        // Env mutation is process-global; keep it inside one test.
        std::env::set_var(THREADS_ENV, "5");
        assert_eq!(ExecPool::from_env().threads(), 5);
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert!(ExecPool::from_env().threads() >= 1);
        std::env::remove_var(THREADS_ENV);
        assert!(ExecPool::from_env().threads() >= 1);
    }

    #[test]
    fn errors_render_usefully() {
        let e = ExecError::TaskPanicked {
            index: 3,
            detail: "x".into(),
        };
        assert!(e.to_string().contains("task 3"));
        assert!(ExecError::LostTask { index: 9 }.to_string().contains("9"));
    }
}
