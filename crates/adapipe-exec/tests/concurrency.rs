//! Concurrency contract of the execution layer, mirroring
//! `adapipe-obs/tests/concurrency.rs`: pool batches under panicking
//! tasks must always join (no deadlocked shutdown), the sharded
//! subproblem cache must keep *exact* counters while writers hammer it
//! from many threads, and results must be bit-identical at any thread
//! count. All under `#![forbid(unsafe_code)]` — scoped threads,
//! `Mutex`/`Condvar` deques, and atomics are the only primitives.

use adapipe_exec::{sha256, CacheStats, ExecError, ExecPool, ShardedCache};
use proptest::prelude::*;
use std::sync::Arc;
use std::thread;

const WRITERS: usize = 4;
const OPS_PER_WRITER: u64 = 2_500;

/// A panicking task cannot wedge the pool: every batch joins, the
/// error is typed, and later batches on the same pool still run. A
/// deadlock here hangs the test instead of failing it, which is
/// exactly the regression this guards against.
#[test]
fn pool_shutdown_is_deadlock_free_under_panicking_tasks() {
    let pool = ExecPool::new(8);
    let items: Vec<usize> = (0..200).collect();
    for round in 0..5 {
        let err = pool
            .map(&items, |&i| {
                assert!(i % 17 != round, "injected panic at {i}");
                i * 3
            })
            .unwrap_err();
        assert!(matches!(err, ExecError::TaskPanicked { .. }), "{err:?}");
    }
    // After five poisoned batches the pool still computes correctly.
    let ok = pool.map(&items, |&i| i * 3).unwrap();
    assert_eq!(ok, items.iter().map(|&i| i * 3).collect::<Vec<_>>());
}

/// Many pools in parallel, each mapping with panics mixed in, to shake
/// out cross-batch interference in the scoped workers.
#[test]
fn concurrent_batches_do_not_interfere() {
    let pool = Arc::new(ExecPool::new(4));
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let pool = Arc::clone(&pool);
            thread::spawn(move || {
                let items: Vec<u64> = (0..100).map(|i| i + (w as u64) * 1000).collect();
                let out = pool.map(&items, |&i| i.wrapping_mul(2)).unwrap();
                assert_eq!(out.len(), items.len());
                for (x, y) in items.iter().zip(&out) {
                    assert_eq!(x.wrapping_mul(2), *y);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = pool.stats();
    assert_eq!(stats.batches, WRITERS as u64);
    assert_eq!(stats.tasks, WRITERS as u64 * 100);
}

/// Exact hit/miss accounting under contention: every lookup lands in
/// exactly one of the two counters, even with all writers on one key
/// set.
#[test]
fn sharded_cache_counters_are_exact_under_contention() {
    let cache = Arc::new(ShardedCache::new(256));
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let cache = Arc::clone(&cache);
            thread::spawn(move || {
                for i in 0..OPS_PER_WRITER {
                    let key = sha256(&(i % 64).to_le_bytes());
                    if cache.get(&key).is_none() {
                        cache.insert(key, i + ((w as u64) << 32), 16);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = cache.stats();
    assert_eq!(
        stats.lookups(),
        WRITERS as u64 * OPS_PER_WRITER,
        "every get() must count exactly once: {stats:?}"
    );
    // 64 distinct keys, far below capacity: nothing may be evicted.
    assert_eq!(cache.evictions(), 0);
    assert_eq!(cache.len(), 64);
    assert_eq!(cache.bytes(), 64 * 16);
}

/// Eviction accounting stays exact when writers overflow a tiny cache.
#[test]
fn eviction_counters_are_exact_under_contention() {
    let cache = Arc::new(ShardedCache::new(8));
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let cache = Arc::clone(&cache);
            thread::spawn(move || {
                for i in 0..OPS_PER_WRITER {
                    cache.insert(sha256(&(i ^ (w as u64) << 40).to_le_bytes()), i, 4);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Live entries never exceed the per-shard bound and bytes match.
    assert!(cache.len() <= cache.capacity() * 2);
    assert_eq!(cache.bytes(), cache.len() as u64 * 4);
    assert!(cache.evictions() > 0);
}

proptest! {
    /// The pool is an order-preserving map at every thread count.
    #[test]
    fn map_is_order_preserving_at_any_thread_count(
        items in proptest::collection::vec(0u64..1_000_000_000, 0..200),
        threads in 1usize..9,
    ) {
        let pool = ExecPool::new(threads);
        let out = pool.map(&items, |&i| i.wrapping_mul(0x9e37_79b9)).unwrap();
        let expect: Vec<u64> = items.iter().map(|&i| i.wrapping_mul(0x9e37_79b9)).collect();
        prop_assert_eq!(out, expect);
    }

    /// CacheStats algebra: addition matches field-wise sums.
    #[test]
    fn cache_stats_addition_is_fieldwise(h1 in 0u64..1_000_000, m1 in 0u64..1_000_000,
                                         h2 in 0u64..1_000_000, m2 in 0u64..1_000_000) {
        let sum = CacheStats::new(h1, m1) + CacheStats::new(h2, m2);
        prop_assert_eq!(sum, CacheStats::new(h1 + h2, m1 + m2));
        prop_assert!(sum.hit_rate() >= 0.0 && sum.hit_rate() <= 1.0);
    }
}
