//! Cross-crate integration tests: the full plan → evaluate pipeline on
//! down-scaled and paper-scale configurations.

use adapipe::{Method, PlanError, Planner};
use adapipe_hw::presets as hw;
use adapipe_model::{presets, LayerSeq, ParallelConfig, TrainConfig};
use adapipe_units::MicroSecs;

fn small_planner() -> (Planner, ParallelConfig, TrainConfig) {
    (
        Planner::new(presets::gpt2_small(), hw::cluster_a_with_nodes(1)),
        ParallelConfig::new(2, 4, 1).expect("valid"),
        TrainConfig::new(1, 1024, 32).expect("valid"),
    )
}

#[test]
fn every_method_plans_or_reports_a_reason() {
    let (planner, parallel, train) = small_planner();
    for method in Method::all() {
        match planner.plan(method, parallel, train) {
            Ok(plan) => {
                assert_eq!(plan.stages.len(), 4 * method.virtual_chunks(), "{method}");
                let eval = planner.evaluate(&plan);
                assert!(eval.iteration_time > MicroSecs::ZERO, "{method}");
                assert_eq!(eval.peak_bytes_per_device.len(), 4, "{method}");
            }
            Err(e) => panic!("{method} failed on a loose configuration: {e}"),
        }
    }
}

#[test]
fn performance_ordering_holds_on_memory_tight_config() {
    // GPT-3 at 16k context, the paper's most memory-pressured cluster-A
    // point: AdaPipe <= Even Partitioning <= DAPPLE-Full, and DAPPLE-Non
    // must OOM.
    let planner = Planner::new(presets::gpt3_175b(), hw::cluster_a());
    let parallel = ParallelConfig::new(8, 8, 1).expect("valid");
    let train = TrainConfig::new(1, 16384, 32).expect("valid");

    let time = |m| {
        let plan = planner.plan(m, parallel, train).expect("plans");
        planner.evaluate(&plan)
    };
    let ada = time(Method::AdaPipe);
    let even = time(Method::EvenPartitioning);
    let full = time(Method::DappleFull);
    assert!(ada.fits && even.fits && full.fits);
    assert!(ada.iteration_time <= even.iteration_time * 1.0001);
    assert!(even.iteration_time < full.iteration_time);
    // The paper reports up to 1.31-1.32x for GPT-3; our simulator should
    // land in the same direction with a >5 % win.
    assert!(
        full.iteration_time / ada.iteration_time > 1.05,
        "speedup too small: {} vs {}",
        full.iteration_time,
        ada.iteration_time
    );

    let non = time(Method::DappleNone);
    assert!(!non.fits, "DAPPLE-Non must exceed 80 GB at seq 16384");
}

#[test]
fn adaptive_methods_never_plan_out_of_memory_plans() {
    // Whatever the adaptive planner emits must actually fit when executed.
    let planner = Planner::new(presets::gpt3_175b(), hw::cluster_a());
    for (t, p, d, seq, gbs) in [
        (8usize, 8usize, 1usize, 4096usize, 128usize),
        (8, 8, 1, 16384, 32),
        (4, 8, 2, 8192, 64),
        (2, 16, 2, 4096, 128),
    ] {
        let parallel = ParallelConfig::new(t, p, d).expect("valid");
        let train = TrainConfig::new(1, seq, gbs).expect("valid");
        for method in [Method::AdaPipe, Method::EvenPartitioning] {
            let Ok(plan) = planner.plan(method, parallel, train) else {
                continue;
            };
            let eval = planner.evaluate(&plan);
            assert!(
                eval.fits,
                "{method} at ({t},{p},{d}) seq {seq}: peak {:.1} GB",
                eval.max_peak_gb()
            );
        }
    }
}

#[test]
fn simulated_time_matches_analytic_model_within_p2p_slack() {
    let (planner, parallel, train) = small_planner();
    for method in [
        Method::DappleFull,
        Method::DappleNone,
        Method::EvenPartitioning,
        Method::AdaPipe,
    ] {
        let plan = planner.plan(method, parallel, train).expect("plans");
        let eval = planner.evaluate(&plan);
        let analytic = plan
            .predicted_time()
            .expect("1f1b methods have predictions");
        let rel = (eval.iteration_time - analytic).abs() / analytic;
        assert!(
            rel < 0.05,
            "{method}: sim {} vs analytic {analytic}",
            eval.iteration_time
        );
        // The simulator includes P2P transfers, so it is never faster.
        assert!(
            eval.iteration_time >= analytic - MicroSecs::new(1e-9),
            "{method}"
        );
    }
}

#[test]
fn adapipe_partitions_are_valid_and_shift_layers_rearward() {
    let planner = Planner::new(presets::gpt3_175b(), hw::cluster_a());
    let parallel = ParallelConfig::new(8, 8, 1).expect("valid");
    let train = TrainConfig::new(1, 16384, 32).expect("valid");
    let plan = planner
        .plan(Method::AdaPipe, parallel, train)
        .expect("plans");
    let seq = LayerSeq::for_model(planner.model());
    assert!(seq.is_valid_partition(&plan.ranges()));
    // Front half holds no more layers than the back half (Table 4).
    let layers = plan.layers_per_stage();
    let front: usize = layers[..4].iter().sum();
    let back: usize = layers[4..].iter().sum();
    assert!(front <= back, "layers {layers:?}");
}

#[test]
fn oom_error_surfaces_for_impossible_configs() {
    // A 32 GB device cannot hold GPT-3 at (1, 8, 1) even fully recomputed.
    let planner = Planner::new(presets::gpt3_175b(), hw::cluster_b_small());
    let parallel = ParallelConfig::new(1, 8, 1).expect("valid");
    let train = TrainConfig::new(1, 4096, 64).expect("valid");
    let err = planner.plan(Method::AdaPipe, parallel, train).unwrap_err();
    assert!(matches!(err, PlanError::OutOfMemory { .. }));
}

#[test]
fn every_simulated_timeline_satisfies_schedule_invariants() {
    let (planner, parallel, train) = small_planner();
    for method in Method::all() {
        let Ok(plan) = planner.plan(method, parallel, train) else {
            continue;
        };
        let eval = planner.evaluate(&plan);
        let cover = if matches!(method, Method::ChimeraDFull | Method::ChimeraDNone) {
            2
        } else {
            1
        };
        adapipe_sim::validate::check(&eval.report, cover)
            .unwrap_or_else(|v| panic!("{method}: {v}"));
    }
}

#[test]
fn plans_are_fully_inspectable() {
    let (planner, parallel, train) = small_planner();
    let plan = planner
        .plan(Method::AdaPipe, parallel, train)
        .expect("plans");
    let rendered = plan.to_string();
    assert!(rendered.contains("stage 0"));
    assert!(rendered.contains("predicted"));
    let debug = format!("{plan:?}");
    assert!(debug.contains("AdaPipe"));
}
