pub fn same(a: f64) -> bool {
    a == 0.5
}
