//! Extension: planner-as-a-service throughput — content-addressed
//! cache hits vs cold plans.
//!
//! The paper's workflow (profile once, search in seconds, reuse across
//! jobs) makes the planner a natural service; what the service adds is
//! *result reuse*. This load test drives an in-process `adapipe-serve`
//! daemon over real loopback HTTP and measures the two regimes the
//! ISSUE pins: cold misses (a full §4+§5 search per request, warmed by
//! the daemon-global subproblem cache after the first one — the miss
//! requests differ only in global batch, so their knapsack leaves are
//! shared) and cache hits on the golden GPT-2 config (digest lookup +
//! byte-identical replay). Hits must return in under a millisecond at
//! the median; the hit/miss throughput gap shrinks as the subcache
//! speeds the misses themselves, so the gate on the ratio is loose and
//! the real regression fence is `xtask bench-diff` on the absolute
//! miss/hit rates in the emitted artifact.

use adapipe_bench::{emit_bench_json, print_table};
use adapipe_obs::{keys, Recorder};
use adapipe_serve::{client, PlanRequest, ServeConfig, Server};
use std::time::Instant;

/// The golden config: the same GPT-2 world the checked-in golden plans
/// and the CI serve job use.
fn golden() -> PlanRequest {
    PlanRequest {
        model: "gpt2".to_string(),
        cluster: "a".to_string(),
        nodes: 1,
        ..PlanRequest::new(2, 4, 1024, 32)
    }
}

fn main() {
    const MISSES: usize = 8;
    const HIT_THREADS: usize = 4;
    const HITS_PER_THREAD: usize = 100;

    let rec = Recorder::new();
    let t0 = Instant::now();
    let server = Server::bind(
        ServeConfig {
            port: 0,
            workers: 4,
            ..ServeConfig::default()
        },
        rec.clone(),
    )
    .expect("bind an ephemeral port");
    let addr = server.addr().to_string();

    // Cold regime: distinct digests, every request runs the full
    // search. Sequential, so the measured rate is per-worker.
    let miss_start = Instant::now();
    for i in 0..MISSES {
        let mut req = golden();
        req.global_batch = 32 * (i + 2); // gbs 32 itself is the golden entry, seeded below
        let resp = client::post_plan(&addr, &req.to_wire_text()).expect("daemon reachable");
        assert_eq!(resp.status, 200, "cold plan failed: {}", resp.body);
        assert_eq!(resp.header("x-adapipe-cache"), Some("miss"));
    }
    let miss_wall = miss_start.elapsed().as_secs_f64();
    let miss_rps = MISSES as f64 / miss_wall;

    // Seed the golden entry and keep its cold bytes for the identity
    // check.
    let cold = client::post_plan(&addr, &golden().to_wire_text()).expect("daemon reachable");
    assert_eq!(cold.status, 200, "{}", cold.body);
    assert_eq!(cold.header("x-adapipe-cache"), Some("miss"));
    let cold_body = cold.body;

    // Hot regime: every thread hammers the one golden digest.
    let hit_start = Instant::now();
    let handles: Vec<_> = (0..HIT_THREADS)
        .map(|_| {
            let addr = addr.clone();
            let body = golden().to_wire_text();
            let expected = cold_body.clone();
            std::thread::spawn(move || {
                let mut latencies_us = Vec::with_capacity(HITS_PER_THREAD);
                for _ in 0..HITS_PER_THREAD {
                    let t = Instant::now();
                    let resp = client::post_plan(&addr, &body).expect("daemon reachable");
                    latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
                    assert_eq!(resp.status, 200, "{}", resp.body);
                    assert_eq!(resp.header("x-adapipe-cache"), Some("hit"));
                    assert_eq!(resp.body, expected, "cache hit must be byte-identical");
                }
                latencies_us
            })
        })
        .collect();
    let mut latencies_us: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("hit thread"))
        .collect();
    let hit_wall = hit_start.elapsed().as_secs_f64();
    let hits = HIT_THREADS * HITS_PER_THREAD;
    let hit_rps = hits as f64 / hit_wall;
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p50 = latencies_us[latencies_us.len() / 2];
    let p99 = latencies_us[latencies_us.len() * 99 / 100];
    let speedup = hit_rps / miss_rps;

    // Percentiles stay in the `bench.serve_load.hit.us` histogram only:
    // gauges feed the `xtask bench-diff` 20% gate, and single-run tail
    // latencies are far too noisy to gate (throughput and the hit/miss
    // ratio are the tracked metrics).
    for (key, value) in [
        ("bench.serve_load.miss.rps", miss_rps),
        ("bench.serve_load.hit.rps", hit_rps),
        ("bench.serve_load.hit_over_miss", speedup),
    ] {
        rec.gauge(key, value);
    }
    for us in &latencies_us {
        rec.observe(keys::BENCH_SERVE_LOAD_HIT_US, *us);
    }

    print_table(
        "Planner-as-a-service throughput — GPT-2 golden config, 4 workers",
        &["regime", "requests", "req/s", "p50 (us)"],
        &[
            vec![
                "cold (full search)".to_string(),
                format!("{MISSES}"),
                format!("{miss_rps:.1}"),
                "-".to_string(),
            ],
            vec![
                "hit (digest replay)".to_string(),
                format!("{hits}"),
                format!("{hit_rps:.1}"),
                format!("{p50:.0}"),
            ],
        ],
    );
    println!(
        "\nhit/miss throughput = {speedup:.1}x (hit p99 {p99:.0}us); every hit\n\
         byte-identical to the cold plan. Expected shape: p50 under 1 ms. The plan\n\
         cache turns a full Algorithm 1 search into a digest lookup, while the shared\n\
         subproblem cache speeds the misses themselves (shared knapsack leaves across\n\
         requests), narrowing the ratio."
    );

    // Fold the engine counters (exec pool, global subcache) into the
    // artifact before the snapshot below.
    server.publish_engine_gauges();

    let summary = server.shutdown_and_join();
    assert_eq!(summary.rejected, 0, "no request should have been shed");
    assert!(
        p50 < 1_000.0,
        "cache-hit p50 must be under 1ms, got {p50:.0}us"
    );
    assert!(
        speedup >= 2.0,
        "cache hits must still clearly beat subcache-assisted misses, got {speedup:.1}x"
    );

    rec.gauge(keys::BENCH_WALL_S, t0.elapsed().as_secs_f64());
    emit_bench_json(
        "serve_throughput",
        &rec,
        &[
            ("extension", "planner-as-a-service"),
            ("config", "gpt2/a/1-node t2 p4 seq1024 gbs32"),
        ],
    );
}
