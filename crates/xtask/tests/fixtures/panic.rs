pub fn run(flag: bool) {
    if flag {
        panic!("boom");
    }
}
