//! Synthetic token streams for the convergence experiments.
//!
//! The paper trains on Enwik8; we have no dataset, so we generate a
//! learnable corpus: a fixed periodic token pattern (derived from the
//! seed) with a sprinkle of noise. A model that learns the pattern drives
//! the loss well below the uniform baseline `ln(vocab)`, which is all the
//! Figure 10 validation needs — the *comparison between strategies* is
//! exact regardless of data.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic synthetic corpus.
#[derive(Debug, Clone)]
pub struct SyntheticCorpus {
    pattern: Vec<usize>,
    vocab: usize,
    noise: f64,
    seed: u64,
}

impl SyntheticCorpus {
    /// Creates a corpus over `vocab` tokens with an underlying periodic
    /// pattern of length `period` and `noise` probability of random
    /// token substitution.
    ///
    /// # Panics
    ///
    /// Panics if `vocab < 2` or `period == 0` or `noise` is outside
    /// `[0, 1)`.
    #[must_use]
    pub fn new(vocab: usize, period: usize, noise: f64, seed: u64) -> Self {
        assert!(vocab >= 2, "vocabulary too small");
        assert!(period > 0, "period must be positive");
        assert!((0.0..1.0).contains(&noise), "noise must be in [0, 1)");
        let mut rng = StdRng::seed_from_u64(seed);
        let pattern = (0..period).map(|_| rng.gen_range(0..vocab)).collect();
        SyntheticCorpus {
            pattern,
            vocab,
            noise,
            seed,
        }
    }

    /// The `(inputs, targets)` pair for micro-batch `mb` of step `step`:
    /// `seq_len` consecutive tokens and their successors. Deterministic
    /// in `(seed, step, mb)`.
    #[must_use]
    pub fn batch(&self, step: usize, mb: usize, seq_len: usize) -> (Vec<usize>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ (step as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (mb as u64) << 17,
        );
        let start = rng.gen_range(0..self.pattern.len());
        let token = |i: usize, rng: &mut StdRng| {
            if self.noise > 0.0 && rng.gen_bool(self.noise) {
                rng.gen_range(0..self.vocab)
            } else {
                self.pattern[(start + i) % self.pattern.len()]
            }
        };
        let stream: Vec<usize> = (0..=seq_len).map(|i| token(i, &mut rng)).collect();
        (stream[..seq_len].to_vec(), stream[1..].to_vec())
    }

    /// Vocabulary size.
    #[must_use]
    pub fn vocab(&self) -> usize {
        self.vocab
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_are_deterministic() {
        let c = SyntheticCorpus::new(32, 11, 0.05, 9);
        assert_eq!(c.batch(3, 1, 8), c.batch(3, 1, 8));
        assert_ne!(c.batch(3, 1, 8), c.batch(4, 1, 8));
    }

    #[test]
    fn targets_are_shifted_inputs() {
        let c = SyntheticCorpus::new(32, 11, 0.0, 9);
        let (x, y) = c.batch(0, 0, 8);
        assert_eq!(x.len(), 8);
        assert_eq!(y.len(), 8);
        assert_eq!(&x[1..], &y[..7]);
    }

    #[test]
    fn tokens_stay_in_vocab() {
        let c = SyntheticCorpus::new(16, 7, 0.3, 1);
        for step in 0..10 {
            let (x, y) = c.batch(step, 0, 32);
            assert!(x.iter().chain(&y).all(|&t| t < 16));
        }
    }

    #[test]
    #[should_panic(expected = "vocabulary too small")]
    fn tiny_vocab_rejected() {
        let _ = SyntheticCorpus::new(1, 5, 0.0, 0);
    }
}
