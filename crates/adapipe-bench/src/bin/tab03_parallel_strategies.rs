//! Table 3: iteration time of GPT-3 (sequence 4096, 64 GPUs, cluster A)
//! under every legal 3D parallel strategy, for DAPPLE-Full/Non, Even
//! Partitioning and AdaPipe. Strategies that exceed memory print OOM;
//! the best cell per method is starred.

use adapipe::{sweep_parallel_strategies, Method, Planner, StrategyOutcome};
use adapipe_bench::print_table;
use adapipe_hw::presets as hw;
use adapipe_model::{presets, TrainConfig};
use adapipe_units::MicroSecs;

fn main() {
    let planner = Planner::new(presets::gpt3_175b(), hw::cluster_a());
    let train = TrainConfig::new(1, 4096, 128).expect("valid");
    let methods = [
        Method::DappleFull,
        Method::DappleNone,
        Method::EvenPartitioning,
        Method::AdaPipe,
    ];

    let sweeps: Vec<Vec<StrategyOutcome>> = methods
        .iter()
        .map(|&m| sweep_parallel_strategies(&planner, m, 64, train, 8, 2))
        .collect();
    let best: Vec<Option<MicroSecs>> = sweeps
        .iter()
        .map(|s| adapipe::best_outcome(s).and_then(StrategyOutcome::time))
        .collect();

    let mut rows = Vec::new();
    for (i, outcome) in sweeps[0].iter().enumerate() {
        let parallel = outcome.parallel;
        // Skip rows where every method OOMs (the paper omits them too).
        if sweeps.iter().all(|s| s[i].time().is_none()) {
            continue;
        }
        let mut row = vec![format!(
            "({}, {}, {})",
            parallel.tensor(),
            parallel.pipeline(),
            parallel.data()
        )];
        for (m, sweep) in sweeps.iter().enumerate() {
            row.push(match sweep[i].time() {
                Some(t) => {
                    let star = if best[m].is_some_and(|b| (t - b).abs() < MicroSecs::new(1e-3)) {
                        "*"
                    } else {
                        ""
                    };
                    format!("{:.3}{star}", t.as_secs())
                }
                None => "OOM".into(),
            });
        }
        rows.push(row);
    }
    print_table(
        "Table 3: GPT-3 iteration time (s) by parallel strategy — seq 4096, 64 GPUs",
        &[
            "(TP, PP, DP)",
            "DAPPLE-Full",
            "DAPPLE-Non",
            "Even Part.",
            "AdaPipe",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: tiny TP (1, 32, 2) OOMs for the adaptive methods (unsharded \
         pinned outputs); DAPPLE-Non survives only at TP = 8; the best strategies sit \
         at moderate TP (4 or 8) where the adaptive methods beat DAPPLE-Full by ~1.3x."
    );
}
