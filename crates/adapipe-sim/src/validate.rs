//! Post-hoc schedule validation: structural invariants every correct
//! pipeline execution must satisfy. Used by tests (and available to
//! users plugging in custom schedule generators) to catch generator
//! bugs that would otherwise surface as silently-wrong timings.

use crate::error::SimError;
use crate::report::SimReport;
use crate::task::OpKind;
use adapipe_units::{Bytes, MicroSecs};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A violated schedule invariant.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScheduleViolation {
    /// Two tasks overlap on one device.
    DeviceOverlap {
        /// The device in question.
        device: usize,
        /// Start time of the second task.
        at: MicroSecs,
    },
    /// A micro-batch ran backward before (or without) its forward on the
    /// same (stage, replica).
    BackwardBeforeForward {
        /// Micro-batch id.
        micro_batch: usize,
        /// Stage id.
        stage: usize,
    },
    /// Forward/backward counts differ for a (stage, replica).
    UnbalancedPasses {
        /// Stage id.
        stage: usize,
        /// Forward-pass count.
        forwards: usize,
        /// Backward-pass count.
        backwards: usize,
    },
    /// A task has non-positive duration.
    NonPositiveDuration {
        /// The device it ran on.
        device: usize,
    },
}

impl fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleViolation::DeviceOverlap { device, at } => {
                write!(f, "tasks overlap on device {device} at t={at}")
            }
            ScheduleViolation::BackwardBeforeForward { micro_batch, stage } => write!(
                f,
                "micro-batch {micro_batch} ran backward before forward at stage {stage}"
            ),
            ScheduleViolation::UnbalancedPasses {
                stage,
                forwards,
                backwards,
            } => write!(
                f,
                "stage {stage} ran {forwards} forwards but {backwards} backwards"
            ),
            ScheduleViolation::NonPositiveDuration { device } => {
                write!(f, "non-positive task duration on device {device}")
            }
        }
    }
}

impl Error for ScheduleViolation {}

/// Checks the executed timeline against the pipeline invariants:
/// no device runs two tasks at once, every backward follows its forward
/// on the same (stage, replica), forward and backward counts match per
/// stage, and every task takes positive time.
///
/// Doubled forwards (ChimeraD) are accounted by their recorded
/// micro-batch; pass `forwards_cover` = 2 for such schedules so the
/// balance check scales the forward count.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check(report: &SimReport, forwards_cover: usize) -> Result<(), ScheduleViolation> {
    // Per-device non-overlap (timeline is sorted by start).
    let eps = MicroSecs::new(1e-12);
    let mut last_end: HashMap<usize, MicroSecs> = HashMap::new();
    for e in &report.timeline {
        if e.end <= e.start {
            return Err(ScheduleViolation::NonPositiveDuration { device: e.device });
        }
        if let Some(&end) = last_end.get(&e.device) {
            if e.start + eps < end {
                return Err(ScheduleViolation::DeviceOverlap {
                    device: e.device,
                    at: e.start,
                });
            }
        }
        let slot = last_end.entry(e.device).or_insert(MicroSecs::ZERO);
        *slot = slot.max(e.end);
    }

    // Backward-after-forward per (stage, replica, micro-batch). For
    // doubled forwards, micro-batches m..m+cover are covered by the
    // forward recorded at m.
    let mut fwd_end: HashMap<(usize, usize, usize), MicroSecs> = HashMap::new();
    for e in &report.timeline {
        if e.meta.kind == OpKind::Forward {
            for covered in e.meta.micro_batch..e.meta.micro_batch + forwards_cover {
                fwd_end.insert((e.meta.stage, e.meta.replica, covered), e.end);
            }
        }
    }
    let mut counts: HashMap<usize, (usize, usize)> = HashMap::new();
    for e in &report.timeline {
        match e.meta.kind {
            OpKind::Forward => counts.entry(e.meta.stage).or_default().0 += 1,
            OpKind::Backward => {
                counts.entry(e.meta.stage).or_default().1 += 1;
                let key = (e.meta.stage, e.meta.replica, e.meta.micro_batch);
                match fwd_end.get(&key) {
                    Some(&end) if end <= e.start + eps => {}
                    _ => {
                        return Err(ScheduleViolation::BackwardBeforeForward {
                            micro_batch: e.meta.micro_batch,
                            stage: e.meta.stage,
                        })
                    }
                }
            }
        }
    }
    for (&stage, &(forwards, backwards)) in &counts {
        if forwards * forwards_cover != backwards {
            return Err(ScheduleViolation::UnbalancedPasses {
                stage,
                forwards,
                backwards,
            });
        }
    }
    Ok(())
}

/// Checks every device's dynamic-memory high-water mark against its
/// budget (`budgets[d]`; devices beyond `budgets.len()` are
/// unchecked). An over-budget stage used to be "unreachable" — only a
/// `debug_assert` in the evaluation path would notice — so release
/// builds silently reported infeasible executions as fine; this makes
/// the condition a first-class, typed error.
///
/// # Errors
///
/// [`SimError::BudgetExceeded`] for the first over-budget device.
pub fn check_budgets(report: &SimReport, budgets: &[Bytes]) -> Result<(), SimError> {
    for (device, d) in report.devices.iter().enumerate() {
        let Some(&budget) = budgets.get(device) else {
            continue;
        };
        if !d.peak_dynamic_bytes.fits(budget) {
            return Err(SimError::BudgetExceeded {
                device,
                high_water: d.peak_dynamic_bytes,
                budget,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::schedule;
    use crate::task::StageExec;
    use adapipe_units::{Bytes, MicroSecs};

    fn stages(p: usize) -> Vec<StageExec> {
        vec![
            StageExec {
                time_f: MicroSecs::new(1.0),
                time_b: MicroSecs::new(2.0),
                saved_bytes: Bytes::new(1),
                buffer_bytes: Bytes::ZERO
            };
            p
        ]
    }

    #[test]
    fn every_builtin_schedule_validates() {
        let (p, n) = (4usize, 8usize);
        let st = stages(p);
        let p2p = MicroSecs::new(0.01);
        check(&simulate(&schedule::one_f_one_b(&st, n, p2p)), 1).unwrap();
        check(&simulate(&schedule::gpipe(&st, n, p2p)), 1).unwrap();
        check(&simulate(&schedule::chimera(&st, n, p2p, false)), 1).unwrap();
        check(&simulate(&schedule::chimera(&st, n, p2p, true)), 2).unwrap();
        let chunks = stages(2 * p);
        check(&simulate(&schedule::interleaved(&chunks, p, n, p2p)), 1).unwrap();
    }

    #[test]
    fn detects_backward_before_forward() {
        let mut report = simulate(&schedule::one_f_one_b(&stages(2), 4, MicroSecs::ZERO));
        // Corrupt: move a backward before everything.
        let idx = report
            .timeline
            .iter()
            .position(|e| e.meta.kind == OpKind::Backward)
            .unwrap();
        let entry = report.timeline.remove(idx);
        report.timeline.insert(
            0,
            crate::report::TimelineEntry {
                start: MicroSecs::new(-10.0),
                end: MicroSecs::new(-8.0),
                ..entry
            },
        );
        assert!(matches!(
            check(&report, 1),
            Err(ScheduleViolation::BackwardBeforeForward { .. })
        ));
    }

    #[test]
    fn detects_device_overlap() {
        let mut report = simulate(&schedule::one_f_one_b(&stages(2), 4, MicroSecs::ZERO));
        // Corrupt: stretch the first task over its successor.
        report.timeline[0].end += MicroSecs::new(100.0);
        // Re-sorting is the caller's contract; keep order and stretch.
        assert!(matches!(
            check(&report, 1),
            Err(ScheduleViolation::DeviceOverlap { .. })
        ));
    }

    #[test]
    fn detects_unbalanced_passes() {
        let mut report = simulate(&schedule::one_f_one_b(&stages(2), 4, MicroSecs::ZERO));
        let idx = report
            .timeline
            .iter()
            .position(|e| e.meta.kind == OpKind::Backward)
            .unwrap();
        report.timeline.remove(idx);
        assert!(matches!(
            check(&report, 1),
            Err(ScheduleViolation::UnbalancedPasses { .. })
        ));
    }

    #[test]
    fn budget_check_flags_the_overrunning_device() {
        let report = simulate(&schedule::one_f_one_b(&stages(3), 6, MicroSecs::ZERO));
        // Stage 0 peaks at p = 3 saved "bytes"; a budget of 2 overruns.
        match check_budgets(&report, &[Bytes::new(2)]).unwrap_err() {
            SimError::BudgetExceeded {
                device,
                high_water,
                budget,
            } => {
                assert_eq!(device, 0);
                assert_eq!(budget, Bytes::new(2));
                assert!(high_water > budget);
            }
            other => panic!("expected budget error, got {other:?}"),
        }
        // Generous budgets (and unchecked trailing devices) pass.
        check_budgets(&report, &[Bytes::new(10), Bytes::new(10)]).unwrap();
        check_budgets(&report, &[]).unwrap();
    }

    #[test]
    fn violations_render() {
        let v = ScheduleViolation::UnbalancedPasses {
            stage: 3,
            forwards: 4,
            backwards: 5,
        };
        assert!(v.to_string().contains("stage 3"));
    }
}
