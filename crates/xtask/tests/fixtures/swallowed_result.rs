pub fn persist(path: &str, text: &str) {
    let _ = std::fs::write(path, text);
}
